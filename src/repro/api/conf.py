"""Job configuration: Hadoop's ``Configuration`` and ``JobConf``.

The configuration object is the job's side-channel: the client sets classes
and parameters on it, the framework threads it through every user class, and
(as the paper notes in Section 4.2.3) adding custom settings to it is "common
practice in Hadoop for communicating additional information to jobs" — M3R's
temp-output prefix and cache controls ride on exactly that convention.

Because both engines run in-process, class-valued settings store the actual
Python class objects (Hadoop stores class names and reflects; the observable
semantics are identical).
"""

from __future__ import annotations

import copy
import os
from typing import Any, Dict, List, Optional


class Configuration:
    """A typed view over a string-keyed settings map."""

    def __init__(self, other: Optional["Configuration"] = None):
        self._props: Dict[str, Any] = dict(other._props) if other is not None else {}

    # -- raw access ------------------------------------------------------- #

    def set(self, key: str, value: Any) -> None:
        self._props[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._props.get(key, default)

    def unset(self, key: str) -> None:
        self._props.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._props

    def keys(self) -> List[str]:
        return list(self._props)

    # -- typed getters ------------------------------------------------------ #

    def get_int(self, key: str, default: int = 0) -> int:
        value = self._props.get(key)
        return default if value is None else int(value)

    def set_int(self, key: str, value: int) -> None:
        self._props[key] = int(value)

    def get_long(self, key: str, default: int = 0) -> int:
        return self.get_int(key, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        value = self._props.get(key)
        return default if value is None else float(value)

    def set_float(self, key: str, value: float) -> None:
        self._props[key] = float(value)

    def get_boolean(self, key: str, default: bool = False) -> bool:
        value = self._props.get(key)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        return str(value).strip().lower() in ("true", "1", "yes")

    def set_boolean(self, key: str, value: bool) -> None:
        self._props[key] = bool(value)

    def get_strings(self, key: str, default: Optional[List[str]] = None) -> List[str]:
        value = self._props.get(key)
        if value is None:
            return list(default) if default is not None else []
        if isinstance(value, str):
            return [part for part in value.split(",") if part]
        return list(value)

    def set_strings(self, key: str, values: List[str]) -> None:
        self._props[key] = ",".join(values)

    def get_class(self, key: str, default: Optional[type] = None) -> Optional[type]:
        value = self._props.get(key)
        if value is None:
            return default
        if not isinstance(value, type):
            raise TypeError(f"configuration key {key!r} holds {value!r}, not a class")
        return value

    def set_class(self, key: str, cls: type) -> None:
        if not isinstance(cls, type):
            raise TypeError(f"{cls!r} is not a class")
        self._props[key] = cls

    def copy(self) -> "Configuration":
        return type(self)(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self._props)} props)"


# Canonical configuration keys (Hadoop 0.22 names where they exist).
MAPPER_CLASS_KEY = "mapred.mapper.class"
REDUCER_CLASS_KEY = "mapred.reducer.class"
COMBINER_CLASS_KEY = "mapred.combiner.class"
MAP_RUNNER_CLASS_KEY = "mapred.map.runner.class"
PARTITIONER_CLASS_KEY = "mapred.partitioner.class"
INPUT_FORMAT_KEY = "mapred.input.format.class"
OUTPUT_FORMAT_KEY = "mapred.output.format.class"
INPUT_DIR_KEY = "mapred.input.dir"
OUTPUT_DIR_KEY = "mapred.output.dir"
NUM_REDUCES_KEY = "mapred.reduce.tasks"
NUM_MAPS_HINT_KEY = "mapred.map.tasks"
JOB_NAME_KEY = "mapred.job.name"
OUTPUT_KEY_CLASS_KEY = "mapred.output.key.class"
OUTPUT_VALUE_CLASS_KEY = "mapred.output.value.class"
MAP_OUTPUT_KEY_CLASS_KEY = "mapred.mapoutput.key.class"
MAP_OUTPUT_VALUE_CLASS_KEY = "mapred.mapoutput.value.class"
SORT_COMPARATOR_KEY = "mapred.output.key.comparator.class"
GROUPING_COMPARATOR_KEY = "mapred.output.value.groupfn.class"
SPECULATIVE_KEY = "mapred.map.tasks.speculative.execution"
USE_NEW_API_KEY = "mapred.mapper.new-api"
JOB_END_NOTIFICATION_URL_KEY = "job.end.notification.url"
JOB_QUEUE_NAME_KEY = "mapred.job.queue.name"

# M3R engine knob (rides on the paper's custom-JobConf-settings convention,
# Section 4.2.3): run map/reduce tasks on real worker threads (default) or
# fall back to the serial debugging path.  Both engines honour it so
# equivalence runs compare like for like.
REAL_THREADS_KEY = "m3r.engine.real-threads"

# Memory-governance knobs (repro.memory): per-place cache budget, watermark
# hysteresis, replacement strategy, spill-to-filesystem demotion, and
# eviction-exempt path prefixes.  All ride on the same custom-settings
# convention; the Hadoop engine ignores them entirely.
CACHE_CAPACITY_KEY = "m3r.cache.capacity-bytes"
CACHE_HIGH_WATERMARK_KEY = "m3r.cache.high-watermark"
CACHE_LOW_WATERMARK_KEY = "m3r.cache.low-watermark"
CACHE_EVICTION_POLICY_KEY = "m3r.cache.eviction-policy"
CACHE_SPILL_KEY = "m3r.cache.spill"
CACHE_PINNED_PATHS_KEY = "m3r.cache.pinned-paths"

# Shuffle knobs (repro.shuffle): run the place-to-place shuffle messages on
# real worker threads (default, mirroring m3r.engine.real-threads), and ship
# map output as per-mapper pre-sorted runs so reducers k-way merge instead
# of re-sorting the concatenation.  Both default on; either can be switched
# off per job for debugging or A/B runs — simulated results are identical.
SHUFFLE_REAL_THREADS_KEY = "m3r.shuffle.real-threads"
SHUFFLE_SORTED_RUNS_KEY = "m3r.shuffle.sorted-runs"

# Sanitizer knobs (repro.analysis.sanitizers): per-job overrides for the
# ImmutableOutput mutation detector and the lock-order cycle detector.
# Unset keys inherit the process default (the M3R_SANITIZE_MUTATION /
# M3R_SANITIZE_LOCK_ORDER environment variables); both observers are
# read-only with respect to the simulation, so flipping them never changes
# a job's outputs or accounting.
SANITIZE_MUTATION_KEY = "m3r.sanitize.mutation"
SANITIZE_LOCK_ORDER_KEY = "m3r.sanitize.lock-order"

# Lifecycle-trace knobs (repro.lifecycle): when ``m3r.trace.path`` is set
# (or the ``M3R_TRACE_PATH`` environment variable, which is what the CI
# trace row uses), every job appends its LifecycleEvent stream to that file
# as JSON lines; ``m3r.trace.ring-size`` bounds the engine's in-memory
# event ring buffer.  Tracing is an observer — it never changes a job's
# outputs, counters or simulated seconds.
TRACE_PATH_KEY = "m3r.trace.path"
TRACE_PATH_ENV = "M3R_TRACE_PATH"
TRACE_RING_KEY = "m3r.trace.ring-size"

# Cross-job result-reuse knobs (repro.restore): when ``m3r.restore.enabled``
# is set (or the ``M3R_RESTORE`` environment variable, which is what the CI
# restore row uses), each committed job's plan fingerprint is recorded in the
# engine's ResultStore and consulted at admission — an exact rerun serves the
# stored output with zero map/reduce tasks executed.  ``max-entries`` bounds
# the store (LRU).  Reuse never changes a byte of output: a hit replays the
# recorded result, anything else is a miss that runs the job normally.
RESTORE_ENABLED_KEY = "m3r.restore.enabled"
RESTORE_ENV = "M3R_RESTORE"
RESTORE_MAX_ENTRIES_KEY = "m3r.restore.max-entries"

# Multi-tenant job-service knobs (repro.service): defaults for the
# always-on server wrapping one long-lived engine.  ``queue-depth`` bounds
# the total number of queued submissions across all tenants (admission
# rejects beyond it — backpressure); ``in-flight-limit`` bounds one
# tenant's queued+running submissions; ``tenant-weight`` is the default
# fair-share weight of a newly registered tenant; ``tenant-budget-bytes``
# is the default per-tenant cache residency budget (0 = unbounded); and
# ``shared-restore`` makes new tenants publish/consume the service-wide
# shared ReStore namespace instead of a private per-tenant store.  All are
# read from the Configuration handed to ``JobService`` — per-tenant
# ``register_tenant`` arguments override them.
SERVICE_QUEUE_DEPTH_KEY = "m3r.service.queue-depth"
SERVICE_IN_FLIGHT_KEY = "m3r.service.in-flight-limit"
SERVICE_TENANT_WEIGHT_KEY = "m3r.service.tenant-weight"
SERVICE_TENANT_BUDGET_KEY = "m3r.service.tenant-budget-bytes"
SERVICE_SHARED_RESTORE_KEY = "m3r.service.shared-restore"

# Batched record-path knobs (repro.engine_common, DESIGN.md §14): when
# ``m3r.batch.enabled`` is set (or the ``M3R_BATCH`` environment variable,
# which is what the CI batched row uses), map tasks pull records from their
# splits in ``m3r.batch.size``-record batches and the collectors publish
# system counters once per task instead of once per record — same totals,
# far less per-record dispatch.  ``m3r.imc.enabled`` (env ``M3R_IMC``)
# additionally layers automatic in-mapper combining over the batched path
# for jobs whose combiner is a known-associative reducer (the
# ``AssociativeReducer`` marker or the conservative allowlist in
# ``repro.api.vectorized``): the map side folds duplicate keys into a
# bounded hash aggregate (``m3r.imc.max-entries`` live keys, spill-to-emit
# on overflow) so shuffle volume shrinks *before* serialization
# measurement and transport.  Both paths are byte-identical to the
# per-record path — same outputs, counters and simulated seconds.
BATCH_ENABLED_KEY = "m3r.batch.enabled"
BATCH_ENV = "M3R_BATCH"
BATCH_SIZE_KEY = "m3r.batch.size"
DEFAULT_BATCH_SIZE = 256
IMC_ENABLED_KEY = "m3r.imc.enabled"
IMC_ENV = "M3R_IMC"
IMC_MAX_ENTRIES_KEY = "m3r.imc.max-entries"
DEFAULT_IMC_MAX_ENTRIES = 4096

#: String literals accepted as "true" by :func:`conf_bool` env parsing
#: (mirrors ``repro.analysis.sanitizers._env_flag``, which cannot import
#: this module — the sanitizers sit below the API layer).
_TRUTHY = ("1", "true", "yes", "on")


def conf_bool(
    conf: Optional["Configuration"],
    key: str,
    env: Optional[str] = None,
    default: bool = False,
) -> bool:
    """Resolve a boolean knob with the canonical precedence:
    JobConf setting > environment variable > ``default``.

    This is the one place the engines' copy-pasted knob parsing
    (``m3r.engine.real-threads``, ``m3r.shuffle.*``, ``m3r.sanitize.*``)
    funnels through.  ``conf`` may be ``None`` (no job context); ``env``
    may be ``None`` (no environment fallback for this knob).
    """
    if conf is not None and key in conf:
        return conf.get_boolean(key, default)
    if env is not None:
        raw = os.environ.get(env)
        if raw is not None and raw.strip() != "":
            return raw.strip().lower() in _TRUTHY
    return default


class JobConf(Configuration):
    """The old-style job configuration, with the usual convenience setters.

    Works for both API generations: new-API :class:`repro.api.mapreduce.Job`
    wraps one of these, exactly as Hadoop's ``Job`` wraps a ``JobConf``.
    """

    def __init__(self, other: Optional[Configuration] = None):
        super().__init__(other)

    # -- identity --------------------------------------------------------- #

    def set_job_name(self, name: str) -> None:
        self.set(JOB_NAME_KEY, name)

    def get_job_name(self) -> str:
        return self.get(JOB_NAME_KEY, "(unnamed job)")

    # -- user classes ---------------------------------------------------- #

    def set_mapper_class(self, cls: type) -> None:
        self.set_class(MAPPER_CLASS_KEY, cls)

    def get_mapper_class(self) -> Optional[type]:
        return self.get_class(MAPPER_CLASS_KEY)

    def set_reducer_class(self, cls: type) -> None:
        self.set_class(REDUCER_CLASS_KEY, cls)

    def get_reducer_class(self) -> Optional[type]:
        return self.get_class(REDUCER_CLASS_KEY)

    def set_combiner_class(self, cls: type) -> None:
        self.set_class(COMBINER_CLASS_KEY, cls)

    def get_combiner_class(self) -> Optional[type]:
        return self.get_class(COMBINER_CLASS_KEY)

    def set_map_runner_class(self, cls: type) -> None:
        self.set_class(MAP_RUNNER_CLASS_KEY, cls)

    def get_map_runner_class(self) -> Optional[type]:
        return self.get_class(MAP_RUNNER_CLASS_KEY)

    def set_partitioner_class(self, cls: type) -> None:
        self.set_class(PARTITIONER_CLASS_KEY, cls)

    def get_partitioner_class(self) -> Optional[type]:
        return self.get_class(PARTITIONER_CLASS_KEY)

    def set_input_format(self, cls: type) -> None:
        self.set_class(INPUT_FORMAT_KEY, cls)

    def get_input_format(self) -> Optional[type]:
        return self.get_class(INPUT_FORMAT_KEY)

    def set_output_format(self, cls: type) -> None:
        self.set_class(OUTPUT_FORMAT_KEY, cls)

    def get_output_format(self) -> Optional[type]:
        return self.get_class(OUTPUT_FORMAT_KEY)

    def set_output_key_class(self, cls: type) -> None:
        self.set_class(OUTPUT_KEY_CLASS_KEY, cls)

    def set_output_value_class(self, cls: type) -> None:
        self.set_class(OUTPUT_VALUE_CLASS_KEY, cls)

    def set_map_output_key_class(self, cls: type) -> None:
        self.set_class(MAP_OUTPUT_KEY_CLASS_KEY, cls)

    def set_map_output_value_class(self, cls: type) -> None:
        self.set_class(MAP_OUTPUT_VALUE_CLASS_KEY, cls)

    def set_output_key_comparator_class(self, cls: type) -> None:
        self.set_class(SORT_COMPARATOR_KEY, cls)

    def get_output_key_comparator_class(self) -> Optional[type]:
        return self.get_class(SORT_COMPARATOR_KEY)

    def set_output_value_grouping_comparator(self, cls: type) -> None:
        self.set_class(GROUPING_COMPARATOR_KEY, cls)

    def get_output_value_grouping_comparator(self) -> Optional[type]:
        return self.get_class(GROUPING_COMPARATOR_KEY)

    # -- shape ------------------------------------------------------------ #

    def set_num_reduce_tasks(self, n: int) -> None:
        if n < 0:
            raise ValueError("reduce task count cannot be negative")
        self.set_int(NUM_REDUCES_KEY, n)

    def get_num_reduce_tasks(self) -> int:
        return self.get_int(NUM_REDUCES_KEY, 1)

    def set_num_map_tasks(self, n: int) -> None:
        """A *hint* only, exactly as in Hadoop — splits decide the real count."""
        self.set_int(NUM_MAPS_HINT_KEY, n)

    def get_num_map_tasks(self) -> int:
        return self.get_int(NUM_MAPS_HINT_KEY, 1)

    # -- paths -------------------------------------------------------------- #

    def set_input_paths(self, *paths: str) -> None:
        self.set_strings(INPUT_DIR_KEY, list(paths))

    def add_input_path(self, path: str) -> None:
        existing = self.get_strings(INPUT_DIR_KEY)
        existing.append(path)
        self.set_strings(INPUT_DIR_KEY, existing)

    def get_input_paths(self) -> List[str]:
        return self.get_strings(INPUT_DIR_KEY)

    def set_output_path(self, path: str) -> None:
        self.set(OUTPUT_DIR_KEY, path)

    def get_output_path(self) -> Optional[str]:
        return self.get(OUTPUT_DIR_KEY)
