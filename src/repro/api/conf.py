"""Job configuration: Hadoop's ``Configuration`` and ``JobConf``.

The configuration object is the job's side-channel: the client sets classes
and parameters on it, the framework threads it through every user class, and
(as the paper notes in Section 4.2.3) adding custom settings to it is "common
practice in Hadoop for communicating additional information to jobs" — M3R's
temp-output prefix and cache controls ride on exactly that convention.

Because both engines run in-process, class-valued settings store the actual
Python class objects (Hadoop stores class names and reflects; the observable
semantics are identical).
"""

from __future__ import annotations

import copy
import os
import warnings
from typing import Any, Dict, List, Optional

from repro.analysis.knobs import KNOB_PREFIX, REGISTRY


class UnknownKnobWarning(UserWarning):
    """An ``m3r.*`` key outside the KnobRegistry was set (default mode)."""


class UnknownKnobError(KeyError):
    """An ``m3r.*`` key outside the KnobRegistry was set under
    ``m3r.conf.strict`` / ``M3R_CONF_STRICT``."""


class Configuration:
    """A typed view over a string-keyed settings map."""

    def __init__(self, other: Optional["Configuration"] = None):
        self._props: Dict[str, Any] = dict(other._props) if other is not None else {}

    # -- raw access ------------------------------------------------------- #

    def set(self, key: str, value: Any) -> None:
        if key.startswith(KNOB_PREFIX) and key not in REGISTRY:
            self._unknown_knob(key)
        self._props[key] = value

    def _unknown_knob(self, key: str) -> None:
        # Misspelled m3r.* knobs otherwise silently no-op: every reader
        # falls back to its default and the job runs unconfigured.  Warn
        # by default; raise when this conf (or the environment) asks for
        # strict validation.  Resolution order matches conf_bool — but is
        # inlined here on raw _props so a conf that *only* sets the strict
        # knob itself never recurses through set().
        message = (
            f"unknown configuration knob {key!r}: not in the KnobRegistry "
            f"(repro.analysis.knobs) — misspelled, or missing a registry entry"
        )
        strict_raw = self._props.get(CONF_STRICT_KEY)
        if strict_raw is not None:
            strict = self.get_boolean(CONF_STRICT_KEY)
        else:
            env_raw = os.environ.get(CONF_STRICT_ENV)
            strict = (
                env_raw is not None
                and env_raw.strip().lower() in _TRUTHY
            )
        if strict:
            raise UnknownKnobError(message)
        warnings.warn(message, UnknownKnobWarning, stacklevel=3)

    def get(self, key: str, default: Any = None) -> Any:
        return self._props.get(key, default)

    def unset(self, key: str) -> None:
        self._props.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._props

    def keys(self) -> List[str]:
        return list(self._props)

    # -- typed getters ------------------------------------------------------ #

    def get_int(self, key: str, default: int = 0) -> int:
        value = self._props.get(key)
        return default if value is None else int(value)

    def set_int(self, key: str, value: int) -> None:
        self.set(key, int(value))

    def get_long(self, key: str, default: int = 0) -> int:
        return self.get_int(key, default)

    def get_float(self, key: str, default: float = 0.0) -> float:
        value = self._props.get(key)
        return default if value is None else float(value)

    def set_float(self, key: str, value: float) -> None:
        self.set(key, float(value))

    def get_boolean(self, key: str, default: bool = False) -> bool:
        value = self._props.get(key)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        return str(value).strip().lower() in ("true", "1", "yes")

    def set_boolean(self, key: str, value: bool) -> None:
        self.set(key, bool(value))

    def get_strings(self, key: str, default: Optional[List[str]] = None) -> List[str]:
        value = self._props.get(key)
        if value is None:
            return list(default) if default is not None else []
        if isinstance(value, str):
            return [part for part in value.split(",") if part]
        return list(value)

    def set_strings(self, key: str, values: List[str]) -> None:
        self.set(key, ",".join(values))

    def get_class(self, key: str, default: Optional[type] = None) -> Optional[type]:
        value = self._props.get(key)
        if value is None:
            return default
        if not isinstance(value, type):
            raise TypeError(f"configuration key {key!r} holds {value!r}, not a class")
        return value

    def set_class(self, key: str, cls: type) -> None:
        if not isinstance(cls, type):
            raise TypeError(f"{cls!r} is not a class")
        self.set(key, cls)

    def copy(self) -> "Configuration":
        return type(self)(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self._props)} props)"


# Canonical configuration keys (Hadoop 0.22 names where they exist).
MAPPER_CLASS_KEY = "mapred.mapper.class"
REDUCER_CLASS_KEY = "mapred.reducer.class"
COMBINER_CLASS_KEY = "mapred.combiner.class"
MAP_RUNNER_CLASS_KEY = "mapred.map.runner.class"
PARTITIONER_CLASS_KEY = "mapred.partitioner.class"
INPUT_FORMAT_KEY = "mapred.input.format.class"
OUTPUT_FORMAT_KEY = "mapred.output.format.class"
INPUT_DIR_KEY = "mapred.input.dir"
OUTPUT_DIR_KEY = "mapred.output.dir"
NUM_REDUCES_KEY = "mapred.reduce.tasks"
NUM_MAPS_HINT_KEY = "mapred.map.tasks"
JOB_NAME_KEY = "mapred.job.name"
OUTPUT_KEY_CLASS_KEY = "mapred.output.key.class"
OUTPUT_VALUE_CLASS_KEY = "mapred.output.value.class"
MAP_OUTPUT_KEY_CLASS_KEY = "mapred.mapoutput.key.class"
MAP_OUTPUT_VALUE_CLASS_KEY = "mapred.mapoutput.value.class"
SORT_COMPARATOR_KEY = "mapred.output.key.comparator.class"
GROUPING_COMPARATOR_KEY = "mapred.output.value.groupfn.class"
SPECULATIVE_KEY = "mapred.map.tasks.speculative.execution"
USE_NEW_API_KEY = "mapred.mapper.new-api"
JOB_END_NOTIFICATION_URL_KEY = "job.end.notification.url"
JOB_QUEUE_NAME_KEY = "mapred.job.queue.name"

# Every m3r.* key below is *derived* from the KnobRegistry
# (repro.analysis.knobs) — the single place the key strings, defaults and
# env aliases are written down (rule M3R010 enforces that no literal
# escapes it).  The per-subsystem semantics live with the registry rows;
# the short map:
#
# * engine/shuffle — real worker threads and pre-sorted shuffle runs,
#   switchable per job with identical simulated results;
# * cache — per-place memory governance (budget, watermarks, policy,
#   spill, pinned paths); the Hadoop engine ignores them entirely;
# * sanitize — per-job overrides for the runtime mutation / lock-order
#   observers (process default from the environment);
# * trace — lifecycle JSONL sink and event-ring sizing (pure observer);
# * restore — cross-job result reuse (admission-time fingerprint lookup);
# * service — multi-tenant defaults read by JobService;
# * batch / imc — the batched record path and licensed in-mapper
#   combining (byte-identical to the per-record path);
# * places — the execution substrate behind the engine's places (shared
#   thread pool vs persistent per-place worker processes);
# * temp — the paper's §4.2.3 temporary-output convention;
# * conf — validation of this very namespace (strict unknown-key mode).
_KNOB_KEYS = REGISTRY.constants()

REAL_THREADS_KEY = _KNOB_KEYS["REAL_THREADS_KEY"]

CACHE_CAPACITY_KEY = _KNOB_KEYS["CACHE_CAPACITY_KEY"]
CACHE_HIGH_WATERMARK_KEY = _KNOB_KEYS["CACHE_HIGH_WATERMARK_KEY"]
CACHE_LOW_WATERMARK_KEY = _KNOB_KEYS["CACHE_LOW_WATERMARK_KEY"]
CACHE_EVICTION_POLICY_KEY = _KNOB_KEYS["CACHE_EVICTION_POLICY_KEY"]
CACHE_SPILL_KEY = _KNOB_KEYS["CACHE_SPILL_KEY"]
CACHE_PINNED_PATHS_KEY = _KNOB_KEYS["CACHE_PINNED_PATHS_KEY"]

SHUFFLE_REAL_THREADS_KEY = _KNOB_KEYS["SHUFFLE_REAL_THREADS_KEY"]
SHUFFLE_SORTED_RUNS_KEY = _KNOB_KEYS["SHUFFLE_SORTED_RUNS_KEY"]

SANITIZE_MUTATION_KEY = _KNOB_KEYS["SANITIZE_MUTATION_KEY"]
SANITIZE_LOCK_ORDER_KEY = _KNOB_KEYS["SANITIZE_LOCK_ORDER_KEY"]

TRACE_PATH_KEY = _KNOB_KEYS["TRACE_PATH_KEY"]
TRACE_PATH_ENV = REGISTRY.get(TRACE_PATH_KEY).env
TRACE_RING_KEY = _KNOB_KEYS["TRACE_RING_KEY"]

RESTORE_ENABLED_KEY = _KNOB_KEYS["RESTORE_ENABLED_KEY"]
RESTORE_ENV = REGISTRY.get(RESTORE_ENABLED_KEY).env
RESTORE_MAX_ENTRIES_KEY = _KNOB_KEYS["RESTORE_MAX_ENTRIES_KEY"]

SERVICE_QUEUE_DEPTH_KEY = _KNOB_KEYS["SERVICE_QUEUE_DEPTH_KEY"]
SERVICE_IN_FLIGHT_KEY = _KNOB_KEYS["SERVICE_IN_FLIGHT_KEY"]
SERVICE_TENANT_WEIGHT_KEY = _KNOB_KEYS["SERVICE_TENANT_WEIGHT_KEY"]
SERVICE_TENANT_BUDGET_KEY = _KNOB_KEYS["SERVICE_TENANT_BUDGET_KEY"]
SERVICE_SHARED_RESTORE_KEY = _KNOB_KEYS["SERVICE_SHARED_RESTORE_KEY"]

BATCH_ENABLED_KEY = _KNOB_KEYS["BATCH_ENABLED_KEY"]
BATCH_ENV = REGISTRY.get(BATCH_ENABLED_KEY).env
BATCH_SIZE_KEY = _KNOB_KEYS["BATCH_SIZE_KEY"]
DEFAULT_BATCH_SIZE = REGISTRY.get(BATCH_SIZE_KEY).default
IMC_ENABLED_KEY = _KNOB_KEYS["IMC_ENABLED_KEY"]
IMC_ENV = REGISTRY.get(IMC_ENABLED_KEY).env
IMC_MAX_ENTRIES_KEY = _KNOB_KEYS["IMC_MAX_ENTRIES_KEY"]
DEFAULT_IMC_MAX_ENTRIES = REGISTRY.get(IMC_MAX_ENTRIES_KEY).default

PLACES_BACKEND_KEY = _KNOB_KEYS["PLACES_BACKEND_KEY"]
PLACES_ENV = REGISTRY.get(PLACES_BACKEND_KEY).env
DEFAULT_PLACES_BACKEND = REGISTRY.get(PLACES_BACKEND_KEY).default
PLACES_SHM_THRESHOLD_KEY = _KNOB_KEYS["PLACES_SHM_THRESHOLD_KEY"]
DEFAULT_PLACES_SHM_THRESHOLD = REGISTRY.get(PLACES_SHM_THRESHOLD_KEY).default

# Unknown-knob validation for the m3r.* namespace itself: Configuration.set
# warns on keys the registry does not know, and raises when this knob (or
# its M3R_CONF_STRICT environment alias) asks for strict mode.
CONF_STRICT_KEY = _KNOB_KEYS["CONF_STRICT_KEY"]
CONF_STRICT_ENV = REGISTRY.get(CONF_STRICT_KEY).env

# Re-exports for the API modules that declare their knobs here rather than
# carry their own literals (extensions, multiple_io).
TEMP_OUTPUT_PREFIX_KEY = _KNOB_KEYS["TEMP_OUTPUT_PREFIX_KEY"]
DEFAULT_TEMP_OUTPUT_PREFIX = REGISTRY.get(TEMP_OUTPUT_PREFIX_KEY).default
TEMP_OUTPUT_PATHS_KEY = _KNOB_KEYS["TEMP_OUTPUT_PATHS_KEY"]
FORCE_HADOOP_ENGINE_KEY = _KNOB_KEYS["FORCE_HADOOP_ENGINE_KEY"]
TASK_FS_KEY = _KNOB_KEYS["TASK_FS_KEY"]
TASK_PARTITION_KEY = _KNOB_KEYS["TASK_PARTITION_KEY"]
ACTUAL_MAPPER_KEY = _KNOB_KEYS["ACTUAL_MAPPER_KEY"]

#: String literals accepted as "true" by :func:`conf_bool` env parsing
#: (mirrors ``repro.analysis.sanitizers._env_flag``, which cannot import
#: this module — the sanitizers sit below the API layer).
_TRUTHY = ("1", "true", "yes", "on")


def conf_bool(
    conf: Optional["Configuration"],
    key: str,
    env: Optional[str] = None,
    default: bool = False,
) -> bool:
    """Resolve a boolean knob with the canonical precedence:
    JobConf setting > environment variable > ``default``.

    This is the one place the engines' copy-pasted knob parsing
    (``m3r.engine.real-threads``, ``m3r.shuffle.*``, ``m3r.sanitize.*``)
    funnels through.  ``conf`` may be ``None`` (no job context); ``env``
    may be ``None`` (no environment fallback for this knob).
    """
    if conf is not None and key in conf:
        return conf.get_boolean(key, default)
    if env is not None:
        raw = os.environ.get(env)
        if raw is not None and raw.strip() != "":
            return raw.strip().lower() in _TRUTHY
    return default


class JobConf(Configuration):
    """The old-style job configuration, with the usual convenience setters.

    Works for both API generations: new-API :class:`repro.api.mapreduce.Job`
    wraps one of these, exactly as Hadoop's ``Job`` wraps a ``JobConf``.
    """

    def __init__(self, other: Optional[Configuration] = None):
        super().__init__(other)

    # -- identity --------------------------------------------------------- #

    def set_job_name(self, name: str) -> None:
        self.set(JOB_NAME_KEY, name)

    def get_job_name(self) -> str:
        return self.get(JOB_NAME_KEY, "(unnamed job)")

    # -- user classes ---------------------------------------------------- #

    def set_mapper_class(self, cls: type) -> None:
        self.set_class(MAPPER_CLASS_KEY, cls)

    def get_mapper_class(self) -> Optional[type]:
        return self.get_class(MAPPER_CLASS_KEY)

    def set_reducer_class(self, cls: type) -> None:
        self.set_class(REDUCER_CLASS_KEY, cls)

    def get_reducer_class(self) -> Optional[type]:
        return self.get_class(REDUCER_CLASS_KEY)

    def set_combiner_class(self, cls: type) -> None:
        self.set_class(COMBINER_CLASS_KEY, cls)

    def get_combiner_class(self) -> Optional[type]:
        return self.get_class(COMBINER_CLASS_KEY)

    def set_map_runner_class(self, cls: type) -> None:
        self.set_class(MAP_RUNNER_CLASS_KEY, cls)

    def get_map_runner_class(self) -> Optional[type]:
        return self.get_class(MAP_RUNNER_CLASS_KEY)

    def set_partitioner_class(self, cls: type) -> None:
        self.set_class(PARTITIONER_CLASS_KEY, cls)

    def get_partitioner_class(self) -> Optional[type]:
        return self.get_class(PARTITIONER_CLASS_KEY)

    def set_input_format(self, cls: type) -> None:
        self.set_class(INPUT_FORMAT_KEY, cls)

    def get_input_format(self) -> Optional[type]:
        return self.get_class(INPUT_FORMAT_KEY)

    def set_output_format(self, cls: type) -> None:
        self.set_class(OUTPUT_FORMAT_KEY, cls)

    def get_output_format(self) -> Optional[type]:
        return self.get_class(OUTPUT_FORMAT_KEY)

    def set_output_key_class(self, cls: type) -> None:
        self.set_class(OUTPUT_KEY_CLASS_KEY, cls)

    def set_output_value_class(self, cls: type) -> None:
        self.set_class(OUTPUT_VALUE_CLASS_KEY, cls)

    def set_map_output_key_class(self, cls: type) -> None:
        self.set_class(MAP_OUTPUT_KEY_CLASS_KEY, cls)

    def set_map_output_value_class(self, cls: type) -> None:
        self.set_class(MAP_OUTPUT_VALUE_CLASS_KEY, cls)

    def set_output_key_comparator_class(self, cls: type) -> None:
        self.set_class(SORT_COMPARATOR_KEY, cls)

    def get_output_key_comparator_class(self) -> Optional[type]:
        return self.get_class(SORT_COMPARATOR_KEY)

    def set_output_value_grouping_comparator(self, cls: type) -> None:
        self.set_class(GROUPING_COMPARATOR_KEY, cls)

    def get_output_value_grouping_comparator(self) -> Optional[type]:
        return self.get_class(GROUPING_COMPARATOR_KEY)

    # -- shape ------------------------------------------------------------ #

    def set_num_reduce_tasks(self, n: int) -> None:
        if n < 0:
            raise ValueError("reduce task count cannot be negative")
        self.set_int(NUM_REDUCES_KEY, n)

    def get_num_reduce_tasks(self) -> int:
        return self.get_int(NUM_REDUCES_KEY, 1)

    def set_num_map_tasks(self, n: int) -> None:
        """A *hint* only, exactly as in Hadoop — splits decide the real count."""
        self.set_int(NUM_MAPS_HINT_KEY, n)

    def get_num_map_tasks(self) -> int:
        return self.get_int(NUM_MAPS_HINT_KEY, 1)

    # -- paths -------------------------------------------------------------- #

    def set_input_paths(self, *paths: str) -> None:
        self.set_strings(INPUT_DIR_KEY, list(paths))

    def add_input_path(self, path: str) -> None:
        existing = self.get_strings(INPUT_DIR_KEY)
        existing.append(path)
        self.set_strings(INPUT_DIR_KEY, existing)

    def get_input_paths(self) -> List[str]:
        return self.get_strings(INPUT_DIR_KEY)

    def set_output_path(self, path: str) -> None:
        self.set(OUTPUT_DIR_KEY, path)

    def get_output_path(self) -> Optional[str]:
        return self.get(OUTPUT_DIR_KEY)
