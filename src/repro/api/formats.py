"""Input and output formats.

The format layer is where jobs meet the filesystem: an
:class:`InputFormat` turns the configured input paths into
:class:`~repro.api.splits.InputSplit` metadata and per-split
:class:`RecordReader` streams; an :class:`OutputFormat` supplies a
:class:`RecordWriter` per reduce partition (plus an
:class:`OutputCommitter` that promotes task output on success).

M3R "understands how standard Hadoop input and output formats work, in
particular the File(Input/Output)Format classes and the FileSplit class"
(paper Section 4.2.1) — its cache keys data by the file names these classes
expose.  Our M3R engine has the same special knowledge of the classes in
this module, and falls back to the ``NamedSplit``/``DelegatingSplit``
extension interfaces for user-defined splits, exactly as the paper
describes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.api.conf import JobConf
from repro.api.mapred import RecordReaderLike, Reporter
from repro.api.splits import FileSplit, InputSplit
from repro.api.writables import LongWritable, Text
from repro.x10.serializer import deep_copy_value


class RecordReader(RecordReaderLike):
    """Streams (key, value) records out of one split."""

    def next_pair(self) -> Optional[Tuple[Any, Any]]:
        """The next record, or ``None`` at end of split."""
        raise NotImplementedError

    def get_progress(self) -> float:
        """Fraction of the split consumed, in [0, 1]."""
        return 0.0

    def close(self) -> None:
        """Release resources."""

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        while True:
            pair = self.next_pair()
            if pair is None:
                return
            yield pair


class RecordWriter:
    """Consumes the (key, value) records of one reduce (or map-only) task."""

    def write(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources."""


class InputFormat:
    """Produces splits and per-split readers for a job's input."""

    def get_splits(self, fs: Any, conf: JobConf, num_splits: int) -> List[InputSplit]:
        raise NotImplementedError

    def get_record_reader(
        self, fs: Any, split: InputSplit, conf: JobConf, reporter: Reporter
    ) -> RecordReader:
        raise NotImplementedError


class OutputCommitter:
    """Task/job commit protocol (simplified two-step: task output is staged
    per task and promoted on job commit)."""

    def setup_job(self, fs: Any, conf: JobConf) -> None:
        """Prepare the output location (create the directory)."""

    def commit_job(self, fs: Any, conf: JobConf) -> None:
        """Promote all task output; called once after every task succeeded."""

    def abort_job(self, fs: Any, conf: JobConf) -> None:
        """Discard staged output after a failure."""


class OutputFormat:
    """Produces one writer per output partition."""

    def check_output_specs(self, fs: Any, conf: JobConf) -> None:
        """Validate the output location before the job runs (Hadoop refuses
        to clobber an existing output directory)."""

    def get_record_writer(
        self, fs: Any, conf: JobConf, name: str, reporter: Reporter
    ) -> RecordWriter:
        raise NotImplementedError

    def get_output_committer(self) -> OutputCommitter:
        return OutputCommitter()


# --------------------------------------------------------------------------- #
# File-based input
# --------------------------------------------------------------------------- #


class FileInputFormat(InputFormat):
    """Common machinery for inputs stored as files: enumerate the configured
    input paths, expand directories, and carve files into splits."""

    #: Smallest split this format will produce, in bytes.
    MIN_SPLIT_SIZE = 1

    def list_input_files(self, fs: Any, conf: JobConf) -> List[str]:
        """Expand the configured input paths to concrete files."""
        files: List[str] = []
        for path in conf.get_input_paths():
            status = fs.get_file_status(path)
            if status is None:
                raise FileNotFoundError(f"input path does not exist: {path}")
            if status.is_dir:
                for child in sorted(fs.list_status(path), key=lambda s: s.path):
                    if not child.is_dir and not _is_hidden(child.path):
                        files.append(child.path)
            else:
                files.append(path)
        if not files:
            raise FileNotFoundError(
                f"no input files under {conf.get_input_paths()!r}"
            )
        return files

    def is_splitable(self, fs: Any, path: str) -> bool:
        """Whether one file may be carved into multiple splits."""
        return True

    def get_splits(self, fs: Any, conf: JobConf, num_splits: int) -> List[InputSplit]:
        files = self.list_input_files(fs, conf)
        total = sum(fs.get_file_status(f).length for f in files)
        goal = max(self.MIN_SPLIT_SIZE, total // max(1, num_splits))
        splits: List[InputSplit] = []
        for path in files:
            length = fs.get_file_status(path).length
            if length == 0:
                splits.append(FileSplit(path, 0, 0, fs.get_block_locations(path, 0, 0)))
                continue
            if not self.is_splitable(fs, path):
                hosts = fs.get_block_locations(path, 0, length)
                splits.append(FileSplit(path, 0, length, hosts))
                continue
            offset = 0
            while offset < length:
                chunk = min(goal, length - offset)
                # Avoid a tiny tail split (Hadoop's SPLIT_SLOP = 1.1).
                if length - offset - chunk < goal * 0.1:
                    chunk = length - offset
                hosts = fs.get_block_locations(path, offset, chunk)
                splits.append(FileSplit(path, offset, chunk, hosts))
                offset += chunk
        return splits


def _is_hidden(path: str) -> bool:
    basename = path.rstrip("/").rsplit("/", 1)[-1]
    return basename.startswith(".") or basename.startswith("_")


class _TextRecordReader(RecordReader):
    """Reads newline-delimited records from a byte range of one file.

    Hadoop split semantics: a record belongs to the split its first byte
    falls in; a reader whose range starts mid-record skips forward to the
    next newline.
    """

    def __init__(self, data: bytes, start: int, length: int):
        self._data = data
        self._end = min(len(data), start + length)
        if start == 0:
            self._pos = 0
        else:
            newline = data.find(b"\n", start - 1)
            self._pos = len(data) if newline < 0 else newline + 1
        self._start = self._pos

    def next_pair(self) -> Optional[Tuple[LongWritable, Text]]:
        if self._pos >= self._end or self._pos >= len(self._data):
            return None
        newline = self._data.find(b"\n", self._pos)
        line_end = len(self._data) if newline < 0 else newline
        line = self._data[self._pos : line_end]
        key = LongWritable(self._pos)
        self._pos = line_end + 1
        return key, Text(line.decode("utf-8"))

    def get_progress(self) -> float:
        if self._end <= self._start:
            return 1.0
        return min(1.0, (self._pos - self._start) / (self._end - self._start))


class TextInputFormat(FileInputFormat):
    """Line-oriented text: key = byte offset, value = the line."""

    def get_record_reader(
        self, fs: Any, split: InputSplit, conf: JobConf, reporter: Reporter
    ) -> RecordReader:
        if not isinstance(split, FileSplit):
            raise TypeError(f"TextInputFormat expects FileSplit, got {type(split)}")
        data = fs.read_bytes(split.path)
        return _TextRecordReader(data, split.start, split.length)


class _KeyValueTextRecordReader(_TextRecordReader):
    """Splits each line at the first tab into (Text key, Text value)."""

    def next_pair(self) -> Optional[Tuple[Text, Text]]:
        pair = super().next_pair()
        if pair is None:
            return None
        _, line = pair
        text = line.to_string()
        key_part, sep, value_part = text.partition("\t")
        return Text(key_part), Text(value_part if sep else "")


class KeyValueTextInputFormat(FileInputFormat):
    """Tab-separated text: key = text before the first tab, value = the rest."""

    def get_record_reader(
        self, fs: Any, split: InputSplit, conf: JobConf, reporter: Reporter
    ) -> RecordReader:
        if not isinstance(split, FileSplit):
            raise TypeError(
                f"KeyValueTextInputFormat expects FileSplit, got {type(split)}"
            )
        data = fs.read_bytes(split.path)
        return _KeyValueTextRecordReader(data, split.start, split.length)


class _SequenceFileRecordReader(RecordReader):
    """Iterates the typed pairs stored in one sequence file.

    Every record is cloned on the way out: a real sequence-file reader
    deserializes fresh objects from disk, and consumers (notably Hadoop's
    object-reusing default MapRunnable) are allowed to mutate what they
    receive.  Handing out the stored objects would let a mapper corrupt the
    "on-disk" data in place.
    """

    def __init__(self, pairs: List[Tuple[Any, Any]]):
        self._pairs = pairs
        self._index = 0

    def next_pair(self) -> Optional[Tuple[Any, Any]]:
        if self._index >= len(self._pairs):
            return None
        key, value = self._pairs[self._index]
        self._index += 1
        return deep_copy_value(key), deep_copy_value(value)

    def get_progress(self) -> float:
        if not self._pairs:
            return 1.0
        return self._index / len(self._pairs)


class SequenceFileInputFormat(FileInputFormat):
    """Typed binary key/value files (one split per file — sequence files
    written by reducers arrive as part-files that parallelize naturally)."""

    def is_splitable(self, fs: Any, path: str) -> bool:
        return False

    def get_record_reader(
        self, fs: Any, split: InputSplit, conf: JobConf, reporter: Reporter
    ) -> RecordReader:
        if not isinstance(split, FileSplit):
            raise TypeError(
                f"SequenceFileInputFormat expects FileSplit, got {type(split)}"
            )
        return _SequenceFileRecordReader(fs.read_pairs(split.path))


# --------------------------------------------------------------------------- #
# File-based output
# --------------------------------------------------------------------------- #


class _FileOutputCommitter(OutputCommitter):
    """Hadoop's FileOutputCommitter, reduced to its observable behaviour:
    the output directory exists up front, and a ``_SUCCESS`` marker appears
    once every task has committed."""

    def setup_job(self, fs: Any, conf: JobConf) -> None:
        output = conf.get_output_path()
        if output is not None:
            fs.mkdirs(output)

    def commit_job(self, fs: Any, conf: JobConf) -> None:
        output = conf.get_output_path()
        if output is not None:
            fs.write_bytes(f"{output.rstrip('/')}/_SUCCESS", b"")

    def abort_job(self, fs: Any, conf: JobConf) -> None:
        """Nothing staged to discard in this model; the marker never appears."""


class FileOutputFormat(OutputFormat):
    """Common machinery for outputs written as ``<dir>/part-NNNNN`` files."""

    def get_output_committer(self) -> OutputCommitter:
        return _FileOutputCommitter()

    def check_output_specs(self, fs: Any, conf: JobConf) -> None:
        output = conf.get_output_path()
        if output is None:
            raise ValueError("no output path configured")
        if fs.exists(output):
            raise FileExistsError(f"output path already exists: {output}")

    @staticmethod
    def part_name(partition: int) -> str:
        return f"part-{partition:05d}"

    @staticmethod
    def part_path(conf: JobConf, partition: int) -> str:
        output = conf.get_output_path()
        if output is None:
            raise ValueError("no output path configured")
        return f"{output.rstrip('/')}/{FileOutputFormat.part_name(partition)}"


class _TextRecordWriter(RecordWriter):
    """Buffers ``key<TAB>value`` lines, flushing to the FS on close."""

    def __init__(self, fs: Any, path: str):
        self._fs = fs
        self._path = path
        self._lines: List[str] = []
        self._closed = False

    def write(self, key: Any, value: Any) -> None:
        # Hadoop TextOutputFormat semantics: a null (or NullWritable) key or
        # value is omitted along with its separator.
        key_absent = key is None or type(key).__name__ == "NullWritable"
        value_absent = value is None or type(value).__name__ == "NullWritable"
        if key_absent and value_absent:
            self._lines.append("\n")
        elif key_absent:
            self._lines.append(f"{value}\n")
        elif value_absent:
            self._lines.append(f"{key}\n")
        else:
            self._lines.append(f"{key}\t{value}\n")

    def close(self) -> None:
        if not self._closed:
            self._fs.write_text(self._path, "".join(self._lines))
            self._closed = True


class TextOutputFormat(FileOutputFormat):
    """Writes ``key<TAB>value`` lines to ``<dir>/part-NNNNN``."""

    def get_record_writer(
        self, fs: Any, conf: JobConf, name: str, reporter: Reporter
    ) -> RecordWriter:
        output = conf.get_output_path()
        if output is None:
            raise ValueError("no output path configured")
        return _TextRecordWriter(fs, f"{output.rstrip('/')}/{name}")


class _SequenceFileRecordWriter(RecordWriter):
    """Buffers typed pairs, flushing as a sequence file on close."""

    def __init__(self, fs: Any, path: str):
        self._fs = fs
        self._path = path
        self._pairs: List[Tuple[Any, Any]] = []
        self._closed = False

    def write(self, key: Any, value: Any) -> None:
        self._pairs.append((key, value))

    def close(self) -> None:
        if not self._closed:
            self._fs.write_pairs(self._path, self._pairs)
            self._closed = True


class SequenceFileOutputFormat(FileOutputFormat):
    """Writes typed binary key/value pairs to ``<dir>/part-NNNNN``."""

    def get_record_writer(
        self, fs: Any, conf: JobConf, name: str, reporter: Reporter
    ) -> RecordWriter:
        output = conf.get_output_path()
        if output is None:
            raise ValueError("no output path configured")
        return _SequenceFileRecordWriter(fs, f"{output.rstrip('/')}/{name}")


class _NullRecordWriter(RecordWriter):
    def write(self, key: Any, value: Any) -> None:
        pass

    def close(self) -> None:
        pass


class NullOutputFormat(OutputFormat):
    """Discards all output (useful for side-effect-only jobs and tests)."""

    def check_output_specs(self, fs: Any, conf: JobConf) -> None:
        pass

    def get_record_writer(
        self, fs: Any, conf: JobConf, name: str, reporter: Reporter
    ) -> RecordWriter:
        return _NullRecordWriter()
