"""The new-style ``mapreduce`` API.

Hadoop 0.20 introduced a second API generation where mappers and reducers
receive a *context* object instead of separate collector/reporter arguments,
with ``setup``/``cleanup`` lifecycle hooks and an overridable ``run``.  The
paper's M3R supports "any combination of old (mapred) and new (mapreduce)
style mapper, combiner, and reducer"; both engines here consume this module
through the same :class:`repro.api.job.JobSpec` normalization layer.
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, Iterator, Optional, Tuple, TypeVar

from repro.api.conf import JobConf, USE_NEW_API_KEY
from repro.api.counters import Counters
from repro.api.mapred import Reporter

K1 = TypeVar("K1")
V1 = TypeVar("V1")
K2 = TypeVar("K2")
V2 = TypeVar("V2")
K3 = TypeVar("K3")
V3 = TypeVar("V3")


class TaskContext:
    """Shared context base: configuration, counters, progress, status."""

    def __init__(self, conf: JobConf, reporter: Optional[Reporter] = None):
        self._conf = conf
        self._reporter = reporter if reporter is not None else Reporter()

    def get_configuration(self) -> JobConf:
        return self._conf

    @property
    def configuration(self) -> JobConf:
        return self._conf

    def get_counter(self, key_or_group: Any, name: str = "") -> Any:
        """The addressed counter object (incrementable)."""
        return self._reporter.counters.find_counter(key_or_group, name)

    @property
    def counters(self) -> Counters:
        return self._reporter.counters

    def set_status(self, status: str) -> None:
        self._reporter.set_status(status)

    def progress(self) -> None:
        self._reporter.progress()

    # simulation extension, mirrored from Reporter
    def charge_compute(self, seconds: float) -> None:
        self._reporter.charge_compute(seconds)

    def charge_flops(self, flops: float, flops_per_sec: float = 1.1e9) -> None:
        self._reporter.charge_flops(flops, flops_per_sec)

    @property
    def reporter(self) -> Reporter:
        return self._reporter


class MapContext(TaskContext, Generic[K1, V1, K2, V2]):
    """The context a new-API mapper runs against."""

    def __init__(
        self,
        conf: JobConf,
        record_iter: Iterator[Tuple[K1, V1]],
        emit,
        reporter: Optional[Reporter] = None,
    ):
        super().__init__(conf, reporter)
        self._records = record_iter
        self._emit = emit
        self._current: Optional[Tuple[K1, V1]] = None

    def next_key_value(self) -> bool:
        """Advance to the next record; False at end of input."""
        self._current = next(self._records, None)
        return self._current is not None

    def get_current_key(self) -> K1:
        if self._current is None:
            raise StopIteration("no current record")
        return self._current[0]

    def get_current_value(self) -> V1:
        if self._current is None:
            raise StopIteration("no current record")
        return self._current[1]

    def write(self, key: K2, value: V2) -> None:
        self._emit(key, value)


class ReduceContext(TaskContext, Generic[K2, V2, K3, V3]):
    """The context a new-API reducer runs against."""

    def __init__(
        self,
        conf: JobConf,
        group_iter: Iterator[Tuple[K2, Iterable[V2]]],
        emit,
        reporter: Optional[Reporter] = None,
    ):
        super().__init__(conf, reporter)
        self._groups = group_iter
        self._emit = emit
        self._current: Optional[Tuple[K2, Iterable[V2]]] = None

    def next_key(self) -> bool:
        """Advance to the next key group; False at end of input."""
        self._current = next(self._groups, None)
        return self._current is not None

    def get_current_key(self) -> K2:
        if self._current is None:
            raise StopIteration("no current group")
        return self._current[0]

    def get_values(self) -> Iterable[V2]:
        if self._current is None:
            raise StopIteration("no current group")
        return self._current[1]

    def write(self, key: K3, value: V3) -> None:
        self._emit(key, value)


class NewMapper(Generic[K1, V1, K2, V2]):
    """New-style mapper: override :meth:`map` (and optionally the hooks)."""

    def setup(self, context: MapContext) -> None:
        """Called once before the first record."""

    def map(self, key: K1, value: V1, context: MapContext) -> None:
        """Default: identity."""
        context.write(key, value)  # type: ignore[arg-type]

    def cleanup(self, context: MapContext) -> None:
        """Called once after the last record."""

    def run(self, context: MapContext) -> None:
        """The task driver; overridable like Hadoop's ``Mapper.run``."""
        self.setup(context)
        try:
            while context.next_key_value():
                self.map(context.get_current_key(), context.get_current_value(), context)
        finally:
            self.cleanup(context)


class NewReducer(Generic[K2, V2, K3, V3]):
    """New-style reducer: override :meth:`reduce` (and optionally the hooks)."""

    def setup(self, context: ReduceContext) -> None:
        """Called once before the first group."""

    def reduce(self, key: K2, values: Iterable[V2], context: ReduceContext) -> None:
        """Default: identity over the group."""
        for value in values:
            context.write(key, value)  # type: ignore[arg-type]

    def cleanup(self, context: ReduceContext) -> None:
        """Called once after the last group."""

    def run(self, context: ReduceContext) -> None:
        self.setup(context)
        try:
            while context.next_key():
                self.reduce(context.get_current_key(), context.get_values(), context)
        finally:
            self.cleanup(context)


# New-API configuration keys (Hadoop's mapreduce.* namespace).
NEW_MAPPER_CLASS_KEY = "mapreduce.map.class"
NEW_REDUCER_CLASS_KEY = "mapreduce.reduce.class"
NEW_COMBINER_CLASS_KEY = "mapreduce.combine.class"


class Job:
    """The new-API job handle, wrapping a :class:`JobConf`.

    Mirrors Hadoop: ``Job`` is sugar over the configuration; engines consume
    the underlying conf.  ``wait_for_completion`` needs an engine, which in
    Hadoop comes from the cluster configuration — here it is injected (the
    integrated-mode JobClient of :mod:`repro.core.jobclient` does the same
    redirection trick as the paper's classpath swap).
    """

    def __init__(self, conf: Optional[JobConf] = None, job_name: str = ""):
        self.conf = conf if conf is not None else JobConf()
        if job_name:
            self.conf.set_job_name(job_name)
        self.conf.set_boolean(USE_NEW_API_KEY, True)
        self._engine = None

    # -- class wiring --------------------------------------------------- #

    def set_mapper_class(self, cls: type) -> None:
        self.conf.set_class(NEW_MAPPER_CLASS_KEY, cls)

    def set_reducer_class(self, cls: type) -> None:
        self.conf.set_class(NEW_REDUCER_CLASS_KEY, cls)

    def set_combiner_class(self, cls: type) -> None:
        self.conf.set_class(NEW_COMBINER_CLASS_KEY, cls)

    def set_partitioner_class(self, cls: type) -> None:
        self.conf.set_partitioner_class(cls)

    def set_input_format_class(self, cls: type) -> None:
        self.conf.set_input_format(cls)

    def set_output_format_class(self, cls: type) -> None:
        self.conf.set_output_format(cls)

    def set_output_key_class(self, cls: type) -> None:
        self.conf.set_output_key_class(cls)

    def set_output_value_class(self, cls: type) -> None:
        self.conf.set_output_value_class(cls)

    def set_map_output_key_class(self, cls: type) -> None:
        self.conf.set_map_output_key_class(cls)

    def set_map_output_value_class(self, cls: type) -> None:
        self.conf.set_map_output_value_class(cls)

    def set_num_reduce_tasks(self, n: int) -> None:
        self.conf.set_num_reduce_tasks(n)

    def set_sort_comparator_class(self, cls: type) -> None:
        self.conf.set_output_key_comparator_class(cls)

    def set_grouping_comparator_class(self, cls: type) -> None:
        self.conf.set_output_value_grouping_comparator(cls)

    # -- paths ------------------------------------------------------------ #

    def add_input_path(self, path: str) -> None:
        self.conf.add_input_path(path)

    def set_output_path(self, path: str) -> None:
        self.conf.set_output_path(path)

    # -- submission --------------------------------------------------------- #

    def set_engine(self, engine: Any) -> None:
        """Attach the engine ``wait_for_completion`` submits to."""
        self._engine = engine

    def wait_for_completion(self, verbose: bool = False) -> bool:
        """Submit and block until done; True on success (Hadoop semantics)."""
        if self._engine is None:
            raise RuntimeError(
                "no engine attached — call set_engine() or submit via a JobClient"
            )
        result = self._engine.run_job(self.conf)
        if verbose:  # pragma: no cover - cosmetic
            print(f"job {self.conf.get_job_name()}: {result}")
        return result.succeeded
