"""MultipleInputs / MultipleOutputs (paper Section 4.2.2).

The Hadoop model allows one input format and one output stream per job; for
anything richer (e.g. the matvec job's separate matrix and vector inputs,
each routed to its own mapper) the standard library supplies
``MultipleInputs`` — which tags each split with its base format and mapper —
and ``MultipleOutputs`` — which gives reducers additional named output
streams.

The paper notes both classes must be made cache-aware to work with M3R
("this code needs to be modified to enable caching ... transparently done by
M3R").  Here the M3R engine achieves the same transparency by unwrapping
:class:`TaggedInputSplit` through the :class:`~repro.api.extensions.DelegatingSplit`
interface, so the cache sees the underlying ``FileSplit``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.api.conf import (
    ACTUAL_MAPPER_KEY as _ACTUAL_MAPPER_KEY,
    JobConf,
    TASK_FS_KEY,
    TASK_PARTITION_KEY,
)
from repro.api.extensions import DelegatingSplit
from repro.api.formats import (
    FileOutputFormat,
    InputFormat,
    OutputFormat,
    RecordReader,
    RecordWriter,
)
from repro.api.mapred import Mapper, OutputCollector, Reporter
from repro.api.splits import InputSplit

#: Conf key holding {path: [(InputFormat class, Mapper class | None), ...]}.
#: A list per path so the same input can feed two different mappers (the
#: self-join / ``X * X`` pattern higher layers generate).
MULTIPLE_INPUTS_KEY = "mapreduce.input.multipleinputs.dir.registrations"
#: Conf key holding {name: (OutputFormat class, key cls, value cls)}.
MULTIPLE_OUTPUTS_KEY = "mapreduce.multipleoutputs.named"

# Private engine-to-task keys (TASK_FS_KEY / TASK_PARTITION_KEY, imported
# above): the running engine injects the task's filesystem and partition so
# MultipleOutputs can create writers.  Registered as internal knobs in the
# KnobRegistry, so they validate like every other m3r.* key.


class TaggedInputSplit(InputSplit, DelegatingSplit):
    """A split tagged with the input format and mapper that should process it."""

    def __init__(
        self,
        delegate: InputSplit,
        input_format_class: Type[InputFormat],
        mapper_class: Type[Any],
    ):
        self.delegate = delegate
        self.input_format_class = input_format_class
        self.mapper_class = mapper_class

    def get_length(self) -> int:
        return self.delegate.get_length()

    def get_locations(self) -> List[str]:
        return self.delegate.get_locations()

    def get_delegate(self) -> InputSplit:
        return self.delegate

    def __repr__(self) -> str:
        return (
            f"TaggedInputSplit({self.delegate!r}, "
            f"format={self.input_format_class.__name__}, "
            f"mapper={self.mapper_class.__name__})"
        )


class MultipleInputs:
    """Registers per-path input formats and mappers on a JobConf."""

    @staticmethod
    def add_input_path(
        conf: JobConf,
        path: str,
        input_format_class: Type[InputFormat],
        mapper_class: Optional[Type[Any]] = None,
    ) -> None:
        """Route ``path`` through ``input_format_class`` (and optionally a
        dedicated mapper), switching the job onto the delegating machinery.

        The same path may be registered more than once with different
        mappers; each registration produces its own tagged splits.
        """
        registrations: Dict[str, List[Tuple[type, Optional[type]]]] = {
            p: list(regs) for p, regs in (conf.get(MULTIPLE_INPUTS_KEY) or {}).items()
        }
        registrations.setdefault(path, []).append((input_format_class, mapper_class))
        conf.set(MULTIPLE_INPUTS_KEY, registrations)
        if path not in conf.get_input_paths():
            conf.add_input_path(path)
        conf.set_input_format(DelegatingInputFormat)


class DelegatingInputFormat(InputFormat):
    """Computes splits per registered path with its base format, then tags
    each split so the engine can route it to the right mapper."""

    def get_splits(self, fs: Any, conf: JobConf, num_splits: int) -> List[InputSplit]:
        registrations: Dict[str, List[Tuple[type, Optional[type]]]] = (
            conf.get(MULTIPLE_INPUTS_KEY) or {}
        )
        if not registrations:
            raise ValueError("DelegatingInputFormat configured without MultipleInputs")
        total = sum(len(regs) for regs in registrations.values())  # noqa: M3R002 - order-independent sum
        splits: List[InputSplit] = []
        for path in sorted(registrations):
            for format_class, mapper_class in registrations[path]:
                scoped = JobConf(conf)
                scoped.set_input_paths(path)
                base_format = format_class()
                resolved_mapper = mapper_class or conf.get_mapper_class()
                if resolved_mapper is None:
                    raise ValueError(f"no mapper registered for input path {path}")
                per_registration = max(1, num_splits // max(1, total))
                for split in base_format.get_splits(fs, scoped, per_registration):
                    splits.append(TaggedInputSplit(split, format_class, resolved_mapper))
        return splits

    def get_record_reader(
        self, fs: Any, split: InputSplit, conf: JobConf, reporter: Reporter
    ) -> RecordReader:
        if not isinstance(split, TaggedInputSplit):
            raise TypeError(f"expected TaggedInputSplit, got {type(split)}")
        base_format = split.input_format_class()
        return base_format.get_record_reader(fs, split.get_delegate(), conf, reporter)


class DelegatingMapper(Mapper):
    """Instantiates the tagged mapper for the current split and forwards to it.

    Engines set :data:`ACTUAL_MAPPER_KEY` on the task-scoped conf before
    configuring this class (Hadoop does the same through
    ``TaggedInputSplit`` + conf plumbing).
    """

    ACTUAL_MAPPER_KEY = _ACTUAL_MAPPER_KEY

    def __init__(self) -> None:
        self._actual: Optional[Mapper] = None

    def configure(self, conf: JobConf) -> None:
        actual_class = conf.get_class(self.ACTUAL_MAPPER_KEY)
        if actual_class is None:
            raise ValueError(
                "DelegatingMapper used outside MultipleInputs task context"
            )
        self._actual = actual_class()
        self._actual.configure(conf)

    def map(self, key: Any, value: Any, output: OutputCollector, reporter: Reporter) -> None:
        if self._actual is None:
            raise RuntimeError("DelegatingMapper.map before configure")
        self._actual.map(key, value, output, reporter)

    def close(self) -> None:
        if self._actual is not None:
            self._actual.close()


class MultipleOutputs:
    """Named side outputs for a reduce (or map-only) task.

    Usage mirrors Hadoop::

        MultipleOutputs.add_named_output(conf, "rejected", TextOutputFormat,
                                         Text, Text)
        ...
        def configure(self, conf):
            self.mos = MultipleOutputs(conf)
        def reduce(self, key, values, output, reporter):
            self.mos.collect("rejected", reporter, key, bad_value)
        def close(self):
            self.mos.close()

    Named files land at ``<output dir>/<name>-r-<partition>``.
    """

    @staticmethod
    def add_named_output(
        conf: JobConf,
        name: str,
        output_format_class: Type[OutputFormat],
        key_class: type,
        value_class: type,
    ) -> None:
        if not name.isidentifier():
            raise ValueError(f"named output {name!r} must be a simple identifier")
        named: Dict[str, Tuple[type, type, type]] = dict(conf.get(MULTIPLE_OUTPUTS_KEY) or {})
        named[name] = (output_format_class, key_class, value_class)
        conf.set(MULTIPLE_OUTPUTS_KEY, named)

    @staticmethod
    def get_named_outputs(conf: JobConf) -> Dict[str, Tuple[type, type, type]]:
        return dict(conf.get(MULTIPLE_OUTPUTS_KEY) or {})

    def __init__(self, conf: JobConf):
        self._conf = conf
        self._named = self.get_named_outputs(conf)
        self._fs = conf.get(TASK_FS_KEY)
        self._partition = conf.get_int(TASK_PARTITION_KEY, 0)
        if self._fs is None:
            raise RuntimeError(
                "MultipleOutputs needs the task filesystem; run inside an engine"
            )
        self._writers: Dict[str, RecordWriter] = {}

    def collect(self, name: str, reporter: Reporter, key: Any, value: Any) -> None:
        """Emit a pair on the named stream."""
        self._writer(name, reporter).write(key, value)

    def _writer(self, name: str, reporter: Reporter) -> RecordWriter:
        if name not in self._named:
            raise KeyError(f"named output {name!r} was never registered")
        if name not in self._writers:
            format_class, _key_class, _value_class = self._named[name]
            output_format = format_class()
            file_name = f"{name}-r-{self._partition:05d}"
            self._writers[name] = output_format.get_record_writer(
                self._fs, self._conf, file_name, reporter
            )
        return self._writers[name]

    def close(self) -> None:
        """Close all named writers (must be called from the task's close)."""
        for writer in self._writers.values():  # noqa: M3R002 - insertion-ordered dict, deterministic
            writer.close()
        self._writers.clear()
