"""Process-portability licensing for user classes (DESIGN.md §16).

The process place backend ships task *kernels* — the pure user-code part
of a map or reduce task — to persistent per-place worker processes.  A
kernel is only safe to ship when its user classes are self-contained:
importable by qualified name (module-level classes, picklable by
reference), free of filesystem and engine side effects, and dependent on
nothing but the records they are handed plus the job conf.  Most stock
classes qualify; arbitrary user classes may not (closures over driver
state, module-level caches mutated per call, direct filesystem access).

So process execution of a kernel is *opt-in*, exactly like the
:class:`~repro.api.vectorized.AssociativeReducer` license for in-mapper
combining:

* :class:`ProcessPortable` — inheritable marker.  A class that carries it
  asserts its ``map``/``reduce``/``compare`` code is pure record-in,
  record-out compute (counter updates and ``charge_compute`` are fine —
  they travel back in the kernel outcome).  Unlike the associativity
  marker this one *is* inherited: purity is not invalidated by
  overriding, and a subclass that adds driver-state dependencies is
  broken under the thread backend's contract too.
* :data:`PROCESS_PORTABLE_ALLOWLIST` — exact qualified names for the
  stock classes that predate the marker.

An unlicensed class never fails a job: the driver just runs that kernel
locally (the thread-backend path), so results are identical either way —
licensing only decides *where* the kernel executes.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PROCESS_PORTABLE_ALLOWLIST",
    "ProcessPortable",
    "is_process_portable",
]


class ProcessPortable:
    """Opt-in marker: instances of this class may run inside a place's
    worker process (contract in the module docstring)."""


#: Stock classes known to satisfy the ProcessPortable contract.  Exact
#: qualified names; framework identities (IdentityMapper and friends) are
#: licensed here rather than marked so user subclasses stay unlicensed by
#: default.
PROCESS_PORTABLE_ALLOWLIST = frozenset({
    "repro.api.mapred.IdentityMapper",
    "repro.api.mapred.IdentityReducer",
    "repro.api.partitioner.HashPartitioner",
    "repro.apps.wordcount.WordCountMapperReuse",
    "repro.apps.wordcount.WordCountMapperImmutable",
    "repro.apps.wordcount.SumReducer",
    "repro.apps.wordcount.SumReducerReuse",
    "repro.apps.grep.GrepMapper",
    "repro.apps.grep.LongSumReducer",
    "repro.apps.grep.InvertMapper",
    "repro.apps.grep.IdentitySortReducer",
})


def is_process_portable(cls: Any) -> bool:
    """May kernels driving this class execute in a worker process?"""
    if not isinstance(cls, type):
        return False
    if issubclass(cls, ProcessPortable):
        return True
    return f"{cls.__module__}.{cls.__qualname__}" in PROCESS_PORTABLE_ALLOWLIST
