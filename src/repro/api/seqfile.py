"""A byte-level SequenceFile codec.

The in-memory filesystem normally stores typed pair *objects* (with exact
wire-size accounting), which is fast and sufficient for the engines.  This
module provides the real thing for when byte-level fidelity matters — e.g.
exporting data out of the simulation, or checking that every Writable in a
pipeline genuinely round-trips through its own ``write``/``read_fields``:

* a magic header (``SEQ6`` — the Hadoop 0.2x block-compressed era format
  number, uncompressed variant),
* the key and value class names, so readers can instantiate them,
* a record count, then length-prefixed serialized records.

``BinarySequenceFileOutputFormat`` / ``BinarySequenceFileInputFormat`` plug
the codec into ordinary jobs: output part files become raw bytes in the
filesystem, and reading deserializes through the Writable machinery.
"""

from __future__ import annotations

import importlib
from typing import Any, List, Optional, Tuple, Type

from repro.api.conf import JobConf
from repro.api.formats import (
    FileInputFormat,
    FileOutputFormat,
    RecordReader,
    RecordWriter,
)
from repro.api.io_util import DataInputBuffer, DataOutputBuffer
from repro.api.mapred import Reporter
from repro.api.splits import FileSplit, InputSplit
from repro.api.writables import Writable

MAGIC = b"SEQ6"


class SequenceFileFormatError(ValueError):
    """Raised when bytes do not parse as a sequence file."""


def _class_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _load_class(path: str) -> Type[Writable]:
    module_name, _, qualname = path.partition(":")
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise SequenceFileFormatError(f"{path!r} is not a class")
    return obj


def encode_pairs(pairs: List[Tuple[Writable, Writable]],
                 key_class: Optional[type] = None,
                 value_class: Optional[type] = None) -> bytes:
    """Serialize typed pairs to sequence-file bytes.

    Key/value classes default to the first record's types; every record
    must match (sequence files are homogeneous).
    """
    if pairs:
        key_class = key_class or type(pairs[0][0])
        value_class = value_class or type(pairs[0][1])
    if key_class is None or value_class is None:
        raise ValueError("empty files need explicit key/value classes")
    out = DataOutputBuffer()
    out.write_bytes(MAGIC)
    out.write_utf(_class_path(key_class))
    out.write_utf(_class_path(value_class))
    out.write_int(len(pairs))
    for key, value in pairs:
        if type(key) is not key_class or type(value) is not value_class:
            raise TypeError(
                f"heterogeneous record ({type(key).__name__}, "
                f"{type(value).__name__}) in a "
                f"({key_class.__name__}, {value_class.__name__}) file"
            )
        key_buf = DataOutputBuffer()
        key.write(key_buf)
        value_buf = DataOutputBuffer()
        value.write(value_buf)
        out.write_vint(len(key_buf))
        out.write_bytes(key_buf.to_bytes())
        out.write_vint(len(value_buf))
        out.write_bytes(value_buf.to_bytes())
    return out.to_bytes()


def decode_pairs(data: bytes) -> List[Tuple[Writable, Writable]]:
    """Deserialize sequence-file bytes back to typed pairs."""
    inp = DataInputBuffer(data)
    if inp.read_bytes(4) != MAGIC:
        raise SequenceFileFormatError("bad magic; not a sequence file")
    key_class = _load_class(inp.read_utf())
    value_class = _load_class(inp.read_utf())
    count = inp.read_int()
    pairs: List[Tuple[Writable, Writable]] = []
    for _ in range(count):
        key_len = inp.read_vint()
        key = key_class()
        key.read_fields(DataInputBuffer(inp.read_bytes(key_len)))
        value_len = inp.read_vint()
        value = value_class()
        value.read_fields(DataInputBuffer(inp.read_bytes(value_len)))
        pairs.append((key, value))
    if inp.remaining:
        raise SequenceFileFormatError(f"{inp.remaining} trailing bytes")
    return pairs


class _BinaryWriter(RecordWriter):
    def __init__(self, fs: Any, path: str):
        self._fs = fs
        self._path = path
        self._pairs: List[Tuple[Writable, Writable]] = []
        self._closed = False

    def write(self, key: Any, value: Any) -> None:
        self._pairs.append((key, value))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._pairs:
                self._fs.write_bytes(self._path, encode_pairs(self._pairs))
            else:
                # Hadoop writes a header-only file for an empty partition;
                # readers must find a parseable file at every part path.
                self._fs.write_bytes(
                    self._path,
                    encode_pairs([], key_class=Writable, value_class=Writable),
                )


class BinarySequenceFileOutputFormat(FileOutputFormat):
    """Writes genuinely serialized bytes to ``<dir>/part-NNNNN``."""

    def get_record_writer(self, fs: Any, conf: JobConf, name: str,
                          reporter: Reporter) -> RecordWriter:
        output = conf.get_output_path()
        if output is None:
            raise ValueError("no output path configured")
        return _BinaryWriter(fs, f"{output.rstrip('/')}/{name}")


class _BinaryReader(RecordReader):
    def __init__(self, pairs: List[Tuple[Writable, Writable]]):
        self._pairs = pairs
        self._index = 0

    def next_pair(self) -> Optional[Tuple[Any, Any]]:
        if self._index >= len(self._pairs):
            return None
        pair = self._pairs[self._index]
        self._index += 1
        return pair  # freshly deserialized: already private objects

    def get_progress(self) -> float:
        return 1.0 if not self._pairs else self._index / len(self._pairs)


class BinarySequenceFileInputFormat(FileInputFormat):
    """Reads byte-level sequence files (one split per file)."""

    def is_splitable(self, fs: Any, path: str) -> bool:
        return False

    def get_record_reader(self, fs: Any, split: InputSplit, conf: JobConf,
                          reporter: Reporter) -> RecordReader:
        if not isinstance(split, FileSplit):
            raise TypeError(
                f"BinarySequenceFileInputFormat expects FileSplit, got {type(split)}"
            )
        return _BinaryReader(decode_pairs(fs.read_bytes(split.path)))
