"""Job normalization: one view of a job for both engines.

A Hadoop job configuration can wire user code through either API generation
(old-style ``mapred`` or new-style ``mapreduce``), through a custom
``MapRunnable``, through ``MultipleInputs`` tagging, with or without a
combiner, and with custom sort/grouping comparators.  Rather than teach both
engines all of those combinations, :class:`JobSpec` resolves a ``JobConf``
into a uniform description plus *drivers* that execute the user code — the
engines then differ only in what they simulate around the drivers (which is
precisely the paper's API-versus-engine distinction).

The immutability rules of paper Section 4.1 are encoded here:

* a map task's output is immutable iff the mapper class implements
  ``ImmutableOutput`` *and* the map runner does (a custom runner must be
  marked; M3R's fresh-object replacement of the default runner is marked;
  the stock default runner is not);
* a reduce task's output is immutable iff the reducer class is marked.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.api.conf import JobConf
from repro.api.extensions import is_immutable_output
from repro.api.formats import (
    InputFormat,
    OutputFormat,
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
)
from repro.api.mapred import (
    DefaultMapRunnable,
    FreshObjectMapRunnable,
    IdentityMapper,
    MapRunnable,
    Mapper,
    OutputCollector,
    Reducer,
    Reporter,
    _reuse_into,
)
from repro.api.vectorized import is_vectorized, pack_batch
from repro.api.mapreduce import (
    NEW_COMBINER_CLASS_KEY,
    NEW_MAPPER_CLASS_KEY,
    NEW_REDUCER_CLASS_KEY,
    MapContext,
    NewMapper,
    NewReducer,
    ReduceContext,
)
from repro.api.multiple_io import DelegatingMapper, TaggedInputSplit
from repro.api.partitioner import HashPartitioner, Partitioner
from repro.api.splits import InputSplit


def _compare_fn(comparator_class: Optional[type]) -> Optional[Callable[[Any, Any], int]]:
    """Build a cmp(a, b) -> int from a comparator class, if one is set."""
    if comparator_class is None:
        return None
    comparator = comparator_class()
    compare = getattr(comparator, "compare", None)
    if not callable(compare):
        raise TypeError(f"{comparator_class.__name__} has no compare(a, b) method")
    return compare


def _natural_compare(a: Any, b: Any) -> int:
    """Default key ordering: WritableComparable.compare_to, else rich compare."""
    compare_to = getattr(a, "compare_to", None)
    if callable(compare_to):
        return compare_to(b)
    return (a > b) - (a < b)


@dataclass
class JobSpec:
    """A normalized, engine-agnostic job description."""

    conf: JobConf
    name: str
    input_format: InputFormat
    output_format: OutputFormat
    partitioner: Partitioner
    num_reducers: int
    input_paths: List[str]
    output_path: Optional[str]
    mapper_class: Optional[type]
    reducer_class: Optional[type]
    combiner_class: Optional[type]
    map_runner_class: Optional[type]
    sort_cmp: Callable[[Any, Any], int]
    group_cmp: Callable[[Any, Any], int]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_conf(cls, conf: JobConf) -> "JobSpec":
        """Resolve a JobConf into a JobSpec (validates the wiring)."""
        mapper_class = conf.get_class(NEW_MAPPER_CLASS_KEY) or conf.get_mapper_class()
        reducer_class = conf.get_class(NEW_REDUCER_CLASS_KEY) or conf.get_reducer_class()
        combiner_class = (
            conf.get_class(NEW_COMBINER_CLASS_KEY) or conf.get_combiner_class()
        )
        input_format_class = conf.get_input_format() or SequenceFileInputFormat
        output_format_class = conf.get_output_format() or SequenceFileOutputFormat
        partitioner_class = conf.get_partitioner_class() or HashPartitioner
        partitioner = partitioner_class()
        partitioner.configure(conf)

        sort_fn = _compare_fn(conf.get_output_key_comparator_class()) or _natural_compare
        group_fn = _compare_fn(conf.get_output_value_grouping_comparator()) or sort_fn

        num_reducers = conf.get_num_reduce_tasks()
        if num_reducers < 0:
            raise ValueError("negative reducer count")

        return cls(
            conf=conf,
            name=conf.get_job_name(),
            input_format=input_format_class(),
            output_format=output_format_class(),
            partitioner=partitioner,
            num_reducers=num_reducers,
            input_paths=conf.get_input_paths(),
            output_path=conf.get_output_path(),
            mapper_class=mapper_class,
            reducer_class=reducer_class,
            combiner_class=combiner_class,
            map_runner_class=conf.get_map_runner_class(),
            sort_cmp=sort_fn,
            group_cmp=group_fn,
        )

    # ------------------------------------------------------------------ #
    # shape queries
    # ------------------------------------------------------------------ #

    @property
    def is_map_only(self) -> bool:
        """Zero reducers: map output goes straight to the output format."""
        return self.num_reducers == 0

    def sort_key(self) -> Callable[[Tuple[Any, Any]], Any]:
        """A ``sorted`` key function over (key, value) pairs."""
        cmp = self.sort_cmp
        return functools.cmp_to_key(lambda a, b: cmp(a[0], b[0]))  # type: ignore[misc]

    def resolve_mapper_class(self, split: InputSplit) -> type:
        """The mapper that should process ``split`` (MultipleInputs-aware)."""
        if isinstance(split, TaggedInputSplit):
            return split.mapper_class
        if self.mapper_class is None:
            return IdentityMapper
        return self.mapper_class

    def uses_natural_ordering(self) -> bool:
        """No custom sort or grouping comparator (DESIGN.md §14).

        In-mapper combining groups keys with a hash table, so it is only
        byte-identical to sort-then-combine when dict equality and the
        comparators agree — guaranteed for the natural ordering, not for
        arbitrary user comparators.
        """
        return self.sort_cmp is _natural_compare and self.group_cmp is _natural_compare

    def supports_batched_map(self, split: InputSplit) -> bool:
        """Can the batched driver run this split's mapper faithfully?

        Custom MapRunnables own their own read loop and new-API mappers run
        through a context; both fall back to the per-record driver.
        """
        mapper_class = self.resolve_mapper_class(split)
        if mapper_class is DelegatingMapper:
            return False
        if _uses_new_api(mapper_class):
            return False
        return self.map_runner_class is None

    # ------------------------------------------------------------------ #
    # immutability (paper Section 4.1)
    # ------------------------------------------------------------------ #

    def map_output_immutable(self, split: InputSplit, fresh_runner: bool) -> bool:
        """May the engine alias this map task's output instead of cloning?

        ``fresh_runner`` reflects whether the engine replaced the default
        MapRunnable with the fresh-object variant (M3R does; Hadoop does not
        need to, since it serializes immediately).
        """
        mapper_class = self.resolve_mapper_class(split)
        if not is_immutable_output(mapper_class):
            return False
        if _uses_new_api(mapper_class):
            return True  # new API has no MapRunnable; the class marker decides
        if self.map_runner_class is not None:
            return is_immutable_output(self.map_runner_class)
        return fresh_runner

    def reduce_output_immutable(self) -> bool:
        """May the engine alias reduce output instead of cloning?"""
        return self.reducer_class is not None and is_immutable_output(self.reducer_class)

    # ------------------------------------------------------------------ #
    # drivers: execute user code uniformly for both engines
    # ------------------------------------------------------------------ #

    def run_map_task(
        self,
        split: InputSplit,
        reader: Any,
        collector: OutputCollector,
        reporter: Reporter,
        task_conf: Optional[JobConf] = None,
        fresh_runner: bool = False,
    ) -> None:
        """Drive one map task's user code over ``reader`` into ``collector``.

        ``task_conf`` is the task-scoped configuration (defaults to a copy of
        the job conf); ``fresh_runner`` selects M3R's fresh-object
        replacement for the default MapRunnable.
        """
        conf = task_conf if task_conf is not None else JobConf(self.conf)
        mapper_class = self.resolve_mapper_class(split)
        if mapper_class is DelegatingMapper:
            raise ValueError(
                "DelegatingMapper reached a map task without a TaggedInputSplit; "
                "register inputs through MultipleInputs.add_input_path"
            )

        if _uses_new_api(mapper_class):
            mapper = mapper_class()
            context = MapContext(conf, iter(reader), collector.collect, reporter)
            mapper.run(context)
            return

        mapper = mapper_class()
        mapper.configure(conf)
        runner: MapRunnable
        if self.map_runner_class is not None:
            runner = self.map_runner_class(mapper)
            runner.configure(conf)
        elif fresh_runner:
            runner = FreshObjectMapRunnable(mapper)
        else:
            runner = DefaultMapRunnable(mapper)
        try:
            runner.run(reader, collector, reporter)
        finally:
            mapper.close()

    def run_map_task_batched(
        self,
        split: InputSplit,
        reader: Any,
        collector: OutputCollector,
        reporter: Reporter,
        task_conf: Optional[JobConf] = None,
        fresh_runner: bool = False,
    ) -> None:
        """Batched counterpart of :meth:`run_map_task` (DESIGN.md §14).

        ``reader`` must expose ``next_batch() -> list[(k, v)] | None``
        (see :class:`repro.engine_common.BatchingReader`).  Record order,
        object-reuse semantics and emissions are identical to the
        per-record driver; only the read/dispatch granularity changes.
        Unsupported shapes (custom MapRunnable, new-API mapper) fall back
        to :meth:`run_map_task` driven through the same reader.
        """
        if not self.supports_batched_map(split):
            self.run_map_task(split, reader, collector, reporter, task_conf, fresh_runner)
            return
        conf = task_conf if task_conf is not None else JobConf(self.conf)
        mapper_class = self.resolve_mapper_class(split)
        mapper = mapper_class()
        mapper.configure(conf)
        next_batch = reader.next_batch
        try:
            if is_vectorized(mapper_class):
                as_arrays = bool(getattr(mapper_class, "batch_arrays", False))
                map_batch = mapper.map_batch
                while True:
                    batch = next_batch()
                    if batch is None:
                        break
                    keys, values = pack_batch(
                        [pair[0] for pair in batch],
                        [pair[1] for pair in batch],
                        as_arrays,
                    )
                    map_batch(keys, values, collector, reporter)
            elif fresh_runner:
                map_fn = mapper.map
                while True:
                    batch = next_batch()
                    if batch is None:
                        break
                    for key, value in batch:
                        map_fn(key, value, collector, reporter)
            else:
                # Hadoop's stock object-reuse loop, batched: same
                # _reuse_into dance per record as DefaultMapRunnable.
                map_fn = mapper.map
                reused_key: Any = None
                reused_value: Any = None
                while True:
                    batch = next_batch()
                    if batch is None:
                        break
                    for key, value in batch:
                        reused_key = _reuse_into(reused_key, key)
                        reused_value = _reuse_into(reused_value, value)
                        map_fn(reused_key, reused_value, collector, reporter)
        finally:
            mapper.close()

    def run_reduce_task(
        self,
        groups: Iterable[Tuple[Any, List[Any]]],
        collector: OutputCollector,
        reporter: Reporter,
        task_conf: Optional[JobConf] = None,
    ) -> None:
        """Drive one reduce task's user code over grouped, sorted input."""
        self._run_reduce_like(self.reducer_class, groups, collector, reporter, task_conf)

    def run_combine(
        self,
        groups: Iterable[Tuple[Any, List[Any]]],
        collector: OutputCollector,
        reporter: Reporter,
        task_conf: Optional[JobConf] = None,
    ) -> None:
        """Drive the combiner (caller guarantees one is configured)."""
        if self.combiner_class is None:
            raise RuntimeError("run_combine called on a job without a combiner")
        self._run_reduce_like(self.combiner_class, groups, collector, reporter, task_conf)

    def _run_reduce_like(
        self,
        reducer_class: Optional[type],
        groups: Iterable[Tuple[Any, List[Any]]],
        collector: OutputCollector,
        reporter: Reporter,
        task_conf: Optional[JobConf],
    ) -> None:
        conf = task_conf if task_conf is not None else JobConf(self.conf)
        if reducer_class is None:
            for key, values in groups:
                for value in values:
                    collector.collect(key, value)
            return
        if _uses_new_api(reducer_class):
            reducer = reducer_class()
            context = ReduceContext(conf, iter(groups), collector.collect, reporter)
            reducer.run(context)
            return
        reducer = reducer_class()
        reducer.configure(conf)
        try:
            for key, values in groups:
                reducer.reduce(key, iter(values), collector, reporter)
        finally:
            reducer.close()

    def group_sorted_pairs(
        self, pairs: List[Tuple[Any, Any]]
    ) -> Iterator[Tuple[Any, List[Any]]]:
        """Group an already-sorted run of pairs with the grouping comparator."""
        group_key: Any = None
        group_values: List[Any] = []
        for key, value in pairs:
            if group_values and self.group_cmp(key, group_key) == 0:
                group_values.append(value)
            else:
                if group_values:
                    yield group_key, group_values
                group_key = key
                group_values = [value]
        if group_values:
            yield group_key, group_values


def _uses_new_api(cls: type) -> bool:
    """Is this a new-style (``mapreduce``) mapper/reducer class?"""
    return issubclass(cls, (NewMapper, NewReducer))


class JobSequence:
    """An ordered pipeline of jobs, each consuming its predecessors' output.

    The HMR API does not represent workflows (paper Section 3: "the client
    must submit two MR jobs, using the output of the first as an input to
    the second"); this helper is client-side sugar only — it submits jobs
    one at a time, exactly as a Hadoop driver program would.
    """

    def __init__(self, confs: Optional[List[JobConf]] = None):
        self.confs: List[JobConf] = list(confs) if confs is not None else []

    def add(self, conf: JobConf) -> "JobSequence":
        self.confs.append(conf)
        return self

    def __len__(self) -> int:
        return len(self.confs)

    def __iter__(self) -> Iterator[JobConf]:
        return iter(self.confs)

    def run_all(self, engine: Any) -> List[Any]:
        """Submit every job in order; stops at (and raises on) a failure."""
        results = []
        for conf in self.confs:
            result = engine.run_job(conf)
            results.append(result)
            if not result.succeeded:
                raise RuntimeError(
                    f"job {conf.get_job_name()!r} failed: {result.error}"
                )
        return results
