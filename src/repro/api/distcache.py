"""The Hadoop distributed cache.

Jobs register read-only side files on the configuration; the framework makes
them available to every task.  In real Hadoop that means copying files to
each tasktracker's local disk; in M3R (and in both engines here) the files
are already reachable through the shared filesystem, so "localization" is a
metadata operation — but the API shape and the simulated localization cost
are preserved (the paper lists the distributed cache among the supported
HMR features).
"""

from __future__ import annotations

from typing import Any, List

from repro.api.conf import JobConf

CACHE_FILES_KEY = "mapred.cache.files"
CACHE_ARCHIVES_KEY = "mapred.cache.archives"
LOCALIZED_PREFIX_KEY = "mapred.cache.localized.prefix"


class DistributedCache:
    """Static helpers mirroring ``org.apache.hadoop.filecache.DistributedCache``."""

    @staticmethod
    def add_cache_file(uri: str, conf: JobConf) -> None:
        """Register ``uri`` as a cached side file for every task of the job."""
        files = conf.get_strings(CACHE_FILES_KEY)
        if uri not in files:
            files.append(uri)
            conf.set_strings(CACHE_FILES_KEY, files)

    @staticmethod
    def add_cache_archive(uri: str, conf: JobConf) -> None:
        """Register an archive (treated as an opaque file in this model)."""
        archives = conf.get_strings(CACHE_ARCHIVES_KEY)
        if uri not in archives:
            archives.append(uri)
            conf.set_strings(CACHE_ARCHIVES_KEY, archives)

    @staticmethod
    def get_cache_files(conf: JobConf) -> List[str]:
        """The registered cache file URIs."""
        return conf.get_strings(CACHE_FILES_KEY)

    @staticmethod
    def get_cache_archives(conf: JobConf) -> List[str]:
        return conf.get_strings(CACHE_ARCHIVES_KEY)

    @staticmethod
    def get_local_cache_files(conf: JobConf) -> List[str]:
        """Paths tasks read the cached files from.

        Both engines expose the original paths (the shared in-memory
        filesystem is visible from every place, as HDFS is from every
        tasktracker); the prefix hook lets tests observe localization.
        """
        prefix = conf.get(LOCALIZED_PREFIX_KEY, "")
        return [prefix + path for path in DistributedCache.get_cache_files(conf)]

    @staticmethod
    def total_cache_bytes(conf: JobConf, fs: Any) -> int:
        """Total bytes of registered cache files (engines charge the copy)."""
        total = 0
        for path in DistributedCache.get_cache_files(conf):
            status = fs.get_file_status(path)
            if status is not None:
                total += status.length
        return total
