"""The Hadoop MapReduce ("HMR") API clone.

The paper's first contribution is the distinction between the HMR *APIs* and
the HMR *engine*: M3R reimplements the engine while keeping the APIs, so
existing jobs (including compiler-generated ones) run unchanged.  This
package is the API half of that story: a Python rendering of the Hadoop
0.22-era surface that both our engines (:mod:`repro.hadoop_engine` and
:mod:`repro.core`) execute.

It covers, per the paper's compatibility list (Section 1): the old-style
``mapred`` and new-style ``mapreduce`` interfaces, counters, user-specified
sorting and grouping comparators, user-defined input/output formats, the
distributed cache, and MultipleInputs/MultipleOutputs — plus the
backward-compatible M3R extensions of Section 4 (``ImmutableOutput``,
``NamedSplit``/``DelegatingSplit``/``PlacedSplit``, ``CacheFS``).
"""

from repro.api.writables import (
    Writable,
    WritableComparable,
    IntWritable,
    LongWritable,
    VIntWritable,
    FloatWritable,
    DoubleWritable,
    BooleanWritable,
    Text,
    BytesWritable,
    NullWritable,
    ArrayWritable,
    PairWritable,
    BlockIndexWritable,
    MatrixBlockWritable,
    VectorBlockWritable,
)
from repro.api.conf import Configuration, JobConf
from repro.api.counters import Counters, TaskCounter, JobCounter, FileSystemCounter
from repro.api.partitioner import Partitioner, HashPartitioner, TotalOrderPartitioner
from repro.api.splits import InputSplit, FileSplit
from repro.api.extensions import (
    ImmutableOutput,
    NamedSplit,
    DelegatingSplit,
    PlacedSplit,
    CacheFS,
    TEMP_OUTPUT_PREFIX_KEY,
    DEFAULT_TEMP_OUTPUT_PREFIX,
    is_immutable_output,
)
from repro.api.mapred import (
    Mapper,
    Reducer,
    MapRunnable,
    DefaultMapRunnable,
    OutputCollector,
    Reporter,
    IdentityMapper,
    IdentityReducer,
    Closeable,
)
from repro.api.mapreduce import (
    NewMapper,
    NewReducer,
    TaskContext,
    MapContext,
    ReduceContext,
    Job,
)
from repro.api.formats import (
    RecordReader,
    RecordWriter,
    InputFormat,
    OutputFormat,
    FileInputFormat,
    FileOutputFormat,
    TextInputFormat,
    TextOutputFormat,
    KeyValueTextInputFormat,
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
    NullOutputFormat,
    OutputCommitter,
)
from repro.api.multiple_io import (
    MultipleInputs,
    MultipleOutputs,
    TaggedInputSplit,
    DelegatingInputFormat,
    DelegatingMapper,
)
from repro.api.distcache import DistributedCache
from repro.api.job import JobSpec, JobSequence
from repro.api.vectorized import (
    AssociativeReducer,
    VectorizedMapper,
    is_associative_reducer,
    is_vectorized,
)

__all__ = [
    # writables
    "Writable",
    "WritableComparable",
    "IntWritable",
    "LongWritable",
    "VIntWritable",
    "FloatWritable",
    "DoubleWritable",
    "BooleanWritable",
    "Text",
    "BytesWritable",
    "NullWritable",
    "ArrayWritable",
    "PairWritable",
    "BlockIndexWritable",
    "MatrixBlockWritable",
    "VectorBlockWritable",
    # conf
    "Configuration",
    "JobConf",
    # counters
    "Counters",
    "TaskCounter",
    "JobCounter",
    "FileSystemCounter",
    # partitioning
    "Partitioner",
    "HashPartitioner",
    "TotalOrderPartitioner",
    # splits & extensions
    "InputSplit",
    "FileSplit",
    "ImmutableOutput",
    "NamedSplit",
    "DelegatingSplit",
    "PlacedSplit",
    "CacheFS",
    "TEMP_OUTPUT_PREFIX_KEY",
    "DEFAULT_TEMP_OUTPUT_PREFIX",
    "is_immutable_output",
    # mapred (old API)
    "Mapper",
    "Reducer",
    "MapRunnable",
    "DefaultMapRunnable",
    "OutputCollector",
    "Reporter",
    "IdentityMapper",
    "IdentityReducer",
    "Closeable",
    # mapreduce (new API)
    "NewMapper",
    "NewReducer",
    "TaskContext",
    "MapContext",
    "ReduceContext",
    "Job",
    # formats
    "RecordReader",
    "RecordWriter",
    "InputFormat",
    "OutputFormat",
    "FileInputFormat",
    "FileOutputFormat",
    "TextInputFormat",
    "TextOutputFormat",
    "KeyValueTextInputFormat",
    "SequenceFileInputFormat",
    "SequenceFileOutputFormat",
    "NullOutputFormat",
    "OutputCommitter",
    # multiple IO
    "MultipleInputs",
    "MultipleOutputs",
    "TaggedInputSplit",
    "DelegatingInputFormat",
    "DelegatingMapper",
    # batched execution (DESIGN.md §14)
    "AssociativeReducer",
    "VectorizedMapper",
    "is_associative_reducer",
    "is_vectorized",
    # misc
    "DistributedCache",
    "JobSpec",
    "JobSequence",
]
