"""M3R's backward-compatible extensions to the HMR API (paper Section 4).

Every name here is designed so that the stock Hadoop engine can simply
*ignore* it: they are marker interfaces, optional interfaces on user types,
or plain configuration keys.  The same job class therefore runs unmodified
on both engines — only M3R changes behaviour.

* :class:`ImmutableOutput` — "this mapper/reducer/map-runner promises not to
  mutate keys or values after emitting them"; M3R skips defensive cloning.
* :class:`NamedSplit` — a user-defined split declares the name under which
  its data should be cached.
* :class:`DelegatingSplit` — a wrapper split tells M3R how to reach the
  underlying split (used by MultipleInputs' ``TaggedInputSplit``).
* :class:`PlacedSplit` — a split declares which partition (and therefore,
  via partition stability, which place) should map it.
* :class:`CacheFS` — the extra interface M3R-created FileSystem objects
  implement: ``get_raw_cache()`` yields a synthetic FileSystem whose
  operations touch only the cache, and ``get_cache_record_reader`` exposes
  the cached key/value sequence for a path.
* Temporary outputs — an output path whose last component starts with the
  configured prefix (default ``"temp"``) is never flushed to the real
  filesystem.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

# The temporary-output (Section 4.2.3) and engine-bypass (Section 5.3)
# keys are registered knobs: their strings, defaults and docs live in the
# KnobRegistry and reach this module through repro.api.conf.
from repro.api.conf import (
    DEFAULT_TEMP_OUTPUT_PREFIX,
    FORCE_HADOOP_ENGINE_KEY,
    TEMP_OUTPUT_PATHS_KEY,
    TEMP_OUTPUT_PREFIX_KEY,
)


class ImmutableOutput:
    """Marker: the implementing mapper/reducer/map-runner never mutates
    objects it has already emitted, so the engine may alias instead of clone.

    Hadoop ignores this interface entirely (paper Figure 4 shows the same
    WordCount running on both engines).
    """


def is_immutable_output(obj_or_cls: Any) -> bool:
    """True when the object or class carries the :class:`ImmutableOutput` marker."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    return issubclass(cls, ImmutableOutput)


class NamedSplit:
    """A user split that can name its data for the M3R cache (Section 4.2.1)."""

    def get_name(self) -> str:
        """The cache name for the data associated with this split."""
        raise NotImplementedError


class DelegatingSplit:
    """A wrapper split that exposes the split it wraps (Section 4.2.1)."""

    def get_delegate(self) -> Any:
        """The underlying split whose naming/caching rules should apply."""
        raise NotImplementedError


class PlacedSplit:
    """A split that declares its home partition (Section 4.3).

    M3R sends such a split to a mapper running at the place that partition
    maps to under the partition-stability guarantee, so data lands in the
    right place from the very beginning of a job sequence.
    """

    def get_partition(self) -> int:
        """The partition this split's data belongs to."""
        raise NotImplementedError


class CacheFS:
    """The cache-management interface of M3R FileSystem objects (Section 4.2.3/4).

    ``get_raw_cache()`` returns a *synthetic* FileSystem: operations on it
    (delete, rename, get_file_status) touch only the cache, never the
    underlying filesystem — that is how jobs evict data they know will not
    be read again.
    """

    def get_raw_cache(self) -> Any:
        """A FileSystem view whose operations affect only the cache."""
        raise NotImplementedError

    def get_cache_record_reader(
        self, path: str
    ) -> Optional[Iterator[Tuple[Any, Any]]]:
        """An iterator over the cached key/value sequence for ``path``,
        or ``None`` when the path is not cached."""
        raise NotImplementedError


# (Temporary-output and engine-bypass knob keys are imported at the top of
# the module from repro.api.conf, which derives them from the KnobRegistry.)


def is_temporary_output(path: str, conf: Any) -> bool:
    """Does ``path`` follow the temporary-output convention of Section 4.2.3?

    True when the last path component starts with the configured prefix, or
    when the path is listed in :data:`TEMP_OUTPUT_PATHS_KEY`.
    """
    prefix = DEFAULT_TEMP_OUTPUT_PREFIX
    explicit: Tuple[str, ...] = ()
    if conf is not None:
        prefix = conf.get(TEMP_OUTPUT_PREFIX_KEY, DEFAULT_TEMP_OUTPUT_PREFIX)
        explicit = tuple(conf.get_strings(TEMP_OUTPUT_PATHS_KEY))
    if path in explicit:
        return True
    basename = path.rstrip("/").rsplit("/", 1)[-1]
    return basename.startswith(prefix)
