"""Input splits: the metadata describing where each chunk of input resides.

An :class:`InputSplit` does not carry data — it tells the engine how much
data there is (``get_length``) and which hosts hold it (``get_locations``),
which is what both engines use for locality-aware scheduling.  The concrete
:class:`FileSplit` is the one M3R "understands" natively for caching (paper
Section 4.2.1: given a FileSplit, M3R derives a cache name from the file
name and offset); user-defined splits opt into caching through
:class:`~repro.api.extensions.NamedSplit` / ``DelegatingSplit``.
"""

from __future__ import annotations

from typing import List, Sequence


class InputSplit:
    """One schedulable chunk of job input."""

    def get_length(self) -> int:
        """The number of bytes this split covers."""
        raise NotImplementedError

    def get_locations(self) -> List[str]:
        """Hostnames holding the data (best effort; may be empty)."""
        raise NotImplementedError


class FileSplit(InputSplit):
    """A contiguous byte range of one file, plus the hosts storing it."""

    def __init__(
        self,
        path: str,
        start: int,
        length: int,
        hosts: Sequence[str] = (),
    ):
        if start < 0 or length < 0:
            raise ValueError("split start/length must be non-negative")
        self.path = path
        self.start = start
        self.length = length
        self.hosts = list(hosts)

    def get_path(self) -> str:
        return self.path

    def get_start(self) -> int:
        return self.start

    def get_length(self) -> int:
        return self.length

    def get_locations(self) -> List[str]:
        return list(self.hosts)

    def cache_name(self) -> str:
        """The name under which M3R caches this split's key/value sequence."""
        return f"{self.path}@{self.start}+{self.length}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FileSplit)
            and other.path == self.path
            and other.start == self.start
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return hash((self.path, self.start, self.length))

    def __repr__(self) -> str:
        return f"FileSplit({self.path!r}, start={self.start}, length={self.length})"
