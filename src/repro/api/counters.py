"""Hadoop counters.

The paper lists counters among the HMR features M3R supports ("in addition
to correctly propagating user counters, M3R keeps many Hadoop system counters
properly updated").  Counters are grouped; user code addresses them either by
``(group, name)`` strings or by enum constant.  Engines keep one
:class:`Counters` per task and aggregate at job completion (M3R does the
aggregation with a team all-reduce, Hadoop with jobtracker heartbeats — the
result is the same object shape).
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from typing import Dict, Iterator, Tuple, Union


class TaskCounter(enum.Enum):
    """The standard per-task system counters (Hadoop's ``TaskCounter``)."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    REDUCE_SHUFFLE_BYTES = "REDUCE_SHUFFLE_BYTES"
    #: M3R extension: bytes handed to a co-located reducer by pointer,
    #: without crossing the wire.  Hadoop's REDUCE_SHUFFLE_BYTES counts
    #: fetched bytes; on M3R co-located partitions are never fetched, so
    #: they are counted here instead (hadoop.REDUCE_SHUFFLE_BYTES ==
    #: m3r.REDUCE_SHUFFLE_BYTES + m3r.REDUCE_LOCAL_HANDOFF_BYTES).
    REDUCE_LOCAL_HANDOFF_BYTES = "REDUCE_LOCAL_HANDOFF_BYTES"
    SPILLED_RECORDS = "SPILLED_RECORDS"


class JobCounter(enum.Enum):
    """The standard per-job system counters (Hadoop's ``JobCounter``)."""

    TOTAL_LAUNCHED_MAPS = "TOTAL_LAUNCHED_MAPS"
    TOTAL_LAUNCHED_REDUCES = "TOTAL_LAUNCHED_REDUCES"
    DATA_LOCAL_MAPS = "DATA_LOCAL_MAPS"
    RACK_LOCAL_MAPS = "RACK_LOCAL_MAPS"
    OTHER_LOCAL_MAPS = "OTHER_LOCAL_MAPS"


class FileSystemCounter(enum.Enum):
    """Bytes moved through the FileSystem layer."""

    BYTES_READ = "BYTES_READ"
    BYTES_WRITTEN = "BYTES_WRITTEN"
    READ_OPS = "READ_OPS"
    WRITE_OPS = "WRITE_OPS"


_ENUM_GROUPS = {
    TaskCounter: "org.apache.hadoop.mapreduce.TaskCounter",
    JobCounter: "org.apache.hadoop.mapreduce.JobCounter",
    FileSystemCounter: "FileSystemCounters",
}

CounterKey = Union[TaskCounter, JobCounter, FileSystemCounter]


def _resolve(key_or_group: Union[str, CounterKey], name: str = "") -> Tuple[str, str]:
    """Normalize a counter address to ``(group, name)`` strings."""
    if isinstance(key_or_group, enum.Enum):
        return _ENUM_GROUPS[type(key_or_group)], key_or_group.value
    return str(key_or_group), name


class Counter:
    """One named counter inside a group.

    Increments are atomic: with real multi-threaded task execution many
    tasks update the same counter concurrently, and a bare ``+=`` would
    lose updates between the read and the write-back.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def get_value(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Counters:
    """Grouped counters with Hadoop's addressing conventions.

    Safe for concurrent use: the group/name maps are guarded by a lock (so
    two tasks creating the same counter race to one object, not two) and the
    counters themselves take atomic increments.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, Counter]] = defaultdict(dict)
        self._lock = threading.Lock()

    def find_counter(
        self, key_or_group: Union[str, CounterKey], name: str = ""
    ) -> Counter:
        """Find (creating if needed) the addressed counter."""
        group, counter_name = _resolve(key_or_group, name)
        with self._lock:
            counters = self._groups[group]
            if counter_name not in counters:
                counters[counter_name] = Counter(counter_name)
            return counters[counter_name]

    def increment(
        self, key_or_group: Union[str, CounterKey], name_or_amount: Union[str, int] = 1,
        amount: int = 1,
    ) -> None:
        """Increment a counter addressed by enum or by (group, name)."""
        if isinstance(key_or_group, enum.Enum):
            if not isinstance(name_or_amount, int):
                raise TypeError("enum-addressed increments take an integer amount")
            self.find_counter(key_or_group).increment(name_or_amount)
        else:
            if not isinstance(name_or_amount, str):
                raise TypeError("string-group increments need a counter name")
            self.find_counter(key_or_group, name_or_amount).increment(amount)

    def value(self, key_or_group: Union[str, CounterKey], name: str = "") -> int:
        """Current value (0 when the counter was never touched)."""
        group, counter_name = _resolve(key_or_group, name)
        with self._lock:
            counter = self._groups.get(group, {}).get(counter_name)
        return 0 if counter is None else counter.value

    def groups(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._groups))

    def group(self, group: str) -> Dict[str, int]:
        """A name → value snapshot of one group."""
        with self._lock:
            counters = list(self._groups.get(group, {}).items())
        return {name: c.value for name, c in counters}

    def merge(self, other: "Counters") -> "Counters":
        """Fold another counters object into this one; returns self."""
        with other._lock:
            snapshot = [
                (group, list(counters.items()))
                for group, counters in other._groups.items()
            ]
        for group, counters in snapshot:
            for name, counter in counters:
                self.find_counter(group, name).increment(counter.value)
        return self

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """A nested plain-dict snapshot."""
        with self._lock:
            groups = list(self._groups)
        return {group: self.group(group) for group in groups}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"
