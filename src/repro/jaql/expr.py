"""Jaql expressions over JSON records.

``$`` is the current record; ``$.a.b`` navigates objects; literals,
arithmetic, comparisons and boolean connectives behave as in Jaql.  Inside
a ``group ... into`` body, ``key`` denotes the group key and the aggregate
functions ``count($)``, ``sum($.f)``, ``avg($.f)``, ``min($.f)``,
``max($.f)`` fold over the group's records.

Grammar::

    expr    := or
    or      := and ('or' and)*
    and     := not ('and' not)*
    not     := 'not' not | cmp
    cmp     := add (('=='|'!='|'<='|'>='|'<'|'>') add)?
    add     := mul (('+'|'-') mul)*
    mul     := unary (('*'|'/'|'%') unary)*
    unary   := '-' unary | atom
    atom    := NUMBER | STRING | 'true' | 'false' | 'null' | 'key'
             | PATH | AGG '(' (PATH|'$') ')' | '(' expr ')'
             | '{' (NAME ':' expr (',' NAME ':' expr)*)? '}'
    PATH    := '$' ('.' NAME)*
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence, Tuple

AGG_FUNCS = ("count", "sum", "avg", "min", "max")


class JaqlExprError(ValueError):
    """Raised for malformed expressions or evaluation errors."""


_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?)
      | '(?P<sq>[^']*)'
      | "(?P<dq>[^"]*)"
      | (?P<path>\$(?:\.[A-Za-z_][A-Za-z_0-9]*)*)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op>==|!=|<=|>=|<|>|\+|-|\*|/|%|\(|\)|\{|\}|:|,)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "null", "key"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise JaqlExprError(f"cannot tokenize at: {rest!r}")
        if match.group("number") is not None:
            tokens.append(("NUMBER", match.group("number")))
        elif match.group("sq") is not None:
            tokens.append(("STRING", match.group("sq")))
        elif match.group("dq") is not None:
            tokens.append(("STRING", match.group("dq")))
        elif match.group("path") is not None:
            tokens.append(("PATH", match.group("path")))
        elif match.group("word") is not None:
            word = match.group("word")
            kind = "KW" if word in _KEYWORDS else "NAME"
            tokens.append((kind, word))
        else:
            tokens.append(("OP", match.group("op")))
        pos = match.end()
    tokens.append(("EOF", ""))
    return tokens


# AST nodes are tuples:
#   ("num", v) ("str", v) ("bool", v) ("null",) ("key",)
#   ("path", ["a","b"]) ("agg", fn, ["a"]) ("obj", [(name, ast), ...])
#   ("un", op, a) ("bin", op, a, b)


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def _take(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        if token[0] != "EOF":
            self._pos += 1
        return token

    def _expect_op(self, text: str) -> None:
        kind, value = self._take()
        if kind != "OP" or value != text:
            raise JaqlExprError(f"expected {text!r}, found {value!r}")

    def parse(self) -> tuple:
        ast = self._or()
        if self._peek()[0] != "EOF":
            raise JaqlExprError(f"trailing tokens from {self._peek()[1]!r}")
        return ast

    def _or(self) -> tuple:
        left = self._and()
        while self._peek() == ("KW", "or"):
            self._take()
            left = ("bin", "or", left, self._and())
        return left

    def _and(self) -> tuple:
        left = self._not()
        while self._peek() == ("KW", "and"):
            self._take()
            left = ("bin", "and", left, self._not())
        return left

    def _not(self) -> tuple:
        if self._peek() == ("KW", "not"):
            self._take()
            return ("un", "not", self._not())
        return self._cmp()

    def _cmp(self) -> tuple:
        left = self._add()
        kind, value = self._peek()
        if kind == "OP" and value in ("==", "!=", "<=", ">=", "<", ">"):
            self._take()
            return ("bin", value, left, self._add())
        return left

    def _add(self) -> tuple:
        left = self._mul()
        while self._peek()[0] == "OP" and self._peek()[1] in ("+", "-"):
            op = self._take()[1]
            left = ("bin", op, left, self._mul())
        return left

    def _mul(self) -> tuple:
        left = self._unary()
        while self._peek()[0] == "OP" and self._peek()[1] in ("*", "/", "%"):
            op = self._take()[1]
            left = ("bin", op, left, self._unary())
        return left

    def _unary(self) -> tuple:
        if self._peek() == ("OP", "-"):
            self._take()
            return ("un", "-", self._unary())
        return self._atom()

    def _atom(self) -> tuple:
        kind, value = self._take()
        if kind == "NUMBER":
            return ("num", float(value))
        if kind == "STRING":
            return ("str", value)
        if kind == "PATH":
            parts = value.split(".")[1:]
            return ("path", parts)
        if kind == "KW":
            if value == "true":
                return ("bool", True)
            if value == "false":
                return ("bool", False)
            if value == "null":
                return ("null",)
            if value == "key":
                return ("key",)
            raise JaqlExprError(f"unexpected keyword {value!r}")
        if kind == "NAME":
            if value in AGG_FUNCS:
                self._expect_op("(")
                arg_kind, arg_value = self._take()
                if arg_kind != "PATH":
                    raise JaqlExprError(
                        f"{value}() takes $ or a $.field path, got {arg_value!r}"
                    )
                self._expect_op(")")
                return ("agg", value, arg_value.split(".")[1:])
            raise JaqlExprError(f"unknown identifier {value!r}")
        if kind == "OP" and value == "(":
            inner = self._or()
            self._expect_op(")")
            return inner
        if kind == "OP" and value == "{":
            fields: List[Tuple[str, tuple]] = []
            if self._peek() != ("OP", "}"):
                while True:
                    name_kind, name = self._take()
                    if name_kind not in ("NAME", "KW"):
                        raise JaqlExprError(f"bad field name {name!r}")
                    self._expect_op(":")
                    fields.append((name, self._or()))
                    if self._peek() == ("OP", ","):
                        self._take()
                        continue
                    break
            self._expect_op("}")
            return ("obj", fields)
        raise JaqlExprError(f"unexpected token {value!r}")


def parse_expr(text: str) -> tuple:
    """Parse one Jaql expression to its AST."""
    return _Parser(_tokenize(text)).parse()


def _navigate(record: Any, parts: Sequence[str]) -> Any:
    current = record
    for part in parts:
        if isinstance(current, dict):
            current = current.get(part)
        else:
            return None
    return current


def evaluate_expr(
    ast: tuple,
    record: Any,
    group_key: Any = None,
    group_records: Optional[List[Any]] = None,
) -> Any:
    """Evaluate an AST against one record (or, for aggregates, a group)."""
    kind = ast[0]
    if kind in ("num", "str", "bool"):
        return ast[1]
    if kind == "null":
        return None
    if kind == "key":
        return group_key
    if kind == "path":
        return _navigate(record, ast[1])
    if kind == "obj":
        return {
            name: evaluate_expr(sub, record, group_key, group_records)
            for name, sub in ast[1]
        }
    if kind == "agg":
        if group_records is None:
            raise JaqlExprError(f"{ast[1]}() is only valid inside group ... into")
        values = [
            _navigate(member, ast[2]) for member in group_records
        ]
        if ast[1] == "count":
            return float(len(group_records))
        numbers = [float(v) for v in values if v is not None]
        if not numbers:
            return None
        if ast[1] == "sum":
            return float(sum(numbers))
        if ast[1] == "avg":
            return float(sum(numbers) / len(numbers))
        if ast[1] == "min":
            return float(min(numbers))
        if ast[1] == "max":
            return float(max(numbers))
        raise JaqlExprError(f"unknown aggregate {ast[1]!r}")
    if kind == "un":
        operand = evaluate_expr(ast[2], record, group_key, group_records)
        if ast[1] == "-":
            return -_number(operand)
        if ast[1] == "not":
            return not bool(operand)
        raise JaqlExprError(f"unknown unary {ast[1]!r}")
    if kind == "bin":
        op = ast[1]
        if op == "and":
            return bool(
                evaluate_expr(ast[2], record, group_key, group_records)
            ) and bool(evaluate_expr(ast[3], record, group_key, group_records))
        if op == "or":
            return bool(
                evaluate_expr(ast[2], record, group_key, group_records)
            ) or bool(evaluate_expr(ast[3], record, group_key, group_records))
        left = evaluate_expr(ast[2], record, group_key, group_records)
        right = evaluate_expr(ast[3], record, group_key, group_records)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", ">", "<=", ">="):
            try:
                return {"<": left < right, ">": left > right,
                        "<=": left <= right, ">=": left >= right}[op]
            except TypeError as exc:
                raise JaqlExprError(
                    f"cannot compare {left!r} {op} {right!r}"
                ) from exc
        a, b = _number(left), _number(right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b
        if op == "%":
            return a % b
        raise JaqlExprError(f"unknown operator {op!r}")
    raise JaqlExprError(f"bad AST node {ast!r}")


def _number(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    raise JaqlExprError(f"expected a number, got {value!r}")
