"""The Jaql pipeline parser: arrow-chained operators."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.jaql.expr import JaqlExprError, parse_expr


class JaqlParseError(SyntaxError):
    """Raised on malformed pipelines."""


@dataclass
class ReadOp:
    path: str


@dataclass
class FilterOp:
    predicate: tuple


@dataclass
class TransformOp:
    projection: tuple  # an ("obj", ...) or any expression AST


@dataclass
class GroupOp:
    key_expr: tuple
    into_expr: tuple  # evaluated with key/group context


@dataclass
class SortOp:
    key_expr: tuple
    descending: bool


@dataclass
class TopOp:
    count: int


@dataclass
class WriteOp:
    path: str


@dataclass
class Pipeline:
    source: ReadOp
    ops: List[object] = field(default_factory=list)
    sink: Optional[WriteOp] = None


def _strip_comments(source: str) -> str:
    lines = []
    for line in source.splitlines():
        cut = line.find("//")
        lines.append(line if cut < 0 else line[:cut])
    return "\n".join(lines)


def _split_stages(source: str) -> List[str]:
    """Split on ``->`` at top level (quotes and braces respected)."""
    stages: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    i = 0
    while i < len(source):
        ch = source[i]
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "({[":
            depth += 1
            current.append(ch)
        elif ch in ")}]":
            depth -= 1
            current.append(ch)
        elif ch == "-" and depth == 0 and source.startswith("->", i):
            stages.append("".join(current).strip())
            current = []
            i += 2
            continue
        else:
            current.append(ch)
        i += 1
    stages.append("".join(current).strip())
    return [" ".join(stage.split()) for stage in stages if stage.strip()]


def _unquote(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    raise JaqlParseError(f"expected a quoted path, got {text!r}")


def _expr(text: str) -> tuple:
    try:
        return parse_expr(text)
    except JaqlExprError as exc:
        raise JaqlParseError(f"bad expression {text!r}: {exc}") from exc


def parse_pipeline(source: str) -> Pipeline:
    """Parse one arrow pipeline."""
    stages = _split_stages(_strip_comments(source))
    if not stages:
        raise JaqlParseError("empty pipeline")

    read = re.match(r"(?i)^read\s*\((.+)\)$", stages[0])
    if not read:
        raise JaqlParseError(f"pipelines start with read(...), got {stages[0]!r}")
    pipeline = Pipeline(source=ReadOp(_unquote(read.group(1))))

    for stage in stages[1:]:
        if pipeline.sink is not None:
            raise JaqlParseError("write(...) must be the final stage")
        write = re.match(r"(?i)^write\s*\((.+)\)$", stage)
        if write:
            pipeline.sink = WriteOp(_unquote(write.group(1)))
            continue
        filt = re.match(r"(?i)^filter\s+(.+)$", stage)
        if filt:
            pipeline.ops.append(FilterOp(_expr(filt.group(1))))
            continue
        transform = re.match(r"(?i)^transform\s+(.+)$", stage)
        if transform:
            pipeline.ops.append(TransformOp(_expr(transform.group(1))))
            continue
        group = re.match(r"(?i)^group\s+by\s+(.+?)\s+into\s+(.+)$", stage)
        if group:
            pipeline.ops.append(
                GroupOp(_expr(group.group(1)), _expr(group.group(2)))
            )
            continue
        sort = re.match(r"(?i)^sort\s+by\s+(.+?)(\s+desc|\s+asc)?$", stage)
        if sort:
            descending = bool(sort.group(2)) and sort.group(2).strip().lower() == "desc"
            pipeline.ops.append(SortOp(_expr(sort.group(1)), descending))
            continue
        top = re.match(r"(?i)^top\s+(\d+)$", stage)
        if top:
            pipeline.ops.append(TopOp(int(top.group(1))))
            continue
        raise JaqlParseError(f"cannot parse stage: {stage!r}")

    if pipeline.sink is None:
        raise JaqlParseError("pipeline has no write(...) sink")
    return pipeline
