"""The Jaql runner: pipeline operators → HMR jobs.

Consecutive map-side operators (``filter``/``transform``) are fused into a
single map-only job, as Jaql's rewriter does; ``group`` becomes a full
map/shuffle/reduce job; ``sort`` is a total-order sort with driver-side key
sampling; ``top`` is a single-reducer truncation of sorted input.  Records
travel as JSON text lines, and intermediates follow the temporary-output
convention (in-memory on M3R).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from repro.api.conf import JobConf
from repro.api.extensions import ImmutableOutput
from repro.api.formats import (
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
    TextInputFormat,
    TextOutputFormat,
)
from repro.api.mapred import Mapper, OutputCollector, Reducer, Reporter
from repro.api.partitioner import TotalOrderPartitioner
from repro.api.writables import DoubleWritable, IntWritable, NullWritable, Text
from repro.engine_common import EngineResult
from repro.jaql.expr import evaluate_expr
from repro.jaql.parser import (
    FilterOp,
    GroupOp,
    Pipeline,
    SortOp,
    TopOp,
    TransformOp,
    parse_pipeline,
)

JAQL_OPS_KEY = "jaql.fused.ops"
JAQL_GROUP_KEY = "jaql.group.op"
JAQL_SORT_KEY = "jaql.sort.op"
JAQL_TOP_KEY = "jaql.top.count"


def dumps(record: Any) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def loads(line: str) -> Any:
    return json.loads(line)


class FusedMapMapper(Mapper, ImmutableOutput):
    """Applies a fused chain of filter/transform ops to each record."""

    def __init__(self) -> None:
        self._ops: List[object] = []

    def configure(self, conf: JobConf) -> None:
        self._ops = conf.get(JAQL_OPS_KEY) or []

    def map(self, key, value: Text, output: OutputCollector,
            reporter: Reporter) -> None:
        line = value.to_string()
        if not line.strip():
            return
        record = loads(line)
        for op in self._ops:
            if isinstance(op, FilterOp):
                if not evaluate_expr(op.predicate, record):
                    return
            elif isinstance(op, TransformOp):
                record = evaluate_expr(op.projection, record)
            else:  # pragma: no cover - parser only emits the two kinds
                raise TypeError(f"unfusable op {type(op).__name__}")
        output.collect(NullWritable.get(), Text(dumps(record)))


class GroupKeyMapper(Mapper, ImmutableOutput):
    def __init__(self) -> None:
        self._group: Optional[GroupOp] = None

    def configure(self, conf: JobConf) -> None:
        self._group = conf.get(JAQL_GROUP_KEY)

    def map(self, key, value: Text, output: OutputCollector,
            reporter: Reporter) -> None:
        record = loads(value.to_string())
        group_key = evaluate_expr(self._group.key_expr, record)
        output.collect(Text(dumps(group_key)), Text(value.to_string()))


class GroupIntoReducer(Reducer, ImmutableOutput):
    def __init__(self) -> None:
        self._group: Optional[GroupOp] = None

    def configure(self, conf: JobConf) -> None:
        self._group = conf.get(JAQL_GROUP_KEY)

    def reduce(self, key: Text, values: Iterator[Text],
               output: OutputCollector, reporter: Reporter) -> None:
        group_key = loads(key.to_string())
        members = [loads(v.to_string()) for v in values]
        result = evaluate_expr(
            self._group.into_expr, record=None, group_key=group_key,
            group_records=members,
        )
        output.collect(NullWritable.get(), Text(dumps(result)))


class SortKeyMapper(Mapper, ImmutableOutput):
    def __init__(self) -> None:
        self._sort: Optional[SortOp] = None

    def configure(self, conf: JobConf) -> None:
        self._sort = conf.get(JAQL_SORT_KEY)

    def map(self, key, value: Text, output: OutputCollector,
            reporter: Reporter) -> None:
        record = loads(value.to_string())
        sort_value = evaluate_expr(self._sort.key_expr, record)
        if isinstance(sort_value, bool) or not isinstance(sort_value, (int, float)):
            raise ValueError(f"sort by needs a numeric key, got {sort_value!r}")
        numeric = -float(sort_value) if self._sort.descending else float(sort_value)
        output.collect(DoubleWritable(numeric), Text(value.to_string()))


class EmitSortedReducer(Reducer, ImmutableOutput):
    def reduce(self, key, values: Iterator[Text], output: OutputCollector,
               reporter: Reporter) -> None:
        for value in values:
            output.collect(NullWritable.get(), Text(value.to_string()))


class TopMapper(Mapper, ImmutableOutput):
    """Keys every record 0 so one reducer sees the whole (ordered) stream."""

    def map(self, key, value: Text, output: OutputCollector,
            reporter: Reporter) -> None:
        output.collect(IntWritable(0), Text(value.to_string()))


class TopReducer(Reducer, ImmutableOutput):
    def __init__(self) -> None:
        self._limit = 0

    def configure(self, conf: JobConf) -> None:
        self._limit = conf.get_int(JAQL_TOP_KEY, 0)

    def reduce(self, key, values: Iterator[Text], output: OutputCollector,
               reporter: Reporter) -> None:
        emitted = 0
        for value in values:
            if emitted >= self._limit:
                break
            output.collect(NullWritable.get(), Text(value.to_string()))
            emitted += 1


class PassThroughMapper(Mapper, ImmutableOutput):
    def map(self, key, value: Text, output: OutputCollector,
            reporter: Reporter) -> None:
        output.collect(NullWritable.get(), Text(value.to_string()))


class JaqlRunner:
    """Compiles and runs Jaql pipelines against one engine."""

    def __init__(self, engine, workdir: str = "/jaql",
                 num_reducers: Optional[int] = None):
        self.engine = engine
        self.workdir = workdir.rstrip("/")
        self.num_reducers = (
            num_reducers if num_reducers is not None else engine.cluster.num_nodes
        )
        self.results: List[EngineResult] = []
        self._counter = 0

    @property
    def total_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.results)

    @property
    def jobs_run(self) -> int:
        return len(self.results)

    # -- public API ------------------------------------------------------- #

    def run(self, source: str) -> str:
        """Run a pipeline; returns the sink path."""
        pipeline = parse_pipeline(source)
        current_path = pipeline.source.path
        current_format = TextInputFormat

        stages = self._fuse(pipeline)
        for index, stage in enumerate(stages):
            last = index == len(stages) - 1
            out = pipeline.sink.path if last else self._temp_path(stage["name"])
            self._run_stage(stage, current_path, current_format, out, last)
            current_path = out
            current_format = SequenceFileInputFormat if not last else None
        return pipeline.sink.path

    def read_output(self, path: str) -> List[Any]:
        """Read a written pipeline output back as JSON records."""
        fs = self.engine.filesystem
        records: List[Any] = []
        for status in sorted(fs.list_files_recursive(path), key=lambda s: s.path):
            basename = status.path.rsplit("/", 1)[-1]
            if basename.startswith((".", "_")):
                continue
            for line in fs.read_text(status.path).splitlines():
                if line.strip():
                    records.append(loads(line))
        return records

    # -- compilation ------------------------------------------------------- #

    def _fuse(self, pipeline: Pipeline) -> List[Dict[str, Any]]:
        """Group pipeline ops into MR stages (consecutive map ops fused)."""
        stages: List[Dict[str, Any]] = []
        pending_maps: List[object] = []

        def flush_maps() -> None:
            if pending_maps:
                stages.append({"name": "map", "kind": "map", "ops": list(pending_maps)})
                pending_maps.clear()

        for op in pipeline.ops:
            if isinstance(op, (FilterOp, TransformOp)):
                pending_maps.append(op)
            elif isinstance(op, GroupOp):
                flush_maps()
                stages.append({"name": "group", "kind": "group", "op": op})
            elif isinstance(op, SortOp):
                flush_maps()
                stages.append({"name": "sort", "kind": "sort", "op": op})
            elif isinstance(op, TopOp):
                flush_maps()
                stages.append({"name": "top", "kind": "top", "op": op})
            else:  # pragma: no cover
                raise TypeError(f"unknown op {type(op).__name__}")
        flush_maps()
        if not stages:
            stages.append({"name": "copy", "kind": "map", "ops": []})
        return stages

    def _temp_path(self, name: str) -> str:
        self._counter += 1
        return f"{self.workdir}/temp-{name}-{self._counter}"

    def _submit(self, conf: JobConf) -> EngineResult:
        result = self.engine.run_job(conf)
        self.results.append(result)
        if not result.succeeded:
            raise RuntimeError(
                f"jaql job {conf.get_job_name()!r} failed: {result.error}"
            )
        return result

    def _base_conf(self, name: str, src: str, src_format, out: str,
                   final: bool, reducers: Optional[int] = None) -> JobConf:
        conf = JobConf()
        conf.set_job_name(f"jaql.{name}")
        conf.set_input_paths(src)
        conf.set_input_format(src_format)
        conf.set_output_path(out)
        conf.set_output_format(TextOutputFormat if final else SequenceFileOutputFormat)
        conf.set_num_reduce_tasks(
            self.num_reducers if reducers is None else reducers
        )
        return conf

    def _run_stage(self, stage: Dict[str, Any], src: str, src_format,
                   out: str, final: bool) -> None:
        kind = stage["kind"]
        if kind == "map":
            conf = self._base_conf("map", src, src_format, out, final, reducers=0)
            if stage["ops"]:
                conf.set_mapper_class(FusedMapMapper)
                conf.set(JAQL_OPS_KEY, stage["ops"])
            else:
                conf.set_mapper_class(PassThroughMapper)
            self._submit(conf)
        elif kind == "group":
            conf = self._base_conf("group", src, src_format, out, final)
            conf.set_mapper_class(GroupKeyMapper)
            conf.set_reducer_class(GroupIntoReducer)
            conf.set(JAQL_GROUP_KEY, stage["op"])
            self._submit(conf)
        elif kind == "sort":
            self._run_sort(stage["op"], src, src_format, out, final)
        elif kind == "top":
            conf = self._base_conf("top", src, src_format, out, final, reducers=1)
            conf.set_mapper_class(TopMapper)
            conf.set_reducer_class(TopReducer)
            conf.set_int(JAQL_TOP_KEY, stage["op"].count)
            self._submit(conf)
        else:  # pragma: no cover
            raise TypeError(kind)

    def _read_records(self, path: str, src_format) -> List[Any]:
        fs = self.engine.filesystem
        records: List[Any] = []
        if src_format is TextInputFormat:
            for status in fs.list_files_recursive(path):
                for line in fs.read_text(status.path).splitlines():
                    if line.strip():
                        records.append(loads(line))
        else:
            for _, value in fs.read_kv_pairs(path):
                records.append(loads(value.to_string()))
        return records

    def _run_sort(self, op: SortOp, src: str, src_format, out: str,
                  final: bool) -> None:
        # Driver-side sampling, like Jaql's (and Pig's) sampling pass.
        sample = []
        for record in self._read_records(src, src_format):
            value = evaluate_expr(op.key_expr, record)
            numeric = -float(value) if op.descending else float(value)
            sample.append(DoubleWritable(numeric))
        reducers = min(self.num_reducers, max(1, len(sample)))
        cuts = TotalOrderPartitioner.sample_cut_points(sample, reducers)
        conf = self._base_conf("sort", src, src_format, out, final,
                               reducers=len(cuts) + 1)
        conf.set_mapper_class(SortKeyMapper)
        conf.set_reducer_class(EmitSortedReducer)
        conf.set_partitioner_class(TotalOrderPartitioner)
        conf.set("total.order.partitioner.cuts", cuts)
        conf.set(JAQL_SORT_KEY, op)
        self._submit(conf)
