"""A mini Jaql: JSON query pipelines compiled to HMR jobs.

Jaql is the third compiler tool-chain the paper names ("jobs produced by
compilers for higher-level languages such as Pig, Jaql, and SystemML ...
run unchanged" on M3R; X10 team members "are responsible for getting Jaql
to run on M3R").  This package reproduces its observable essentials: a
pipeline language over JSON records, compiled operator by operator to
ordinary HMR jobs that run on either engine.

Syntax (a faithful miniature of Jaql's arrow pipelines)::

    read("/logs/events.json")
      -> filter $.status == 200 and $.ms < 5000
      -> transform { user: $.user, sec: $.ms / 1000 }
      -> group by $.user into { user: key, hits: count($), total: sum($.sec) }
      -> sort by $.hits desc
      -> top 3
      -> write("/out/top_users")

Records are JSON objects, one per line (the jsonl convention Jaql's
``lines()`` I/O adapter used); ``$`` denotes the current record.
"""

from repro.jaql.expr import JaqlExprError, evaluate_expr, parse_expr
from repro.jaql.parser import JaqlParseError, parse_pipeline
from repro.jaql.compiler import JaqlRunner

__all__ = [
    "JaqlExprError",
    "evaluate_expr",
    "parse_expr",
    "JaqlParseError",
    "parse_pipeline",
    "JaqlRunner",
]
