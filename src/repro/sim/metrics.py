"""Metrics: what an engine did, and where simulated time went.

Every engine run produces a :class:`Metrics` object with two views:

* **event counters** — bytes read from disk, records shuffled remotely,
  objects cloned, JVMs started, ... (raw counts, cost-model independent);
* **time breakdown** — simulated seconds attributed to named categories
  (``disk_read``, ``network``, ``serialize``, ``jvm_startup``, ...).

Benchmarks and the ablation studies read these to attribute speedups to
specific mechanisms, which is how we reproduce the paper's Section 6
analysis ("we assume this is due to overheads inherent in Hadoop's task
polling model, disk-based out-of-core shuffling, and JVM startup costs").
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from typing import Dict, List, Tuple


#: The canonical time categories engines charge against.
TIME_CATEGORIES: Tuple[str, ...] = (
    "jvm_startup",
    "scheduling",
    "job_submit",
    "disk_read",
    "disk_write",
    "network",
    "serialize",
    "deserialize",
    "clone",
    "alloc",
    "sort",
    "merge",
    "map_compute",
    "reduce_compute",
    "framework",
    "barrier",
    "namenode",
    "spill_write",
    "spill_read",
)


#: Prefix of the per-place shuffle-skew counters (see
#: :func:`shuffle_place_key`): ``shuffle_place_bytes[p]`` counts the bytes
#: that arrived at place ``p``'s reducers during shuffles (wire bytes for
#: cross-place messages, buffer bytes for co-located hand-offs).
SHUFFLE_PLACE_PREFIX = "shuffle_place_bytes["


def shuffle_place_key(place: int) -> str:
    """The metrics counter name for shuffle bytes arriving at ``place``."""
    return f"{SHUFFLE_PLACE_PREFIX}{place}]"


#: Prefix of the per-stage time categories the lifecycle metrics bridge
#: charges (see :class:`repro.lifecycle.sinks.MetricsBridgeSink`):
#: ``stage[map]`` holds the simulated seconds the ``map`` stage added to
#: the job clock.
STAGE_TIME_PREFIX = "stage["


def stage_time_key(stage: str) -> str:
    """The time-breakdown category for one lifecycle stage's duration."""
    return f"{STAGE_TIME_PREFIX}{stage}]"


def stage_time_breakdown(metrics: "Metrics") -> Dict[str, float]:
    """Extract the per-stage seconds recorded by the metrics bridge as
    ``{stage: seconds}`` (empty when no bridge was attached)."""
    result: Dict[str, float] = {}
    for name, value in metrics.as_dict()["time"].items():
        if name.startswith(STAGE_TIME_PREFIX) and name.endswith("]"):
            result[name[len(STAGE_TIME_PREFIX):-1]] = value
    return result


def shuffle_place_bytes(metrics: "Metrics") -> Dict[int, int]:
    """Extract the per-place shuffle byte counters as ``{place: bytes}``."""
    result: Dict[int, int] = {}
    for name, value in metrics.as_dict()["counters"].items():
        if name.startswith(SHUFFLE_PLACE_PREFIX) and name.endswith("]"):
            place = name[len(SHUFFLE_PLACE_PREFIX):-1]
            if place.isdigit():
                result[int(place)] = value
    return result


def shuffle_skew(metrics: "Metrics") -> Dict[str, float]:
    """Shuffle skew summary: how unevenly shuffle bytes landed on places.

    Returns ``max_bytes``, ``mean_bytes`` and ``skew_ratio`` (max/mean; 1.0
    is perfectly balanced, and also the value reported when nothing was
    shuffled so callers need no special-casing).
    """
    per_place = shuffle_place_bytes(metrics)
    if not per_place:
        return {"max_bytes": 0.0, "mean_bytes": 0.0, "skew_ratio": 1.0}
    values = list(per_place.values())
    mean = sum(values) / len(values)
    peak = float(max(values))
    ratio = peak / mean if mean > 0 else 1.0
    return {"max_bytes": peak, "mean_bytes": mean, "skew_ratio": ratio}


class TimeBreakdown:
    """Simulated seconds attributed to named categories.

    Charges are atomic: concurrent tasks all charge the same breakdown, and
    a float ``+=`` is a read-modify-write that would otherwise lose time.

    Charges are also *order-independent*: tasks running on real threads
    charge in whatever order the OS schedules them, and a running float
    sum would round differently per interleaving (last-ulp drift that
    breaks byte-identity checks on the metrics snapshot).  Each category
    therefore keeps its addends and reduces with :func:`math.fsum`, whose
    result is the correctly-rounded exact sum — the same float for every
    arrival order.
    """

    def __init__(self) -> None:
        self._parts: Dict[str, List[float]] = defaultdict(list)
        self._lock = threading.Lock()

    def charge(self, category: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        with self._lock:
            self._parts[category].append(seconds)

    def get(self, category: str) -> float:
        """Seconds attributed so far to ``category`` (0.0 when never charged)."""
        with self._lock:
            parts = self._parts.get(category)
            return math.fsum(parts) if parts else 0.0

    def total(self) -> float:
        """Sum over all categories.

        Note this is *work* time, not wall-clock: parallel lanes overlap, so
        engines report wall-clock separately and this total can exceed it.
        """
        with self._lock:
            return math.fsum(
                seconds
                for parts in self._parts.values()
                for seconds in parts
            )

    def merge(self, other: "TimeBreakdown") -> None:
        """Fold another breakdown into this one."""
        with other._lock:
            snapshot = [(k, list(v)) for k, v in other._parts.items()]
        with self._lock:
            for category, parts in snapshot:
                self._parts[category].extend(parts)

    def as_dict(self) -> Dict[str, float]:
        """A plain dict snapshot (categories with zero time omitted)."""
        with self._lock:
            return {k: math.fsum(v) for k, v in self._parts.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={math.fsum(v):.3f}" for k, v in sorted(self._parts.items())
        )
        return f"TimeBreakdown({parts})"


class Metrics:
    """Event counters plus a :class:`TimeBreakdown`."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.time = TimeBreakdown()
        self._lock = threading.Lock()

    # -- counters --------------------------------------------------------- #

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount`` (atomic)."""
        with self._lock:
            self.counters[name] += amount

    def get(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    def merge(self, other: "Metrics") -> None:
        """Fold another metrics object into this one."""
        with other._lock:
            snapshot = list(other.counters.items())
        with self._lock:
            for name, value in snapshot:
                self.counters[name] += value
        self.time.merge(other.time)

    def as_dict(self) -> Dict[str, object]:
        """A plain snapshot suitable for printing or JSON."""
        with self._lock:
            counters = dict(self.counters)
        return {"counters": counters, "time": self.time.as_dict()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Metrics(counters={dict(self.counters)!r}, time={self.time!r})"
