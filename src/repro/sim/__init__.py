"""Cluster simulation substrate.

The paper evaluated M3R on a 20-node IBM LS-22 blade cluster.  We do not have
that hardware (or any cluster), so this package provides a deterministic
*cost model* substitute: engines execute user map/reduce code for real — so
outputs are exact — and charge simulated seconds against a
:class:`~repro.sim.cost_model.CostModel` for every disk read/write, network
transfer, (de)serialization event, defensive clone, JVM start-up and
scheduler round-trip.

The key property is that the paper's performance claims are structural (where
time goes: disk vs memory, start-up vs work, remote vs local shuffle), so a
cost model that reproduces the *terms* reproduces the *shapes* of the paper's
figures without the authors' testbed.
"""

from repro.sim.clock import SimClock, PhaseTimer
from repro.sim.cost_model import CostModel, paper_cluster_cost_model
from repro.sim.cluster import Node, Cluster
from repro.sim.metrics import Metrics, TimeBreakdown

__all__ = [
    "SimClock",
    "PhaseTimer",
    "CostModel",
    "paper_cluster_cost_model",
    "Node",
    "Cluster",
    "Metrics",
    "TimeBreakdown",
]
