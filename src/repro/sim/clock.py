"""Simulated clocks.

Map/reduce phases are barrier-synchronized: no reducer runs before every
mapper has finished shuffling (the paper enforces this with an X10 team
barrier).  That structure lets us model time without a discrete-event queue:

* within a phase, each node (place) accumulates its own elapsed seconds on a
  private :class:`SimClock`;
* at a barrier, the phase costs ``max`` over the participating clocks —
  everyone waits for the slowest node;
* a job is a sequence of phases, so job time is the sum of phase maxima plus
  any serial overheads (job submission, JVM start-up rounds, ...).

:class:`PhaseTimer` packages that max-at-barrier bookkeeping.
"""

from __future__ import annotations

import threading


class SimClock:
    """An accumulator of simulated seconds.

    The clock never reads wall time; engines advance it explicitly with
    :meth:`advance`.  Negative advances are rejected so a cost-model bug
    cannot silently run time backwards.  Advances are atomic, so activities
    running on real worker threads can share one clock.
    """

    __slots__ = ("_now", "_lock")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        with self._lock:
            self._now += seconds  # noqa: M3R008 - advances replay in deterministic plan order
            return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (no-op if already past)."""
        with self._lock:
            if t > self._now:
                self._now = t
            return self._now

    def reset(self) -> None:
        """Reset the clock to zero."""
        with self._lock:
            self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class PhaseTimer:
    """Tracks per-participant elapsed time within one barrier-delimited phase.

    Typical engine use::

        timer = PhaseTimer(num_places)
        for place in range(num_places):
            timer.charge(place, cost_of_work_at(place))
        job_clock.advance(timer.barrier())   # everyone waits for the slowest
    """

    __slots__ = ("_elapsed", "_lock")

    def __init__(self, participants: int) -> None:
        if participants <= 0:
            raise ValueError("a phase needs at least one participant")
        self._elapsed = [0.0] * participants
        self._lock = threading.Lock()

    @property
    def participants(self) -> int:
        return len(self._elapsed)

    def charge(self, participant: int, seconds: float) -> None:
        """Add ``seconds`` of work to one participant's lane (atomic, so
        concurrent activities at different places can share one timer)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        with self._lock:
            self._elapsed[participant] += seconds  # noqa: M3R008 - per-lane accumulator; one participant's charges are serial

    def elapsed(self, participant: int) -> float:
        """Seconds charged so far to ``participant``."""
        return self._elapsed[participant]

    def barrier(self) -> float:
        """Return the phase duration: the maximum lane, i.e. the straggler."""
        return max(self._elapsed)

    def total_work(self) -> float:
        """Sum of all lanes — useful for utilization metrics."""
        return sum(self._elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseTimer(lanes={self._elapsed!r})"
