"""The cluster cost model.

All simulated time in the reproduction comes from this module.  Engines
count *what happened* (bytes moved, records sorted, objects cloned, JVMs
started) and ask the :class:`CostModel` *how long it took*.

The default parameters are calibrated to the paper's testbed — a 20-node
cluster of IBM LS-22 blades (2 × quad-core 2.3 GHz Opteron, 16 GB RAM,
Gigabit Ethernet, circa-2012 SATA disks, IBM J9 JVM).  The absolute values
are engineering estimates; what matters for reproducing the paper's figures
is the *structure*: disk is ~10× slower than memory, network is the same
order as disk, JVM start-up and heartbeat scheduling cost whole seconds, and
(de)serialization costs real CPU per byte and per record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Translates counted events into simulated seconds.

    Bandwidth fields are bytes/second; latency and per-event fields are
    seconds.  Instances are frozen so a cost model can be shared between
    engines without risk of drift; use :meth:`evolve` to derive variants
    (benchmarks use this for ablations).
    """

    # --- disks (per-node local disk; HDFS datanodes share the same disk) ---
    disk_read_bw: float = 85e6
    disk_write_bw: float = 70e6
    disk_seek: float = 0.008

    # --- network (Gigabit Ethernet) ---
    net_bw: float = 110e6
    net_latency: float = 0.0002

    # --- (de)serialization of key/value records ---
    serialize_bw: float = 250e6
    deserialize_bw: float = 180e6
    ser_per_record: float = 2.0e-7
    deser_per_record: float = 2.5e-7

    # --- in-memory costs ---
    mem_bw: float = 4e9
    clone_bw: float = 800e6
    clone_per_record: float = 1.5e-7
    handoff_per_record: float = 4.0e-8  # pointer pass mapper -> reducer queue
    alloc_per_object: float = 6.0e-8    # young-gen allocation + GC share
    #: Allocation-heavy tasks (at least gc_churn_threshold fresh objects,
    #: the ImmutableOutput style) additionally pay a constant GC-churn cost:
    #: extra young-gen collections and promotion pressure.  This is the
    #: mechanism behind Figure 8's "new Text slower at small sizes, gap
    #: closes as input grows" observation.
    gc_churn_overhead: float = 0.12
    gc_churn_threshold: int = 1000

    # --- sorting ---
    sort_per_compare: float = 1.1e-7    # per record per log2(n) level
    merge_fan_in: int = 10              # external merge fan-in (io.sort.factor)

    # --- JVM / scheduling overheads ---
    jvm_startup: float = 1.2            # fork + JVM boot + task localization
    task_scheduling: float = 1.5        # expected heartbeat wait per wave
    hadoop_job_submit: float = 6.0      # staging, split calc, jobtracker RPCs
    hadoop_job_cleanup: float = 2.0     # commit, output promotion, teardown
    m3r_job_submit: float = 0.05        # in-process hand-off to the engine
    m3r_barrier: float = 0.002          # X10 team barrier across places

    # --- HDFS ---
    namenode_op: float = 0.002          # one metadata RPC
    hdfs_replication: int = 3

    # --- user compute ---
    flops_per_sec: float = 1.1e9        # one core, dense double math
    map_cpu_per_record: float = 6.0e-7  # framework + user overhead per record
    reduce_cpu_per_record: float = 6.0e-7

    # ------------------------------------------------------------------ #
    # derived helpers
    # ------------------------------------------------------------------ #

    def evolve(self, **changes: float) -> "CostModel":
        """Return a copy with ``changes`` applied (for ablations)."""
        return replace(self, **changes)

    def disk_read_time(self, nbytes: int, seeks: int = 1) -> float:
        """Sequential read of ``nbytes`` after ``seeks`` head movements."""
        return self.disk_seek * seeks + nbytes / self.disk_read_bw

    def disk_write_time(self, nbytes: int, seeks: int = 1) -> float:
        """Sequential write of ``nbytes`` after ``seeks`` head movements."""
        return self.disk_seek * seeks + nbytes / self.disk_write_bw

    def net_transfer_time(self, nbytes: int, messages: int = 1) -> float:
        """Transfer ``nbytes`` split over ``messages`` round-trips."""
        return self.net_latency * messages + nbytes / self.net_bw

    def serialize_time(self, nbytes: int, nrecords: int) -> float:
        """CPU cost of serializing ``nrecords`` totalling ``nbytes``."""
        return nbytes / self.serialize_bw + nrecords * self.ser_per_record

    def deserialize_time(self, nbytes: int, nrecords: int) -> float:
        """CPU cost of deserializing ``nrecords`` totalling ``nbytes``."""
        return nbytes / self.deserialize_bw + nrecords * self.deser_per_record

    def clone_time(self, nbytes: int, nrecords: int) -> float:
        """Defensive deep-copy of records (M3R default without ImmutableOutput)."""
        return nbytes / self.clone_bw + nrecords * self.clone_per_record

    def handoff_time(self, nrecords: int) -> float:
        """Pointer pass of records within one address space."""
        return nrecords * self.handoff_per_record

    def memcpy_time(self, nbytes: int) -> float:
        """Raw in-memory copy of ``nbytes``."""
        return nbytes / self.mem_bw

    def alloc_time(self, nobjects: int) -> float:
        """Allocation plus amortized GC share for ``nobjects`` fresh objects."""
        return nobjects * self.alloc_per_object

    def gc_churn_time(self, nobjects: int) -> float:
        """Constant GC-churn cost for an allocation-heavy task."""
        if nobjects >= self.gc_churn_threshold:
            return self.gc_churn_overhead
        return 0.0

    def sort_time(self, nrecords: int, nbytes: int) -> float:
        """In-memory comparison sort of ``nrecords`` totalling ``nbytes``."""
        if nrecords <= 1:
            return 0.0
        levels = math.log2(nrecords)
        return nrecords * levels * self.sort_per_compare + nbytes / self.mem_bw

    def merge_time(self, nrecords: int, nbytes: int, nruns: int) -> float:
        """In-memory k-way merge of ``nruns`` pre-sorted runs.

        A heap of size ``nruns`` costs one ``log2(nruns)`` sift per record
        plus one streaming pass over the bytes — the reduce-side cost when
        map output arrives as sorted runs, replacing the full
        ``nrecords * log2(nrecords)`` comparison sort.
        """
        if nrecords <= 0:
            return 0.0
        compare = 0.0
        if nruns > 1:
            compare = nrecords * math.log2(nruns) * self.sort_per_compare
        return compare + nbytes / self.mem_bw

    def external_merge_passes(self, nruns: int) -> int:
        """Number of read+write passes an external merge of ``nruns`` needs."""
        if nruns <= 1:
            return 0
        return max(1, math.ceil(math.log(nruns, self.merge_fan_in)))

    def external_merge_time(self, nrecords: int, nbytes: int, nruns: int) -> float:
        """Out-of-core merge of ``nruns`` sorted runs (Hadoop reduce-side sort)."""
        passes = self.external_merge_passes(nruns)
        if passes == 0:
            return 0.0
        io_per_pass = self.disk_read_time(nbytes, seeks=nruns) + self.disk_write_time(
            nbytes, seeks=1
        )
        compare = nrecords * math.log2(max(2, nruns)) * self.sort_per_compare
        return passes * io_per_pass + compare

    def compute_time(self, flops: float) -> float:
        """User computation expressed in floating-point operations."""
        return flops / self.flops_per_sec

    def map_framework_time(self, nrecords: int) -> float:
        """Per-record map framework overhead (iterator, context, counters)."""
        return nrecords * self.map_cpu_per_record

    def reduce_framework_time(self, nrecords: int) -> float:
        """Per-record reduce framework overhead."""
        return nrecords * self.reduce_cpu_per_record


def paper_cluster_cost_model() -> CostModel:
    """The default cost model, calibrated to the paper's 20-node LS-22 cluster."""
    return CostModel()
