"""Cluster topology: nodes, cores and the network between them.

The paper's testbed is homogeneous (20 identical blades on one Gigabit
Ethernet switch), so the topology model is deliberately simple: a list of
:class:`Node` objects and a flat switch.  The pieces that matter for the
reproduction are

* the *number* of nodes and worker threads (M3R runs one multi-threaded
  process per host; Hadoop runs task slots),
* which transfers are local (same node — loopback / shared heap) versus
  remote (cross the switch), and
* stable node identities, because M3R's partition-stability guarantee is a
  deterministic mapping from partition numbers to these identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Node:
    """One machine in the cluster."""

    node_id: int
    hostname: str
    cores: int = 8
    memory_bytes: int = 16 * 1024**3

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("a node needs at least one core")
        if self.memory_bytes <= 0:
            raise ValueError("a node needs positive memory")


class Cluster:
    """A homogeneous cluster connected by one flat switch.

    ``Cluster(num_nodes=20, cores_per_node=8)`` reproduces the paper's
    testbed shape.  Nodes are addressed by integer id in ``[0, num_nodes)``;
    hostnames follow the ``nodeNN`` convention used in locality metadata.
    """

    def __init__(
        self,
        num_nodes: int = 20,
        cores_per_node: int = 8,
        memory_per_node: int = 16 * 1024**3,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        self._nodes: List[Node] = [
            Node(
                node_id=i,
                hostname=f"node{i:02d}",
                cores=cores_per_node,
                memory_bytes=memory_per_node,
            )
            for i in range(num_nodes)
        ]

    # -- basic shape ---------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self._nodes)

    @property
    def total_memory_bytes(self) -> int:
        return sum(n.memory_bytes for n in self._nodes)

    def node(self, node_id: int) -> Node:
        """The node with the given id; raises ``IndexError`` when absent."""
        if not 0 <= node_id < len(self._nodes):
            raise IndexError(f"no node {node_id} in a {len(self._nodes)}-node cluster")
        return self._nodes[node_id]

    def node_by_hostname(self, hostname: str) -> Node:
        """Look a node up by hostname; raises ``KeyError`` when absent."""
        for n in self._nodes:
            if n.hostname == hostname:
                return n
        raise KeyError(hostname)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- locality ------------------------------------------------------- #

    def is_local(self, src: int, dst: int) -> bool:
        """True when a transfer between the two node ids stays on one host."""
        return src == dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = self._nodes[0]
        return (
            f"Cluster(num_nodes={len(self._nodes)}, cores_per_node={n.cores}, "
            f"memory_per_node={n.memory_bytes})"
        )
