"""Entry point: ``python -m repro <command>``."""

import sys

from repro.cli import main

sys.exit(main())
