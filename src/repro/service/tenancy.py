"""Tenant identity and isolation state for the job service.

A tenant is a named client of the always-on engine: a fair-share weight,
an in-flight limit, a path namespace with a cache-residency budget, and a
ReStore visibility choice.  The spec is immutable; the mutable runtime
side (queue, stride pass value, accounting) lives on :class:`TenantState`
inside the service and is guarded by the service lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fs.filesystem import normalize_path
from repro.restore.store import ResultStore


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's registration: identity plus isolation parameters.

    ``prefixes`` is the tenant's path namespace.  When non-empty, every
    submission's output path must fall inside it (admission rejects stray
    writers) and the tenant's resident cache bytes are charged against
    ``cache_budget_bytes`` on the engine's governor (0 = unbounded).  An
    empty prefix tuple means the tenant is unconfined: no namespace
    validation and no tenant-budget accounting — the single-tenant
    compatibility mode.

    ``shared_restore`` selects ReStore visibility: ``False`` (default)
    gives the tenant a private result store — its recorded results are
    invisible to every other tenant; ``True`` joins the service-wide
    shared namespace, where identical plans reuse each other's results
    across tenants.
    """

    name: str
    weight: int = 1
    inflight_limit: int = 8
    cache_budget_bytes: int = 0
    prefixes: Tuple[str, ...] = ()
    shared_restore: bool = False

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid tenant name: {self.name!r}")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive: {self.weight}")
        if self.inflight_limit <= 0:
            raise ValueError(
                f"in-flight limit must be positive: {self.inflight_limit}"
            )
        if self.cache_budget_bytes < 0:
            raise ValueError(
                f"cache budget cannot be negative: {self.cache_budget_bytes}"
            )
        object.__setattr__(
            self, "prefixes",
            tuple(sorted(normalize_path(p) for p in self.prefixes)),
        )

    def owns_path(self, path: str) -> bool:
        """Does ``path`` fall inside this tenant's namespace?  Unconfined
        tenants (no prefixes) own everything."""
        if not self.prefixes:
            return True
        path = normalize_path(path)
        return any(
            path == prefix or path.startswith(prefix + "/")
            for prefix in self.prefixes
        )


class TenantState:
    """The service's mutable per-tenant record (guarded by the service
    lock): the FIFO queue, the stride scheduler's pass value, the private
    result store, and lifetime accounting."""

    def __init__(self, spec: TenantSpec, store: Optional[ResultStore]):
        self.spec = spec
        #: Private ReStore store; ``None`` means the tenant shares the
        #: service-wide store.
        self.store = store
        #: Queued submissions, FIFO.  The running submission is NOT here.
        self.queue: List[object] = []
        #: Stride-scheduling virtual time; advances by jobs/weight.
        self.pass_value: float = 0.0
        #: Submissions currently queued or running (the in-flight gauge).
        self.inflight: int = 0
        self.counters: Dict[str, int] = {
            "submitted": 0, "rejected": 0, "cancelled": 0,
            "succeeded": 0, "failed": 0, "jobs_run": 0,
        }
        self.simulated_seconds: float = 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "tenant": self.spec.name,
            "weight": self.spec.weight,
            "inflight_limit": self.spec.inflight_limit,
            "cache_budget_bytes": self.spec.cache_budget_bytes,
            "prefixes": list(self.spec.prefixes),
            "shared_restore": self.spec.shared_restore,
            "queued": len(self.queue),
            "inflight": self.inflight,
            "simulated_seconds": self.simulated_seconds,
            **dict(self.counters),
        }


@dataclass
class SubmissionRecord:
    """One admitted submission: a job or a whole sequence under one ticket."""

    ticket: str
    tenant: str
    confs: Tuple[object, ...]
    #: queued | running | succeeded | failed | cancelled
    state: str = "queued"
    results: List[object] = field(default_factory=list)
    #: Engine exception (node loss) captured by the worker; ``wait``
    #: re-raises it so service submission fails exactly like a direct run.
    exception: Optional[BaseException] = None
    #: Narration from lifecycle events: the running job's current stage.
    current_stage: Optional[str] = None
    #: Set when the submission reaches a terminal state; ``wait`` blocks on
    #: it in server mode (caller-driven mode re-checks while driving).
    done: threading.Event = field(default_factory=threading.Event)
