"""The always-on job service: async admission, serial execution, fairness.

:class:`JobService` wraps one long-lived engine (M3R or the stock Hadoop
simulator — anything with ``run_job``).  Clients submit jobs or whole
:class:`~repro.api.job.JobSequence` pipelines asynchronously and get a
*ticket* back; a deterministic stride scheduler picks which tenant's
submission runs next; the engine executes strictly one submission at a
time.  That serial-execution rule is what keeps the repo's determinism
contract intact — the only concurrency the service introduces lives in
the admission layer, where it cannot touch job outputs or simulated time.

Two driving modes share the same scheduler:

* **caller-driven** (default): any thread blocked in :meth:`JobService.wait`
  volunteers to drive the scheduler — it runs submissions (not necessarily
  its own) under the run lock until its ticket completes.  No background
  thread exists, so ``TenantClient.run_job`` works in a plain script.
* **server mode**: :meth:`JobService.start` spawns one worker thread that
  drains the queues; ``wait`` then just blocks on the submission's done
  event.  This is the ``python -m repro serve`` / BigSheets shape.

Both modes produce the *same* schedule for the same admission order,
because who runs next is decided by :class:`FairScheduler` state that only
changes under the service lock — never by thread timing.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.api.conf import (
    Configuration,
    JobConf,
    SERVICE_IN_FLIGHT_KEY,
    SERVICE_QUEUE_DEPTH_KEY,
    SERVICE_SHARED_RESTORE_KEY,
    SERVICE_TENANT_BUDGET_KEY,
    SERVICE_TENANT_WEIGHT_KEY,
)
from repro.api.job import JobSequence
from repro.fs.filesystem import normalize_path
from repro.lifecycle.events import JobEnd, LifecycleEvent, ServiceEvent, StageStart
from repro.restore.store import ResultStore
from repro.service.scheduler import FairScheduler
from repro.service.tenancy import SubmissionRecord, TenantSpec, TenantState

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_INFLIGHT_LIMIT = 8
#: How many ServiceEvents the service remembers for ``service-stats``.
SERVICE_EVENT_RING = 512


class AdmissionError(RuntimeError):
    """A submission was rejected at admission (typed backpressure)."""


class QueueFull(AdmissionError):
    """The service-wide submission queue is at its bounded depth."""


class TenantLimitExceeded(AdmissionError):
    """The tenant already has its limit of in-flight submissions."""


@dataclass(frozen=True)
class SubmissionStatus:
    """A point-in-time snapshot of one ticket, safe to hand across threads."""

    ticket: str
    tenant: str
    #: queued | running | succeeded | failed | cancelled
    state: str
    jobs_total: int
    jobs_done: int
    #: The running job's current lifecycle stage (from StageStart events).
    current_stage: Optional[str]
    #: Simulated seconds accumulated by this submission's finished jobs.
    simulated_seconds: float
    error: Optional[str]


class JobService:
    """Multi-tenant admission, isolation and fair scheduling over one engine.

    The service is the paper's "engine outlives the job" deployment grown
    into a serving layer: register tenants, submit from many threads, and
    the wrapped engine's caches, ReStore and JIT state stay warm across
    every tenant's jobs while admission keeps the tenants out of each
    other's way.
    """

    def __init__(self, engine: Any, config: Optional[Configuration] = None):
        cfg = config if config is not None else Configuration()
        self.engine = engine
        #: Bounded total queue depth (queued, not running, submissions).
        self.queue_depth = cfg.get_int(SERVICE_QUEUE_DEPTH_KEY, DEFAULT_QUEUE_DEPTH)
        if self.queue_depth <= 0:
            raise ValueError(f"queue depth must be positive: {self.queue_depth}")
        self._default_weight = cfg.get_int(SERVICE_TENANT_WEIGHT_KEY, 1)
        self._default_inflight = cfg.get_int(
            SERVICE_IN_FLIGHT_KEY, DEFAULT_INFLIGHT_LIMIT
        )
        self._default_budget = cfg.get_int(SERVICE_TENANT_BUDGET_KEY, 0)
        self._default_shared_restore = cfg.get_boolean(
            SERVICE_SHARED_RESTORE_KEY, False
        )

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        #: Serializes engine execution: exactly one submission runs at a time.
        self._run_lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        self._submissions: Dict[str, SubmissionRecord] = {}
        self._running: Optional[SubmissionRecord] = None
        self._ticket_counter = 0
        self._scheduler = FairScheduler()
        #: Opt-in shared ReStore namespace (tenants with shared_restore=True).
        self._shared_store = ResultStore()
        self._events: Deque[ServiceEvent] = deque(maxlen=SERVICE_EVENT_RING)
        self._worker: Optional[threading.Thread] = None
        self._stop = False
        self._closed = False

        # Feed status()/current_stage from the typed lifecycle stream: the
        # engine subscribes these sinks on every job's bus.
        self._lifecycle_sink: Callable[[LifecycleEvent], None] = self._on_event
        sinks = getattr(engine, "trace_sinks", None)
        if sinks is not None:
            sinks.append(self._lifecycle_sink)

    # ------------------------------------------------------------------
    # tenants

    def register_tenant(
        self,
        name: str,
        *,
        weight: Optional[int] = None,
        inflight_limit: Optional[int] = None,
        cache_budget_bytes: Optional[int] = None,
        prefixes: Tuple[str, ...] = (),
        shared_restore: Optional[bool] = None,
    ) -> "TenantClient":
        """Register a tenant; unset isolation knobs fall back to the
        ``m3r.service.*`` configuration defaults."""
        spec = TenantSpec(
            name=name,
            weight=self._default_weight if weight is None else weight,
            inflight_limit=(
                self._default_inflight if inflight_limit is None else inflight_limit
            ),
            cache_budget_bytes=(
                self._default_budget
                if cache_budget_bytes is None
                else cache_budget_bytes
            ),
            prefixes=tuple(prefixes),
            shared_restore=(
                self._default_shared_restore
                if shared_restore is None
                else shared_restore
            ),
        )
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant already registered: {name}")
            store = None if spec.shared_restore else ResultStore()
            self._tenants[name] = TenantState(spec, store)
            self._scheduler.add_tenant(name, spec.weight)
        governor = getattr(self.engine, "governor", None)
        if governor is not None and spec.prefixes:
            governor.tenants.register(name, spec.prefixes, spec.cache_budget_bytes)
        return TenantClient(self, name)

    def client(self, name: str) -> "TenantClient":
        with self._lock:
            if name not in self._tenants:
                raise KeyError(f"unknown tenant: {name}")
        return TenantClient(self, name)

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------
    # admission

    def submit(self, tenant: str, job: Any) -> str:
        """Admit a job (``JobConf``) or pipeline (``JobSequence``) for
        ``tenant``; returns a ticket immediately, or raises typed
        backpressure (:class:`QueueFull` / :class:`TenantLimitExceeded`)."""
        confs: Tuple[JobConf, ...]
        if isinstance(job, JobSequence):
            confs = tuple(job)
        else:
            confs = (job,)
        if not confs:
            raise ValueError("cannot submit an empty sequence")
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise KeyError(f"unknown tenant: {tenant}")
            queued = sum(
                len(t.queue)
                for t in self._tenants.values()  # noqa: M3R002 - order-independent count
            )
            if queued >= self.queue_depth:
                state.counters["rejected"] += 1
                self._emit_locked("rejected", tenant, f"{tenant}/-", "queue-full")
                raise QueueFull(
                    f"service queue full ({queued}/{self.queue_depth}); "
                    f"tenant {tenant} rejected"
                )
            if state.inflight >= state.spec.inflight_limit:
                state.counters["rejected"] += 1
                self._emit_locked("rejected", tenant, f"{tenant}/-", "in-flight-limit")
                raise TenantLimitExceeded(
                    f"tenant {tenant} at in-flight limit "
                    f"({state.inflight}/{state.spec.inflight_limit})"
                )
            for conf in confs:
                out = conf.get_output_path()
                if out and not state.spec.owns_path(out):
                    state.counters["rejected"] += 1
                    self._emit_locked("rejected", tenant, f"{tenant}/-", "namespace")
                    raise AdmissionError(
                        f"output path {out!r} is outside tenant {tenant}'s "
                        f"namespace {list(state.spec.prefixes)}"
                    )
            ticket = f"{tenant}/{self._ticket_counter}"
            self._ticket_counter += 1
            if state.inflight == 0:
                # Idle -> ready: lift the tenant's pass to virtual time so
                # it cannot spend banked credit starving active tenants.
                self._scheduler.on_ready(tenant)
            record = SubmissionRecord(ticket=ticket, tenant=tenant, confs=confs)
            state.queue.append(record)
            state.inflight += 1
            state.counters["submitted"] += 1
            self._submissions[ticket] = record
            self._emit_locked("submitted", tenant, ticket)
            self._work.notify_all()
        return ticket

    def cancel(self, ticket: str) -> bool:
        """Withdraw a *queued* submission.  Returns ``False`` when the
        ticket is already running or finished — running jobs are never
        interrupted (killing mid-job would break determinism and leak
        half-committed outputs)."""
        with self._lock:
            record = self._require(ticket)
            if record.state != "queued":
                return False
            state = self._tenants[record.tenant]
            state.queue.remove(record)
            state.inflight -= 1
            record.state = "cancelled"
            state.counters["cancelled"] += 1
            self._emit_locked("cancelled", record.tenant, ticket)
        record.done.set()
        return True

    # ------------------------------------------------------------------
    # status / results

    def status(self, ticket: str) -> SubmissionStatus:
        with self._lock:
            record = self._require(ticket)
            return SubmissionStatus(
                ticket=record.ticket,
                tenant=record.tenant,
                state=record.state,
                jobs_total=len(record.confs),
                jobs_done=len(record.results),
                current_stage=record.current_stage,
                simulated_seconds=sum(
                    r.simulated_seconds for r in record.results
                ),
                error=(
                    str(record.exception) if record.exception is not None else None
                ),
            )

    def wait(self, ticket: str, timeout: Optional[float] = None) -> List[Any]:
        """Block until ``ticket`` finishes and return its results (one
        :class:`EngineResult` per job).  Re-raises the engine exception if
        the submission died, exactly like a direct ``run_job`` would.

        Without a background worker the waiting thread *drives* the
        scheduler: it runs whichever submissions the fair scheduler picks
        (not necessarily its own) until its ticket completes.
        """
        with self._lock:
            record = self._require(ticket)
        while not record.done.is_set():
            if self._worker is not None:
                if not record.done.wait(timeout if timeout is not None else 0.1):
                    if timeout is not None:
                        raise TimeoutError(f"timed out waiting for {ticket}")
                continue
            if not self._drive_one() and not record.done.is_set():
                # Nothing runnable and no worker: the ticket can only be
                # stuck (should not happen — cancel sets done).
                record.done.wait(0.01)
        if record.exception is not None:
            raise record.exception
        return list(record.results)

    # ------------------------------------------------------------------
    # scheduling / execution

    def step(self) -> bool:
        """Run the next scheduled submission to completion (synchronously).
        Returns ``False`` when every queue is empty."""
        return self._drive_one()

    def drain(self) -> int:
        """Run submissions until all queues are empty; returns how many ran."""
        ran = 0
        while self._drive_one():
            ran += 1
        return ran

    def _drive_one(self) -> bool:
        with self._run_lock:
            with self._lock:
                record = self._dispatch_locked()
            if record is None:
                return False
            self._execute(record)
        return True

    def _dispatch_locked(self) -> Optional[SubmissionRecord]:
        """Pick the next submission (fair scheduler) and mark it running."""
        ready = [name for name, state in self._tenants.items() if state.queue]
        choice = self._scheduler.select(sorted(ready))
        if choice is None:
            return None
        state = self._tenants[choice]
        record = state.queue.pop(0)
        record.state = "running"
        self._running = record
        # Charge fairness at dispatch, per job: a tenant cannot buy extra
        # bandwidth by batching many jobs into one sequence ticket.
        self._scheduler.charge(choice, len(record.confs))
        self._emit_locked("started", choice, record.ticket)
        return record

    def _execute(self, record: SubmissionRecord) -> None:
        """Run one submission on the engine (run lock held, service lock not).

        Isolation happens here: the engine's ReStore is swapped to the
        tenant's store (private unless the tenant opted into the shared
        namespace) for the duration, and sequence outputs are pinned
        between jobs exactly like ``Engine.run_sequence`` does (sequence
        affinity).
        """
        engine = self.engine
        state = self._tenants[record.tenant]
        store = state.store if state.store is not None else self._shared_store
        had_restore = hasattr(engine, "restore")
        prev_store = engine.restore if had_restore else None
        governor = getattr(engine, "governor", None)
        pins: List[str] = []
        if had_restore:
            engine.restore = store
        try:
            for conf in record.confs:
                try:
                    result = engine.run_job(conf)
                except BaseException as exc:
                    # The running record is owned exclusively by this
                    # thread (run lock held) until done is set.
                    record.exception = exc  # noqa: M3R001 - run lock held
                    break
                record.results.append(result)  # noqa: M3R001 - run lock held
                with self._lock:
                    state.counters["jobs_run"] += 1
                    state.simulated_seconds += result.simulated_seconds
                if not result.succeeded:
                    break
                if result.output_path and governor is not None:
                    prefix = normalize_path(result.output_path)
                    governor.pin_prefix(prefix)
                    pins.append(prefix)
        finally:
            if governor is not None:
                for prefix in pins:
                    governor.unpin_prefix(prefix)
            if had_restore:
                engine.restore = prev_store
        with self._lock:
            ok = (
                record.exception is None
                and len(record.results) == len(record.confs)
                and all(r.succeeded for r in record.results)
            )
            record.state = "succeeded" if ok else "failed"
            record.current_stage = None
            state.counters["succeeded" if ok else "failed"] += 1
            state.inflight -= 1
            self._running = None
            self._emit_locked("finished", record.tenant, record.ticket, record.state)
        record.done.set()

    # ------------------------------------------------------------------
    # server mode

    def start(self) -> "JobService":
        """Spawn the background worker thread (server mode)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._worker is not None:
                return self
            self._stop = False
            self._worker = threading.Thread(
                target=self._worker_loop, name="m3r-service", daemon=True
            )
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work first."""
        with self._lock:
            worker = self._worker
            if worker is None:
                return
            self._stop = True
            self._drain_on_stop = drain
            self._work.notify_all()
        worker.join()
        with self._lock:
            self._worker = None

    def close(self) -> None:
        """Stop the worker and detach from the engine's lifecycle stream."""
        self.stop()
        with self._lock:
            self._closed = True
        sinks = getattr(self.engine, "trace_sinks", None)
        if sinks is not None and self._lifecycle_sink in sinks:
            sinks.remove(self._lifecycle_sink)

    def _worker_loop(self) -> None:
        while True:
            if self._drive_one():
                continue
            with self._work:
                if self._stop:
                    if getattr(self, "_drain_on_stop", True) and any(
                        state.queue for state in self._tenants.values()
                    ):
                        continue  # one more drive pass before exiting
                    return
                self._work.wait(0.05)

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability

    def _on_event(self, event: LifecycleEvent) -> None:
        """Lifecycle sink (subscribed on every job's bus): narrates the
        running submission's progress into its record."""
        if isinstance(event, ServiceEvent):
            return
        with self._lock:
            record = self._running
            if record is None:
                return
            if isinstance(event, StageStart):
                record.current_stage = event.stage
            elif isinstance(event, JobEnd):
                record.current_stage = None

    def _emit_locked(
        self, action: str, tenant: str, ticket: str, detail: Optional[str] = None
    ) -> None:
        """Append a ServiceEvent (service lock held by the caller)."""
        event = ServiceEvent(
            job_id=ticket,
            engine="service",
            action=action,
            tenant=tenant,
            queued=sum(
                len(t.queue)
                for t in self._tenants.values()  # noqa: M3R002 - order-independent count
            ),
            detail=detail,
        )
        self._events.append(event)
        ring = getattr(self.engine, "event_ring", None)
        if ring is not None:
            ring(event)

    def events(self) -> List[ServiceEvent]:
        """A snapshot of the recent ServiceEvent ring (oldest first)."""
        with self._lock:
            return list(self._events)

    def schedule_log(self) -> List[Tuple[str, str]]:
        """The dispatch order so far: ``(tenant, ticket)`` per start event.
        This is the determinism witness the fairness tests assert on."""
        with self._lock:
            return [
                (e.tenant, e.job_id) for e in self._events if e.action == "started"
            ]

    def tenant_stats(self, name: str) -> Dict[str, Any]:
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                raise KeyError(f"unknown tenant: {name}")
            stats = state.stats()
            stats["pass"] = self._scheduler.pass_of(name)
        governor = getattr(self.engine, "governor", None)
        if governor is not None:
            ledger = governor.tenants.snapshot().get(name)
            if ledger is not None:
                stats["cache"] = ledger
        store = self._store_of(name)
        stats["restore"] = store.stats()
        return stats

    def service_stats(self) -> Dict[str, Any]:
        with self._lock:
            running = self._running
            return {
                "engine": getattr(self.engine, "name", type(self.engine).__name__),
                "queue_depth": self.queue_depth,
                "queued": sum(len(t.queue) for t in self._tenants.values()),
                "running": running.ticket if running is not None else None,
                "worker": self._worker is not None,
                "tenants": {
                    name: self._tenants[name].stats()
                    for name in sorted(self._tenants)
                },
                "shared_restore": self._shared_store.stats(),
            }

    def _store_of(self, name: str) -> ResultStore:
        state = self._tenants[name]
        return state.store if state.store is not None else self._shared_store

    def _require(self, ticket: str) -> SubmissionRecord:
        record = self._submissions.get(ticket)
        if record is None:
            raise KeyError(f"unknown ticket: {ticket}")
        return record


class TenantClient:
    """A tenant-scoped facade with the engine's blocking surface.

    ``run_job`` / ``run_sequence`` go through service admission, fair
    scheduling and tenant isolation, then block for the result — so any
    code written against an engine (examples, workloads, tests) runs
    unmodified against a service tenant.  Unknown attributes delegate to
    the wrapped engine, which is what lets the equivalence suite treat a
    client as a drop-in engine.
    """

    _LOCAL = ("_service", "_tenant")

    def __init__(self, service: JobService, tenant: str):
        object.__setattr__(self, "_service", service)
        object.__setattr__(self, "_tenant", tenant)

    @property
    def service(self) -> JobService:
        return self._service

    @property
    def tenant(self) -> str:
        return self._tenant

    def run_job(self, conf: JobConf) -> Any:
        ticket = self._service.submit(self._tenant, conf)
        return self._service.wait(ticket)[0]

    def run_sequence(self, sequence: JobSequence) -> List[Any]:
        ticket = self._service.submit(self._tenant, sequence)
        return self._service.wait(ticket)

    def submit(self, job: Any) -> str:
        return self._service.submit(self._tenant, job)

    def stats(self) -> Dict[str, Any]:
        return self._service.tenant_stats(self._tenant)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._service.engine, name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in TenantClient._LOCAL:
            object.__setattr__(self, name, value)
        else:
            setattr(self._service.engine, name, value)
