"""The multi-tenant job service: the paper's always-on deployment story
(Section 5.3) grown into a serving layer.

The paper's killer deployment keeps one M3R engine alive while interactive
clients (BigSheets) stream jobs at it.  This package is the layer that
makes that multi-tenant:

* **admission** (:class:`~repro.service.service.JobService.submit`) — an
  asynchronous submission queue with a bounded total depth and per-tenant
  in-flight limits; exceeding either rejects the submission with typed
  backpressure (:class:`QueueFull` / :class:`TenantLimitExceeded`);
* **isolation** (:class:`~repro.service.tenancy.TenantSpec`) — each tenant
  owns a path namespace; its cache residency is charged to a per-tenant
  budget on the engine's :class:`~repro.memory.governor.MemoryGovernor`
  (one tenant's pressure evicts only its own unpinned entries), and its
  ReStore results live in a private per-tenant store unless the tenant
  opts into the service-wide shared namespace;
* **scheduling** (:class:`~repro.service.scheduler.FairScheduler`) — a
  deterministic stride scheduler (weighted round-robin) over per-tenant
  FIFO queues; a submitted :class:`~repro.api.job.JobSequence` is the
  atomic unit, so iterative jobs run back-to-back with their cached
  inputs pinned hot (sequence affinity);
* **observability** — ``submit`` / ``status`` / ``wait`` / ``cancel`` /
  ``tenant_stats`` fed by typed :class:`LifecycleEvent` subscriptions on
  every job's bus, a :class:`~repro.lifecycle.events.ServiceEvent` family
  narrating admission decisions, and ``python -m repro serve`` /
  ``python -m repro service-stats``.

Jobs execute strictly one at a time on the wrapped engine — concurrency
lives in the admission layer — so the repo's determinism contract holds
end to end: for any fixed admission order, the schedule, every output
byte and every simulated second are identical across runs, and each
tenant's outputs are byte-identical to running its sequence alone.
"""

from repro.service.scheduler import FairScheduler
from repro.service.service import (
    AdmissionError,
    JobService,
    QueueFull,
    SubmissionStatus,
    TenantClient,
    TenantLimitExceeded,
)
from repro.service.tenancy import TenantSpec

__all__ = [
    "AdmissionError",
    "FairScheduler",
    "JobService",
    "QueueFull",
    "SubmissionStatus",
    "TenantClient",
    "TenantLimitExceeded",
    "TenantSpec",
]
