"""Deterministic fair scheduling across tenants: stride scheduling.

Classic weighted round-robin via virtual time: every tenant carries a
*pass* value; the scheduler always picks the ready tenant with the lowest
``(pass, name)`` (the name tie-break is what makes the schedule a pure
function of the admission order), and after a submission runs, the
tenant's pass advances by ``jobs / weight`` — a weight-2 tenant gets two
job slots for every one a weight-1 tenant gets, amortized.

A whole :class:`~repro.api.job.JobSequence` is one scheduling unit
(sequence affinity: its jobs run back-to-back so the outputs each next
job reads stay pinned and hot), but fairness is charged per *job*, so a
tenant cannot buy extra bandwidth by batching jobs into long sequences.

When a tenant goes idle and later becomes ready again, its pass is lifted
to the current virtual time instead of keeping the stale low value — an
idle tenant must not accumulate credit and then starve everyone else
(the standard stride-scheduler re-join rule).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class FairScheduler:
    """Stride scheduler state: pass values + weights, no queues of its own.

    The service owns the per-tenant FIFO queues; this class only answers
    "who runs next" and "charge this run".  All methods are called under
    the service lock, so there is no locking here.
    """

    def __init__(self) -> None:
        self._weights: Dict[str, int] = {}
        self._pass: Dict[str, float] = {}
        #: The pass value of the most recently selected tenant — the
        #: scheduler's notion of "now" for re-joining tenants.
        self._virtual_time: float = 0.0

    def add_tenant(self, name: str, weight: int) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        self._weights[name] = weight
        self._pass.setdefault(name, self._virtual_time)

    def remove_tenant(self, name: str) -> None:
        self._weights.pop(name, None)
        self._pass.pop(name, None)

    def on_ready(self, name: str) -> None:
        """Called when ``name`` goes from idle (empty queue) to ready."""
        self._pass[name] = max(self._pass.get(name, 0.0), self._virtual_time)

    def select(self, ready: Iterable[str]) -> Optional[str]:
        """The ready tenant with the lowest ``(pass, name)``."""
        best: Optional[str] = None
        for name in ready:
            if best is None or (
                (self._pass.get(name, 0.0), name)
                < (self._pass.get(best, 0.0), best)
            ):
                best = name
        if best is not None:
            self._virtual_time = self._pass.get(best, 0.0)
        return best

    def charge(self, name: str, jobs: int) -> None:
        """Advance ``name``'s pass after running a ``jobs``-job unit."""
        weight = self._weights.get(name, 1)
        self._pass[name] = self._pass.get(name, 0.0) + max(1, jobs) / weight

    def pass_of(self, name: str) -> float:
        return self._pass.get(name, 0.0)
