"""The library's job classes: hand-optimized blocked matrix operators.

Every class here is marked ``ImmutableOutput`` and every job is partitioned
by row chunk (:class:`repro.apps.matvec.RowChunkPartitioner`), which is
what lets M3R's partition stability keep the row stripes of every operand
pinned to their places across a whole expression pipeline.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np
from scipy import sparse

from repro.api.conf import JobConf
from repro.api.extensions import ImmutableOutput
from repro.api.mapred import Mapper, OutputCollector, Reducer, Reporter
from repro.api.partitioner import Partitioner
from repro.api.writables import (
    BlockIndexWritable,
    DoubleWritable,
    IntWritable,
    MatrixBlockWritable,
)
from repro.apps.matvec import NUM_ROW_BLOCKS_KEY, RowChunkPartitioner

OP_KEY = "mrlib.op"
SCALAR_KEY = "mrlib.scalar"
BCAST_ROW_BLOCKS_KEY = "mrlib.broadcast.row.blocks"


class JoinKeyPartitioner(Partitioner):
    """Partitions the cross-join's integer join keys by contiguous chunks,
    mirroring the row-chunk discipline so repeated multiplies against the
    same right-hand side stay stable."""

    def __init__(self) -> None:
        self._num_keys = 1

    def configure(self, conf: JobConf) -> None:
        self._num_keys = max(1, conf.get_int(NUM_ROW_BLOCKS_KEY, 1))

    def get_partition(self, key: IntWritable, value: object, num_partitions: int) -> int:
        chunk = key.get() * num_partitions // self._num_keys
        return min(num_partitions - 1, max(0, chunk))


# --------------------------------------------------------------------------- #
# matmul, broadcast form: B has one block-column (the matvec pattern)
# --------------------------------------------------------------------------- #


class LeftPassMapper(Mapper, ImmutableOutput):
    """Pass A's blocks through under their own (row-chunked) keys."""

    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        output.collect(key, _Tagged("A", 0, value))


class RightBroadcastMapper(Mapper, ImmutableOutput):
    """Broadcast B's block (q, j) to every block-row of A's column q.

    The same tagged block object is emitted for every destination — M3R's
    de-duplicating serializer sends one copy per place.
    """

    def __init__(self) -> None:
        self._row_blocks = 1

    def configure(self, conf: JobConf) -> None:
        self._row_blocks = max(1, conf.get_int(BCAST_ROW_BLOCKS_KEY, 1))

    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        tagged = _Tagged("B", 0, value)
        for row in range(self._row_blocks):
            output.collect(BlockIndexWritable(row, key.row), tagged)


class BroadcastMultiplyReducer(Reducer, ImmutableOutput):
    """``partial(i, q) = A[i, q] @ B[q, :]`` for the broadcast matmul form."""

    def reduce(self, key: BlockIndexWritable, values: Iterator["_Tagged"],
               output: OutputCollector, reporter: Reporter) -> None:
        a_block: Optional[MatrixBlockWritable] = None
        b_block: Optional[MatrixBlockWritable] = None
        for value in values:
            if value.tag == "A":
                a_block = value.block
            else:
                b_block = value.block
        if a_block is None or b_block is None:
            return
        product = a_block.matrix @ b_block.matrix
        reporter.charge_flops(2.0 * a_block.nnz * max(1, b_block.shape[1]))
        output.collect(key.clone(), MatrixBlockWritable(product))


class PartialToRowMapper(Mapper, ImmutableOutput):
    """Sum job mapper: rewrite (i, q) to (i, 0) so one reduce call sums row i."""

    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        output.collect(BlockIndexWritable(key.row, 0), value)


class BlockAddReducer(Reducer, ImmutableOutput):
    """Element-wise sum of the blocks arriving under one key."""

    def reduce(self, key: BlockIndexWritable, values: Iterator[MatrixBlockWritable],
               output: OutputCollector, reporter: Reporter) -> None:
        total: Optional[sparse.spmatrix] = None
        for value in values:
            block = value.matrix
            total = block if total is None else total + block
            reporter.charge_flops(float(value.nnz))
        if total is not None:
            output.collect(key.clone(), MatrixBlockWritable(total))


# --------------------------------------------------------------------------- #
# matmul, general form: cross join on the shared dimension
# --------------------------------------------------------------------------- #


class CrossLeftMapper(Mapper, ImmutableOutput):
    """A block (i, q) → join key q, remembering row i in the block's key
    column via a wrapping index convention (row in the value's key)."""

    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        output.collect(IntWritable(key.col), _Tagged("A", key.row, value))


class CrossRightMapper(Mapper, ImmutableOutput):
    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        output.collect(IntWritable(key.row), _Tagged("B", key.col, value))


class _Tagged:
    """A tagged block for the cross join (plain object; ImmutableOutput jobs
    never mutate it, and the serializer measures it structurally)."""

    __slots__ = ("tag", "index", "block")

    def __init__(self, tag: str, index: int, block: MatrixBlockWritable):
        self.tag = tag
        self.index = index
        self.block = block

    def serialized_size(self) -> int:
        return 6 + self.block.serialized_size()

    def clone(self) -> "_Tagged":
        return _Tagged(self.tag, self.index, self.block.clone())


class CrossMultiplyReducer(Reducer, ImmutableOutput):
    """For join key q: emit every partial ``A(i,q) @ B(q,j)``."""

    def reduce(self, key: IntWritable, values: Iterator[_Tagged],
               output: OutputCollector, reporter: Reporter) -> None:
        left = []
        right = []
        for value in values:
            (left if value.tag == "A" else right).append((value.index, value.block))
        for i, a_block in left:
            a_mat = a_block.matrix
            for j, b_block in right:
                product = a_mat @ b_block.matrix
                reporter.charge_flops(2.0 * a_block.nnz * max(1, b_block.shape[1]))
                output.collect(
                    BlockIndexWritable(i, j), MatrixBlockWritable(product)
                )


class BlockPassMapper(Mapper, ImmutableOutput):
    def map(self, key, value, output: OutputCollector, reporter: Reporter) -> None:
        output.collect(key, value)


# --------------------------------------------------------------------------- #
# element-wise, transpose, scalar, aggregates
# --------------------------------------------------------------------------- #


class ElementwiseCombineReducer(Reducer, ImmutableOutput):
    """Combines the blocks under one index with the configured operator.

    Operands arrive from two tagged mappers (MultipleInputs); a missing
    side is a zero block.
    """

    def __init__(self) -> None:
        self._op = "add"

    def configure(self, conf: JobConf) -> None:
        self._op = conf.get(OP_KEY, "add")

    def reduce(self, key: BlockIndexWritable, values: Iterator[_Tagged],
               output: OutputCollector, reporter: Reporter) -> None:
        left: Optional[MatrixBlockWritable] = None
        right: Optional[MatrixBlockWritable] = None
        for value in values:
            if value.tag == "A":
                left = value.block
            else:
                right = value.block
        shape = (left or right).shape
        l_mat = left.matrix if left is not None else sparse.csc_matrix(shape)
        r_mat = right.matrix if right is not None else sparse.csc_matrix(shape)
        reporter.charge_flops(
            float((left.nnz if left else 0) + (right.nnz if right else 0))
        )
        if self._op == "add":
            result = l_mat + r_mat
        elif self._op == "sub":
            result = l_mat - r_mat
        elif self._op == "mul":
            result = l_mat.multiply(r_mat)
        else:
            raise ValueError(f"unknown element-wise op {self._op!r}")
        output.collect(key.clone(), MatrixBlockWritable(result))


class TaggingMapperA(Mapper, ImmutableOutput):
    def map(self, key, value, output: OutputCollector, reporter: Reporter) -> None:
        output.collect(key, _Tagged("A", 0, value))


class TaggingMapperB(Mapper, ImmutableOutput):
    def map(self, key, value, output: OutputCollector, reporter: Reporter) -> None:
        output.collect(key, _Tagged("B", 0, value))


class TransposeBlockMapper(Mapper, ImmutableOutput):
    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        output.collect(
            BlockIndexWritable(key.col, key.row),
            MatrixBlockWritable(value.matrix.transpose().tocsc()),
        )


class ScalarBlockMapper(Mapper, ImmutableOutput):
    """Map-only scalar/unary operator over CSC blocks."""

    def __init__(self) -> None:
        self._op = "smul"
        self._scalar = 1.0

    def configure(self, conf: JobConf) -> None:
        self._op = conf.get(OP_KEY, "smul")
        self._scalar = conf.get_float(SCALAR_KEY, 1.0)

    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        matrix = value.matrix
        reporter.charge_flops(float(value.nnz))
        if self._op == "smul":
            result = matrix * self._scalar
        elif self._op == "spow":
            result = matrix.copy()
            result.data = np.power(result.data, self._scalar)
        elif self._op == "abs":
            result = abs(matrix)
        else:
            raise ValueError(f"unknown scalar op {self._op!r}")
        output.collect(key.clone(), MatrixBlockWritable(sparse.csc_matrix(result)))


class BlockSumAllMapper(Mapper, ImmutableOutput):
    def map(self, key, value: MatrixBlockWritable, output: OutputCollector,
            reporter: Reporter) -> None:
        reporter.charge_flops(float(value.nnz))
        output.collect(IntWritable(0), DoubleWritable(float(value.matrix.sum())))


class DoubleAddReducer(Reducer, ImmutableOutput):
    def reduce(self, key, values, output: OutputCollector, reporter: Reporter) -> None:
        total = 0.0
        for value in values:
            total += value.get()
        output.collect(key, DoubleWritable(total))


class RowSumsBlockMapper(Mapper, ImmutableOutput):
    def map(self, key: BlockIndexWritable, value: MatrixBlockWritable,
            output: OutputCollector, reporter: Reporter) -> None:
        sums = sparse.csc_matrix(np.asarray(value.matrix.sum(axis=1)))
        reporter.charge_flops(float(value.nnz))
        output.collect(BlockIndexWritable(key.row, 0), MatrixBlockWritable(sums))
