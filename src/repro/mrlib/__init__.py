"""A hand-optimized Map Reduce matrix library (paper Section 7).

"In future work we plan to develop libraries of Map Reduce code, e.g.
libraries for sparse matrix vector computations, that can run on the HMR
engine (scaling to the size of cluster disks), while delivering very good
performance for jobs that can fit in the size of cluster memory."

This package is that library.  Unlike the compiler-generated jobs of
:mod:`repro.sysml` (which reproduce SystemML's handicaps), every job here
is written the way the paper's own matvec benchmark is written:

* compact CSC blocks (:class:`repro.api.writables.MatrixBlockWritable`);
* every mapper/reducer marked ``ImmutableOutput``;
* row-chunk partitioning throughout, so on M3R the partition-stability
  guarantee keeps row stripes pinned to places and most shuffles local;
* intermediates under the temporary-output convention.

The same jobs run unchanged on the stock Hadoop engine — where they scale
to disk-resident data — which is precisely the portability/performance
trade the paper's future-work paragraph asks for.

Usage::

    from repro.mrlib import MatrixContext

    ctx = MatrixContext(engine, block_size=100)
    A = ctx.from_numpy("/mats/A", a)
    x = ctx.from_numpy("/mats/x", x_column)
    y = (A @ x) * 0.5
    ctx.to_numpy(y)
"""

from repro.mrlib.context import DistributedMatrix, MatrixContext

__all__ = ["MatrixContext", "DistributedMatrix"]
