"""The matrix library's public API: contexts and distributed handles.

:class:`MatrixContext` owns an engine, a blocking factor and a working
directory; :class:`DistributedMatrix` is an immutable handle supporting the
natural operators (``@``, ``+``, ``-``, ``*``, ``.T``) with each operation
lowering to the hand-optimized jobs of :mod:`repro.mrlib.ops`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro.api.conf import JobConf
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.multiple_io import MultipleInputs
from repro.api.writables import BlockIndexWritable, MatrixBlockWritable
from repro.apps.matvec import NUM_ROW_BLOCKS_KEY, RowChunkPartitioner
from repro.engine_common import EngineResult
from repro.mrlib import ops


class DistributedMatrix:
    """An immutable handle to a blocked matrix stored in the engine's world."""

    def __init__(self, context: "MatrixContext", path: str, rows: int, cols: int):
        self._ctx = context
        self.path = path
        self.rows = rows
        self.cols = cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def row_blocks(self) -> int:
        return max(1, math.ceil(self.rows / self._ctx.block_size))

    @property
    def col_blocks(self) -> int:
        return max(1, math.ceil(self.cols / self._ctx.block_size))

    # -- operators -------------------------------------------------------- #

    def __matmul__(self, other: "DistributedMatrix") -> "DistributedMatrix":
        return self._ctx.matmul(self, other)

    def __add__(self, other: "DistributedMatrix") -> "DistributedMatrix":
        return self._ctx.elementwise(self, other, "add")

    def __sub__(self, other: "DistributedMatrix") -> "DistributedMatrix":
        return self._ctx.elementwise(self, other, "sub")

    def __mul__(self, other: Union["DistributedMatrix", float, int]):
        if isinstance(other, DistributedMatrix):
            return self._ctx.elementwise(self, other, "mul")
        return self._ctx.scale(self, float(other))

    def __rmul__(self, other: Union[float, int]) -> "DistributedMatrix":
        return self._ctx.scale(self, float(other))

    def __neg__(self) -> "DistributedMatrix":
        return self._ctx.scale(self, -1.0)

    @property
    def T(self) -> "DistributedMatrix":  # noqa: N802 - numpy convention
        return self._ctx.transpose(self)

    # -- reductions -------------------------------------------------------- #

    def sum(self) -> float:
        return self._ctx.sum(self)

    def norm(self) -> float:
        """The Frobenius norm, computed distributively."""
        squared = self._ctx.elementwise(self, self, "mul")
        return math.sqrt(self._ctx.sum(squared))

    def row_sums(self) -> "DistributedMatrix":
        return self._ctx.row_sums(self)

    def to_numpy(self) -> np.ndarray:
        return self._ctx.to_numpy(self)

    def __repr__(self) -> str:
        return f"DistributedMatrix({self.rows}x{self.cols} @ {self.path})"


class MatrixContext:
    """Factory and executor for distributed matrices over one engine."""

    def __init__(
        self,
        engine,
        block_size: int = 100,
        num_partitions: Optional[int] = None,
        workdir: str = "/mrlib",
    ):
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.engine = engine
        self.block_size = block_size
        self.num_partitions = (
            num_partitions if num_partitions is not None else engine.cluster.num_nodes
        )
        self.workdir = workdir.rstrip("/")
        self.results: List[EngineResult] = []
        self._counter = 0

    @property
    def total_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.results)

    @property
    def jobs_run(self) -> int:
        return len(self.results)

    # -- ingestion ------------------------------------------------------- #

    def from_numpy(self, path: str, array: np.ndarray) -> DistributedMatrix:
        """Block a dense array (or column vector) and write it partitioned
        by row chunk, the library's canonical on-disk layout."""
        array = np.atleast_2d(np.asarray(array, dtype=np.float64))
        if array.shape[0] == 1 and array.shape[1] > 1 and array.ndim == 2:
            pass  # a row vector is legitimate; keep as-is
        return self.from_scipy(path, sparse.csc_matrix(array))

    def from_scipy(self, path: str, matrix: sparse.spmatrix) -> DistributedMatrix:
        matrix = sparse.csc_matrix(matrix)
        rows, cols = matrix.shape
        handle = DistributedMatrix(self, path, rows, cols)
        partitioner = self._partitioner(handle.row_blocks)
        buckets: List[List[Tuple[BlockIndexWritable, MatrixBlockWritable]]] = [
            [] for _ in range(self.num_partitions)
        ]
        for bi in range(handle.row_blocks):
            r0 = bi * self.block_size
            r1 = min(rows, r0 + self.block_size)
            for bj in range(handle.col_blocks):
                c0 = bj * self.block_size
                c1 = min(cols, c0 + self.block_size)
                block = sparse.csc_matrix(matrix[r0:r1, c0:c1])
                if block.nnz == 0:
                    continue
                key = BlockIndexWritable(bi, bj)
                bucket = partitioner.get_partition(key, None, self.num_partitions)
                buckets[bucket].append((key, MatrixBlockWritable(block)))
        for partition, bucket in enumerate(buckets):
            self.engine.filesystem.write_pairs(
                f"{path.rstrip('/')}/part-{partition:05d}", bucket,
                at_node=partition % self.engine.cluster.num_nodes,
            )
        return handle

    def _partitioner(self, num_row_blocks: int) -> RowChunkPartitioner:
        partitioner = RowChunkPartitioner()
        conf = JobConf()
        conf.set_int(NUM_ROW_BLOCKS_KEY, num_row_blocks)
        partitioner.configure(conf)
        return partitioner

    def to_numpy(self, matrix: DistributedMatrix) -> np.ndarray:
        out = np.zeros((matrix.rows, matrix.cols))
        for key, block in self.engine.filesystem.read_kv_pairs(matrix.path):
            r0 = key.row * self.block_size
            c0 = key.col * self.block_size
            dense = np.asarray(block.matrix.todense())
            out[r0 : r0 + dense.shape[0], c0 : c0 + dense.shape[1]] += dense
        return out

    # -- job plumbing ---------------------------------------------------- #

    def _temp_path(self, op_name: str) -> str:
        self._counter += 1
        return f"{self.workdir}/temp-{op_name}-{self._counter}"

    def _submit(self, conf: JobConf) -> EngineResult:
        result = self.engine.run_job(conf)
        self.results.append(result)
        if not result.succeeded:
            raise RuntimeError(
                f"mrlib job {conf.get_job_name()!r} failed: {result.error}"
            )
        return result

    def _base_conf(self, name: str, output: str, row_blocks: int,
                   reducers: Optional[int] = None) -> JobConf:
        conf = JobConf()
        conf.set_job_name(name)
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path(output)
        conf.set_partitioner_class(RowChunkPartitioner)
        conf.set_int(NUM_ROW_BLOCKS_KEY, max(1, row_blocks))
        conf.set_num_reduce_tasks(
            self.num_partitions if reducers is None else reducers
        )
        return conf

    # -- operations ------------------------------------------------------- #

    def matmul(self, a: DistributedMatrix, b: DistributedMatrix) -> DistributedMatrix:
        """``A @ B``: broadcast form when B is a narrow (single block-column)
        operand — the paper's matvec pattern — else the general cross join."""
        if a.cols != b.rows:
            raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
        if b.col_blocks == 1:
            return self._matmul_broadcast(a, b)
        return self._matmul_cross(a, b)

    def _matmul_broadcast(self, a: DistributedMatrix, b: DistributedMatrix):
        partial = self._temp_path("bcastmul")
        conf = self._base_conf("mrlib.matmul.broadcast", partial, a.row_blocks)
        conf.set_int(ops.BCAST_ROW_BLOCKS_KEY, a.row_blocks)
        MultipleInputs.add_input_path(
            conf, a.path, SequenceFileInputFormat, ops.LeftPassMapper
        )
        MultipleInputs.add_input_path(
            conf, b.path, SequenceFileInputFormat, ops.RightBroadcastMapper
        )
        conf.set_reducer_class(ops.BroadcastMultiplyReducer)
        self._submit(conf)

        out = self._temp_path("bcastsum")
        conf = self._base_conf("mrlib.matmul.sum", out, a.row_blocks)
        conf.set_input_paths(partial)
        conf.set_mapper_class(ops.PartialToRowMapper)
        conf.set_reducer_class(ops.BlockAddReducer)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, b.cols)

    def _matmul_cross(self, a: DistributedMatrix, b: DistributedMatrix):
        partial = self._temp_path("crossmul")
        conf = self._base_conf("mrlib.matmul.cross", partial, a.col_blocks)
        conf.set_partitioner_class(ops.JoinKeyPartitioner)
        MultipleInputs.add_input_path(
            conf, a.path, SequenceFileInputFormat, ops.CrossLeftMapper
        )
        MultipleInputs.add_input_path(
            conf, b.path, SequenceFileInputFormat, ops.CrossRightMapper
        )
        conf.set_reducer_class(ops.CrossMultiplyReducer)
        self._submit(conf)

        out = self._temp_path("crosssum")
        conf = self._base_conf("mrlib.matmul.sum", out, a.row_blocks)
        conf.set_input_paths(partial)
        conf.set_mapper_class(ops.BlockPassMapper)
        conf.set_reducer_class(ops.BlockAddReducer)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, b.cols)

    def elementwise(self, a: DistributedMatrix, b: DistributedMatrix, op: str):
        if a.shape != b.shape:
            raise ValueError(f"element-wise shape mismatch: {a.shape} vs {b.shape}")
        out = self._temp_path(f"ew{op}")
        conf = self._base_conf(f"mrlib.elementwise.{op}", out, a.row_blocks)
        conf.set(ops.OP_KEY, op)
        MultipleInputs.add_input_path(
            conf, a.path, SequenceFileInputFormat, ops.TaggingMapperA
        )
        MultipleInputs.add_input_path(
            conf, b.path, SequenceFileInputFormat, ops.TaggingMapperB
        )
        conf.set_reducer_class(ops.ElementwiseCombineReducer)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, a.cols)

    def transpose(self, a: DistributedMatrix) -> DistributedMatrix:
        out = self._temp_path("t")
        conf = self._base_conf("mrlib.transpose", out, a.col_blocks)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.TransposeBlockMapper)
        conf.set_reducer_class(ops.BlockAddReducer)
        self._submit(conf)
        return DistributedMatrix(self, out, a.cols, a.rows)

    def scale(self, a: DistributedMatrix, factor: float) -> DistributedMatrix:
        out = self._temp_path("scale")
        conf = self._base_conf("mrlib.scale", out, a.row_blocks, reducers=0)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.ScalarBlockMapper)
        conf.set(ops.OP_KEY, "smul")
        conf.set_float(ops.SCALAR_KEY, factor)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, a.cols)

    def power(self, a: DistributedMatrix, exponent: float) -> DistributedMatrix:
        """Element-wise power over the sparse support."""
        out = self._temp_path("pow")
        conf = self._base_conf("mrlib.power", out, a.row_blocks, reducers=0)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.ScalarBlockMapper)
        conf.set(ops.OP_KEY, "spow")
        conf.set_float(ops.SCALAR_KEY, exponent)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, a.cols)

    def sum(self, a: DistributedMatrix) -> float:
        out = self._temp_path("sum")
        conf = self._base_conf("mrlib.sum", out, a.row_blocks, reducers=1)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.BlockSumAllMapper)
        conf.set_combiner_class(ops.DoubleAddReducer)
        conf.set_reducer_class(ops.DoubleAddReducer)
        # the single global-sum partition is keyed by IntWritable(0)
        from repro.api.partitioner import HashPartitioner

        conf.set_partitioner_class(HashPartitioner)
        self._submit(conf)
        pairs = self.engine.filesystem.read_kv_pairs(out)
        return pairs[0][1].get() if pairs else 0.0

    def row_sums(self, a: DistributedMatrix) -> DistributedMatrix:
        out = self._temp_path("rowsums")
        conf = self._base_conf("mrlib.rowsums", out, a.row_blocks)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.RowSumsBlockMapper)
        conf.set_reducer_class(ops.BlockAddReducer)
        self._submit(conf)
        return DistributedMatrix(self, out, a.rows, 1)

    def persist(self, a: DistributedMatrix, path: str) -> DistributedMatrix:
        """Copy a handle to a durable (non-temporary) path."""
        conf = self._base_conf("mrlib.persist", path, a.row_blocks, reducers=0)
        conf.set_input_paths(a.path)
        conf.set_mapper_class(ops.ScalarBlockMapper)
        conf.set(ops.OP_KEY, "smul")
        conf.set_float(ops.SCALAR_KEY, 1.0)
        self._submit(conf)
        return DistributedMatrix(self, path, a.rows, a.cols)
