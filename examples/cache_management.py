#!/usr/bin/env python3
"""Explicit cache interaction: the Section 4.2 extensions, end to end.

Demonstrates, on a live M3R engine:

* temporary outputs (never flushed, still readable by the next job);
* transparent cache invalidation when files are deleted through the normal
  FileSystem interface;
* ``get_raw_cache()`` — evicting from the cache *without* touching the
  underlying filesystem;
* ``get_cache_record_reader`` — querying a cached key/value sequence;
* the memory accounting a cache-conscious job sequence relies on.

Run:  python examples/cache_management.py
"""

from repro import m3r_engine
from repro.apps.microbenchmark import generate_input, microbenchmark_job
from repro.fs import SimulatedHDFS
from repro.sim import Cluster

NODES = 4


def main() -> None:
    fs = SimulatedHDFS(Cluster(NODES), block_size=1 << 20, replication=1)
    engine = m3r_engine(filesystem=fs)
    m3rfs = engine.filesystem  # the CacheFS-capable view jobs see

    generate_input(m3rfs, "/data/in", num_pairs=400, value_bytes=512,
                   num_partitions=NODES)

    # Job 1: output marked temporary — note basename starts with "temp".
    job1 = microbenchmark_job("/data/in", "/work/temp-step1", 0, NODES)
    r1 = engine.run_job(job1)
    print(f"job1 (temp output): {r1.simulated_seconds:.3f}s, "
          f"temp outputs skipped: {r1.metrics.get('temp_outputs_skipped')}")
    # Never flushed — yet visible, because the cache backs the namespace.
    assert not fs.exists("/work/temp-step1/part-00000"), "must not hit disk"
    assert m3rfs.exists("/work/temp-step1/part-00000"), "must be readable"

    # The previous input will never be read again: delete it.  The delete
    # goes to BOTH the cache and the filesystem (Section 4.2.3).
    cached_before = engine.cache.total_bytes()
    m3rfs.delete("/data/in", recursive=True)
    print(f"cache bytes {cached_before} -> {engine.cache.total_bytes()} "
          f"after deleting the consumed input")

    # Job 2 consumes the temporary output straight from memory.
    job2 = microbenchmark_job("/work/temp-step1", "/work/final", 0, NODES)
    r2 = engine.run_job(job2)
    print(f"job2 (cache-fed):  {r2.simulated_seconds:.3f}s, "
          f"cache hits: {r2.metrics.get('cache_hits')}")

    # Query the cache for the final output (Section 4.2.4).
    reader = m3rfs.get_cache_record_reader("/work/final/part-00000")
    first = next(reader)
    print(f"cached record reader first pair: key={first[0]}, "
          f"value=<{first[1].get_length()} bytes>")

    # Evict ONLY from the cache: the flushed file must survive on disk.
    raw_cache = m3rfs.get_raw_cache()
    raw_cache.delete("/work/final", recursive=True)
    assert fs.exists("/work/final/part-00000"), "raw-cache delete hit the fs!"
    assert m3rfs.read_kv_pairs("/work/final"), "file still readable from disk"
    print("raw-cache eviction left the on-disk copy intact")

    per_place = [engine.cache.bytes_at_place(p) for p in range(NODES)]
    print(f"cache bytes per place after the sequence: {per_place}")


if __name__ == "__main__":
    main()
