#!/usr/bin/env python3
"""Compiler-generated MapReduce on M3R: the SystemML story (Section 6.4).

An R-like script — here, conjugate-gradient linear regression — is compiled
by the mini-SystemML layer into dozens of ordinary HMR jobs.  The script is
*unchanged* between engines; only the engine underneath differs.  Because
the compiler-generated code knows nothing of ImmutableOutput or partition
stability, M3R's advantage is smaller than on hand-tuned code — the paper
makes exactly this observation — yet it remains large, since tiny
generated jobs are dominated by the stock engine's fixed costs.

Run:  python examples/sysml_analytics.py
"""

import numpy as np

from repro import hadoop_engine, m3r_engine
from repro.fs import SimulatedHDFS
from repro.sim import Cluster
from repro.sysml import read_matrix_as_dense, run_script
from repro.sysml import scripts as dml

POINTS = 400
VARIABLES = 120
BLOCK = 60
ITERATIONS = 3
NODES = 8


def main() -> None:
    outcomes = {}
    for engine_name in ("hadoop", "m3r"):
        fs = SimulatedHDFS(Cluster(NODES), block_size=1 << 22, replication=1)
        engine = (
            hadoop_engine(filesystem=fs)
            if engine_name == "hadoop"
            else m3r_engine(filesystem=fs)
        )
        inputs = dml.linreg_inputs(
            engine.filesystem, POINTS, VARIABLES, BLOCK,
            sparsity=0.05, num_partitions=NODES,
        )
        script = dml.with_iterations(dml.LINREG_SCRIPT, ITERATIONS)
        env, runtime = run_script(
            script, engine, inputs=inputs, block_size=BLOCK, num_reducers=NODES
        )
        w = read_matrix_as_dense(engine.filesystem, env["w"])
        outcomes[engine_name] = (runtime.total_seconds, runtime.jobs_run, w)
        print(f"{engine_name:>6}: {runtime.total_seconds:8.2f} simulated s "
              f"across {runtime.jobs_run} generated jobs")

    w_hadoop = outcomes["hadoop"][2]
    w_m3r = outcomes["m3r"][2]
    assert np.allclose(w_hadoop, w_m3r, atol=1e-9), "models differ between engines"

    # Show the model is actually useful: residual shrank versus w = 0.
    fs = SimulatedHDFS(Cluster(NODES), block_size=1 << 22)
    engine = m3r_engine(filesystem=fs)
    inputs = dml.linreg_inputs(engine.filesystem, POINTS, VARIABLES, BLOCK,
                               sparsity=0.05, num_partitions=NODES)
    X = read_matrix_as_dense(engine.filesystem, inputs["X"])
    y = read_matrix_as_dense(engine.filesystem, inputs["y"])
    base = np.linalg.norm(X.T @ y)
    fitted = np.linalg.norm(X.T @ (X @ w_m3r) - X.T @ y)
    print(f"\nnormal-equation residual: {base:.4g} -> {fitted:.4g} "
          f"after {ITERATIONS} CG iterations")
    print(f"M3R speedup on compiler-generated code: "
          f"{outcomes['hadoop'][0] / outcomes['m3r'][0]:.1f}x")


if __name__ == "__main__":
    main()
