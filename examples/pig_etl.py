#!/usr/bin/env python3
"""A Pig Latin ETL pipeline on both engines (the BigSheets story).

Paper Section 5.3 ran all of BigSheets — "a large Hadoop based system that
generates assorted jobs (many of them Pig jobs)" — on M3R unmodified, by
swapping the server under the JobTracker port.  This example runs a
multi-statement Pig script whose every intermediate is temporary: on M3R
the whole pipeline (12 jobs) runs out of the cache; on the Hadoop engine
each statement writes and re-reads HDFS.

Run:  python examples/pig_etl.py
"""

import random

from repro import hadoop_engine, m3r_engine
from repro.fs import SimulatedHDFS
from repro.pig import PigRunner
from repro.sim import Cluster

SCRIPT = """
-- access-log sessionization & per-page stats
logs    = LOAD '/data/access.log' AS (user, page, ms, status);
ok      = FILTER logs BY status == 200 AND ms < 5000;
slim    = FOREACH ok GENERATE user, page, ms / 1000 AS sec;
bypage  = GROUP slim BY page;
stats   = FOREACH bypage GENERATE group, COUNT(slim) AS hits,
                                  AVG(slim.sec) AS avg_sec, MAX(slim.sec) AS worst;
popular = ORDER stats BY hits DESC;
top     = LIMIT popular 3;
STORE stats INTO '/out/page_stats';
STORE top INTO '/out/top_pages';
"""


def make_log(lines: int, seed: int = 3) -> str:
    rng = random.Random(seed)
    pages = ["/home", "/search", "/cart", "/checkout", "/help"]
    rows = []
    for i in range(lines):
        user = f"u{rng.randrange(50):03d}"
        page = rng.choice(pages)
        ms = rng.randrange(10, 9000)
        status = 200 if rng.random() < 0.9 else rng.choice([404, 500])
        rows.append(f"{user}\t{page}\t{ms}\t{status}")
    return "\n".join(rows) + "\n"


def main() -> None:
    log_text = make_log(lines=500)
    outputs = {}
    for engine_name in ("hadoop", "m3r"):
        fs = SimulatedHDFS(Cluster(8), block_size=1 << 20, replication=1)
        engine = (
            hadoop_engine(filesystem=fs)
            if engine_name == "hadoop"
            else m3r_engine(filesystem=fs)
        )
        engine.filesystem.write_text("/data/access.log", log_text)
        runner = PigRunner(engine, num_reducers=8)
        runner.run(SCRIPT)
        outputs[engine_name] = {
            "stats": sorted(runner.read_output("/out/page_stats")),
            "top": runner.read_output("/out/top_pages"),
            "seconds": runner.total_seconds,
            "jobs": runner.jobs_run,
        }
        print(f"{engine_name:>6}: {runner.total_seconds:8.2f} simulated s "
              f"across {runner.jobs_run} Pig-generated jobs")

    assert outputs["hadoop"]["stats"] == outputs["m3r"]["stats"]
    print("\nidentical outputs; top pages by hits:")
    for row in outputs["m3r"]["top"]:
        page, hits, avg_sec, worst = row.split("\t")
        print(f"  {page:<12} hits={hits:<5} avg={float(avg_sec):.2f}s "
              f"worst={float(worst):.2f}s")
    print(f"M3R speedup on the pipeline: "
          f"{outputs['hadoop']['seconds'] / outputs['m3r']['seconds']:.1f}x")


if __name__ == "__main__":
    main()
