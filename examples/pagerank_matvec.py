#!/usr/bin/env python3
"""Iterated sparse matrix × dense vector multiply — the PageRank core.

The paper's flagship workload (Section 6.2): a row-block-partitioned sparse
matrix G multiplied against a broadcast dense vector V, two HMR jobs per
iteration, everything marked ImmutableOutput, partial products marked
temporary.  On M3R, partition stability keeps each row stripe of G pinned
to one place for the whole sequence, so after the first load the only
communication left is the inherent vector broadcast — the second job of
every iteration shuffles 100% locally.

Run:  python examples/pagerank_matvec.py
"""

import numpy as np

from repro import hadoop_engine, m3r_engine
from repro.apps import matvec
from repro.fs import SimulatedHDFS
from repro.sim import Cluster

ROWS = 800
BLOCK = 100
NODES = 8
ITERATIONS = 3


def run_engine(engine_name: str):
    cluster = Cluster(NODES)
    fs = SimulatedHDFS(cluster, block_size=1 << 22, replication=1)
    engine = (
        hadoop_engine(filesystem=fs)
        if engine_name == "hadoop"
        else m3r_engine(filesystem=fs)
    )

    num_row_blocks = (ROWS + BLOCK - 1) // BLOCK
    g_pairs = matvec.generate_blocked_matrix(ROWS, BLOCK, sparsity=0.01)
    v_pairs = matvec.generate_blocked_vector(ROWS, BLOCK)
    matvec.write_partitioned(engine.filesystem, "/G", g_pairs, num_row_blocks, NODES)
    matvec.write_partitioned(engine.filesystem, "/V0", v_pairs, num_row_blocks, NODES)

    if engine_name == "m3r":
        # Paper methodology: pre-populate the cache so the amortized initial
        # load is not measured (Section 6.2).
        engine.warm_cache_from("/G")
        engine.warm_cache_from("/V0")

    total = 0.0
    local_records = remote_records = 0
    current = "/V0"
    for iteration in range(ITERATIONS):
        nxt = f"/V{iteration + 1}"
        sequence = matvec.iteration_jobs(
            "/G", current, nxt, "/scratch", iteration, num_row_blocks, NODES
        )
        for result in sequence.run_all(engine):
            total += result.simulated_seconds
            local_records += result.metrics.get("shuffle_local_records")
            remote_records += result.metrics.get("shuffle_remote_records")
        current = nxt

    final = {
        key.row: value.values
        for key, value in engine.filesystem.read_kv_pairs(current)
    }
    checksum = float(sum(v.sum() for v in final.values()))
    return total, local_records, remote_records, checksum


def main() -> None:
    results = {}
    for engine_name in ("hadoop", "m3r"):
        seconds, local, remote, checksum = run_engine(engine_name)
        results[engine_name] = (seconds, checksum)
        shuffle_note = ""
        if local or remote:
            shuffle_note = f" (shuffle records: {local} local / {remote} remote)"
        print(f"{engine_name:>6}: {seconds:8.2f} simulated s, "
              f"checksum={checksum:+.6e}{shuffle_note}")

    assert abs(results["hadoop"][1] - results["m3r"][1]) < 1e-6, "results differ"
    print(f"\nidentical results; M3R speedup: "
          f"{results['hadoop'][0] / results['m3r'][0]:.1f}x over {ITERATIONS} iterations")


if __name__ == "__main__":
    main()
