#!/usr/bin/env python3
"""The BigSheets deployment story (paper Section 5.3), end to end.

BigSheets is "a large Hadoop based system that generates assorted jobs
(many of them Pig jobs)"; the paper ran it unmodified by stopping the
Hadoop server and starting the M3R server on the same port.  This example
replays that operational story with the pieces this repository provides:

1. a mixed workload (Pig ETL + Jaql analytics + a raw wordcount) is
   submitted through named **job queues** against the Hadoop server;
2. the Hadoop server is stopped and the **M3R server binds the same
   port** — clients notice nothing;
3. the same workload re-runs, **job-end notifications** fire to an ops
   callback, and an **async progress tracker** follows the jobs live;
4. outputs are verified identical across the two deployments;
5. the always-on engine goes **multi-tenant**: the Pig ETL team, the Jaql
   analytics team and an ad-hoc wordcount user each get their own
   namespace on one :class:`~repro.service.JobService` and submit
   *concurrently* from their own threads — and every tenant's outputs
   are byte-identical to the solo runs above.

Run:  python examples/bigsheets_server.py
"""

import json
import threading

from repro import hadoop_engine, m3r_engine
from repro.api.conf import JOB_END_NOTIFICATION_URL_KEY
from repro.apps.wordcount import generate_text, wordcount_job
from repro.core import JobEndNotifier, JobQueueManager, M3RServer, ProgressTracker
from repro.fs import SimulatedHDFS
from repro.jaql import JaqlRunner
from repro.pig import PigRunner
from repro.service import JobService
from repro.sim import Cluster

PORT = 19900
NODES = 8

PIG_SCRIPT = """
logs = LOAD '/data/events.txt' AS (user, action, amount);
buys = FILTER logs BY action == 'buy';
byuser = GROUP buys BY user;
spend = FOREACH byuser GENERATE group, COUNT(buys) AS n, SUM(buys.amount) AS total;
ranked = ORDER spend BY total DESC;
STORE ranked INTO '/out/spend';
"""

JAQL_PIPELINE = """
read("/data/events.json")
  -> filter $.action == 'view'
  -> group by $.user into { user: key, views: count($) }
  -> sort by $.views desc
  -> write("/out/views")
"""


def stage_data(engine) -> None:
    rows = [
        ("ann", "view", 0), ("ann", "buy", 30), ("bob", "view", 0),
        ("ann", "view", 0), ("bob", "buy", 12), ("cat", "view", 0),
        ("bob", "buy", 5), ("ann", "buy", 8), ("cat", "view", 0),
    ]
    engine.filesystem.write_text(
        "/data/events.txt",
        "\n".join(f"{u}\t{a}\t{x}" for u, a, x in rows) + "\n",
    )
    engine.filesystem.write_text(
        "/data/events.json",
        "\n".join(json.dumps({"user": u, "action": a, "amount": x})
                  for u, a, x in rows) + "\n",
    )
    engine.filesystem.write_text("/data/notes.txt", generate_text(200))


def run_workload(label: str) -> dict:
    engine = M3RServer._registry[PORT]  # what a remote client resolves
    stage_data(engine)

    notifier = JobEndNotifier()
    notified = []
    notifier.register("ops://", lambda url, result: notified.append(url))
    tracker = ProgressTracker().attach(engine)

    queues = JobQueueManager(engine, queues=["default", "etl"], notifier=notifier)
    wc = wordcount_job("/data/notes.txt", "/out/words", NODES)
    wc.set(JOB_END_NOTIFICATION_URL_KEY, "ops://done?id=$jobId&s=$jobStatus")
    queues.submit(wc)
    queues.drain()

    pig = PigRunner(engine, num_reducers=NODES)
    pig.run(PIG_SCRIPT)
    jaql = JaqlRunner(engine, num_reducers=NODES)
    jaql.run(JAQL_PIPELINE)

    total = (queues.stats().simulated_seconds + pig.total_seconds
             + jaql.total_seconds)
    jobs = queues.stats().succeeded + pig.jobs_run + jaql.jobs_run
    print(f"  [{label}] {jobs} jobs, {total:8.2f} simulated s, "
          f"notifications: {notified}")
    wc_phases = tracker.phases_seen(wc.get_job_name())
    print(f"  [{label}] live progress for the wordcount: "
          f"{' -> '.join(wc_phases)}")
    return {
        "spend": sorted(pig.read_output("/out/spend")),
        "views": jaql.read_output("/out/views"),
        "words": sorted(
            (str(k), v.get())
            for k, v in engine.filesystem.read_kv_pairs("/out/words")
        ),
        "seconds": total,
    }


def run_multitenant() -> dict:
    """Phase 3: three tenants share one always-on M3R engine.

    Each tenant registers its own output namespace (the runners' temp
    workdirs included, so intermediate spills are charged to the right
    tenant) and submits from its own thread while the service's worker
    drains the queues — asynchronous admission, serial deterministic
    execution.
    """
    engine = m3r_engine(filesystem=SimulatedHDFS(Cluster(NODES),
                                                 block_size=256 * 1024,
                                                 replication=1))
    stage_data(engine)
    outputs: dict = {}

    with JobService(engine) as service:
        pig_client = service.register_tenant(
            "pig-etl", weight=2, prefixes=("/out/spend", "/pig"))
        jaql_client = service.register_tenant(
            "jaql-bi", prefixes=("/out/views", "/jaql"))
        adhoc_client = service.register_tenant(
            "adhoc", prefixes=("/out/words",))

        def pig_team() -> None:
            runner = PigRunner(pig_client, num_reducers=NODES)
            runner.run(PIG_SCRIPT)
            outputs["spend"] = sorted(runner.read_output("/out/spend"))

        def jaql_team() -> None:
            runner = JaqlRunner(jaql_client, num_reducers=NODES)
            runner.run(JAQL_PIPELINE)
            outputs["views"] = runner.read_output("/out/views")

        def adhoc_user() -> None:
            adhoc_client.run_job(
                wordcount_job("/data/notes.txt", "/out/words", NODES))
            outputs["words"] = sorted(
                (str(k), v.get())
                for k, v in engine.filesystem.read_kv_pairs("/out/words")
            )

        threads = [threading.Thread(target=fn)
                   for fn in (pig_team, jaql_team, adhoc_user)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = 0.0
        for name in service.tenant_names():
            stats = service.tenant_stats(name)
            total += stats["simulated_seconds"]
            print(f"  [service] {name:>8}: {stats['jobs_run']} jobs,"
                  f" {stats['simulated_seconds']:8.2f} simulated s,"
                  f" cache {stats.get('cache', {}).get('occupancy_bytes', 0):,} B")
    outputs["seconds"] = total
    engine.shutdown()
    return outputs


def main() -> None:
    print("phase 1: stock Hadoop server on the JobTracker port")
    hadoop = hadoop_engine(filesystem=SimulatedHDFS(Cluster(NODES),
                                                    block_size=256 * 1024,
                                                    replication=1))
    with M3RServer(hadoop, port=PORT):
        hadoop_outputs = run_workload("hadoop")

    print("phase 2: swap in the M3R server on the same port (unmodified clients)")
    m3r = m3r_engine(filesystem=SimulatedHDFS(Cluster(NODES),
                                              block_size=256 * 1024,
                                              replication=1))
    with M3RServer(m3r, port=PORT):
        m3r_outputs = run_workload("m3r")

    for key in ("spend", "views", "words"):
        assert hadoop_outputs[key] == m3r_outputs[key], key
    print(f"\noutputs identical across deployments; "
          f"speedup after the swap: "
          f"{hadoop_outputs['seconds'] / m3r_outputs['seconds']:.1f}x")
    print("top spender:", hadoop_outputs["spend"][0] if hadoop_outputs["spend"] else "-")

    print("\nphase 3: three tenants share the always-on M3R engine")
    service_outputs = run_multitenant()
    for key in ("spend", "views", "words"):
        assert service_outputs[key] == m3r_outputs[key], key
    print("every tenant's outputs byte-identical to its solo run")


if __name__ == "__main__":
    main()
