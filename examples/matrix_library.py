#!/usr/bin/env python3
"""The paper's future work, running: a hand-optimized MR matrix library
on a resilient, elastic M3R.

Section 7 of the paper sketches three extensions; this example exercises
all of them together:

* a **matrix library** ("libraries for sparse matrix vector computations")
  whose jobs are ImmutableOutput + row-chunk partitioned, so they run
  unchanged on the stock engine (scaling to disk) while exploiting every
  M3R mechanism in memory — here it runs conjugate gradient on the normal
  equations;
* **resilience** — a node is killed midway through the iterations and the
  engine recovers from buddy replicas instead of dying;
* **elasticity** — the place family is then grown, cache state migrates,
  and the solve continues on the larger membership.

Run:  python examples/matrix_library.py
"""

import numpy as np

from repro.core import ResilientM3REngine
from repro.fs import SimulatedHDFS
from repro.mrlib import MatrixContext
from repro.sim import Cluster, paper_cluster_cost_model

NODES = 6
POINTS, FEATURES = 24, 12
BLOCK = 4


def main() -> None:
    cluster = Cluster(NODES)
    fs = SimulatedHDFS(cluster, block_size=1 << 20, replication=1)
    engine = ResilientM3REngine(
        cluster=cluster, filesystem=fs,
        cost_model=paper_cluster_cost_model(), num_places=4,
    )
    ctx = MatrixContext(engine, block_size=BLOCK, num_partitions=4)

    rng = np.random.default_rng(8)
    x_data = rng.standard_normal((POINTS, FEATURES))
    true_w = rng.standard_normal((FEATURES, 1))
    y_data = x_data @ true_w

    X = ctx.from_numpy("/data/X", x_data)
    y = ctx.from_numpy("/data/y", y_data)

    # Conjugate gradient on t(X) X w = t(X) y, library-operator style.
    b = X.T @ y
    r = -1.0 * b
    p = -1.0 * r
    w = 0.0 * p
    norm_r2 = (r * r).sum()
    for iteration in range(FEATURES):
        if iteration == 4:
            engine.fail_nodes.add(1)  # a blade dies mid-solve
        if iteration == 8:
            report = engine.resize(6)  # two fresh places join
            print(f"  [resize] migrated {report.promoted_entries} entries "
                  f"({report.promoted_bytes} bytes) in "
                  f"{report.simulated_seconds:.3f} simulated s")
        q = X.T @ (X @ p)
        alpha = norm_r2 / (p * q).sum()
        w = w + alpha * p
        r = r + alpha * q
        new_norm_r2 = (r * r).sum()
        beta = new_norm_r2 / norm_r2
        p = -1.0 * r + beta * p
        norm_r2 = new_norm_r2
        print(f"  iter {iteration}: residual^2 = {norm_r2:.3e}"
              + ("   <- node 1 died this iteration" if iteration == 4 else ""))

    solved = w.to_numpy()
    error = np.linalg.norm(solved - true_w) / np.linalg.norm(true_w)
    recoveries = len([r for r in engine.recovery_log if r.dead_places])
    print(f"\nrelative model error: {error:.2e} "
          f"(after {ctx.jobs_run} jobs, {ctx.total_seconds:.2f} simulated s, "
          f"{recoveries} recovery episode)")
    assert error < 1e-6, "CG failed to converge"
    promoted = sum(r.promoted_entries for r in engine.recovery_log)
    print(f"cache entries promoted from replicas across episodes: {promoted}")


if __name__ == "__main__":
    main()
