#!/usr/bin/env python3
"""The resilience trade-off, demonstrated.

M3R's design point (paper Section 1): "No resilience: the engine will fail
if any node goes down — it does not recover from node failure."  The stock
Hadoop engine, by contrast, reschedules the dead node's tasks and finishes
the job, at a time cost.  This example kills one node under each engine
and shows both behaviours, plus integrated mode's per-job escape hatch
(``m3r.force.hadoop.engine``, Section 5.3).

Run:  python examples/failure_semantics.py
"""

from repro import hadoop_engine, m3r_engine
from repro.apps.wordcount import generate_text, wordcount_job
from repro.api.extensions import FORCE_HADOOP_ENGINE_KEY
from repro.core import IntegratedJobClient
from repro.engine_common import JobFailedError
from repro.fs import SimulatedHDFS
from repro.sim import Cluster

NODES = 8


def fresh(engine_name: str):
    fs = SimulatedHDFS(Cluster(NODES), block_size=64 * 1024)
    engine = (
        hadoop_engine(filesystem=fs)
        if engine_name == "hadoop"
        else m3r_engine(filesystem=fs)
    )
    engine.filesystem.write_text("/corpus/in.txt", generate_text(800))
    return engine


def main() -> None:
    # --- healthy baseline -------------------------------------------------- #
    baseline = {}
    for engine_name in ("hadoop", "m3r"):
        engine = fresh(engine_name)
        result = engine.run_job(wordcount_job("/corpus/in.txt", "/out", 8))
        baseline[engine_name] = result.simulated_seconds
        print(f"{engine_name:>6} healthy: {result.simulated_seconds:7.2f}s")

    # --- kill node 3 -------------------------------------------------------- #
    engine = fresh("hadoop")
    engine.fail_nodes.add(3)
    result = engine.run_job(wordcount_job("/corpus/in.txt", "/out", 8))
    assert result.succeeded
    print(f"hadoop with node 3 dead: {result.simulated_seconds:7.2f}s "
          f"(+{result.simulated_seconds - baseline['hadoop']:.2f}s, "
          f"{result.metrics.get('map_task_failovers')} map failovers, "
          f"{result.metrics.get('reduce_task_failovers')} reduce failovers)")

    engine = fresh("m3r")
    engine.fail_nodes.add(3)
    try:
        engine.run_job(wordcount_job("/corpus/in.txt", "/out", 8))
        raise AssertionError("M3R must not survive a node failure")
    except JobFailedError as exc:
        print(f"m3r with node 3 dead: JobFailedError — {exc}")

    # --- integrated mode escape hatch ----------------------------------------- #
    fs = SimulatedHDFS(Cluster(NODES), block_size=64 * 1024)
    m3r = m3r_engine(filesystem=fs)
    hmr = hadoop_engine(filesystem=fs)
    m3r.filesystem.write_text("/corpus/in.txt", generate_text(800))
    client = IntegratedJobClient(m3r, hadoop=hmr)

    fast = client.submit_job(wordcount_job("/corpus/in.txt", "/out/fast", 8))
    pinned = wordcount_job("/corpus/in.txt", "/out/pinned", 8)
    pinned.set_boolean(FORCE_HADOOP_ENGINE_KEY, True)
    slow = client.submit_job(pinned)
    print(f"\nintegrated mode: default -> {fast.engine} ({fast.simulated_seconds:.2f}s), "
          f"opted-out job -> {slow.engine} ({slow.simulated_seconds:.2f}s)")


if __name__ == "__main__":
    main()
