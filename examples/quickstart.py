#!/usr/bin/env python3
"""Quickstart: run one Hadoop job on both engines and compare.

The same WordCount job class — written purely against the Hadoop API, plus
the one-line ``ImmutableOutput`` marker — runs unchanged on the stock
Hadoop engine simulator and on M3R.  Outputs are identical; simulated time
is not, because M3R skips job submission staging, per-task JVM start-up,
heartbeat scheduling, and the disk-based shuffle.

Run:  python examples/quickstart.py
"""

from repro import hadoop_engine, m3r_engine
from repro.apps.wordcount import generate_text, wordcount_job
from repro.fs import SimulatedHDFS
from repro.sim import Cluster


def main() -> None:
    text = generate_text(num_lines=2000, words_per_line=12)

    outputs = {}
    times = {}
    for engine_name in ("hadoop", "m3r"):
        cluster = Cluster(num_nodes=8)
        fs = SimulatedHDFS(cluster, block_size=64 * 1024)
        engine = (
            hadoop_engine(filesystem=fs)
            if engine_name == "hadoop"
            else m3r_engine(filesystem=fs)
        )
        engine.filesystem.write_text("/corpus/input.txt", text)

        job = wordcount_job("/corpus/input.txt", "/out/counts", num_reducers=8)
        result = engine.run_job(job)
        assert result.succeeded, result.error

        counts = {
            str(word): count.get()
            for word, count in engine.filesystem.read_kv_pairs("/out/counts")
        }
        outputs[engine_name] = counts
        times[engine_name] = result.simulated_seconds
        print(f"{engine_name:>6}: {result.simulated_seconds:8.2f} simulated s, "
              f"{len(counts)} distinct words")

    assert outputs["hadoop"] == outputs["m3r"], "engines must agree on output"
    speedup = times["hadoop"] / times["m3r"]
    print(f"\nidentical outputs; M3R speedup on this job: {speedup:.1f}x")
    top = sorted(outputs["m3r"].items(), key=lambda kv: -kv[1])[:5]
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))


if __name__ == "__main__":
    main()
