"""Engine-shared machinery: collectors, readers, record policies."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.counters import Counters, TaskCounter
from repro.api.formats import SequenceFileOutputFormat
from repro.api.job import JobSpec
from repro.api.mapred import Reporter
from repro.api.partitioner import HashPartitioner, Partitioner
from repro.api.writables import IntWritable, Text
from repro.apps.wordcount import SumReducer
from repro.engine_common import (
    CollectorSink,
    CountingReader,
    EngineResult,
    MaterializedReader,
    PartitionBuffer,
    WriterCollector,
    pair_bytes,
    pairs_bytes,
    run_combiner_if_any,
)
from repro.sim.metrics import Metrics


PAIRS = [(IntWritable(i), Text(f"value-{i}")) for i in range(6)]


class TestByteHelpers:
    def test_pair_bytes_matches_wire_sizes(self):
        key, value = IntWritable(1), Text("abc")
        measured = pair_bytes(key, value)
        assert measured >= key.serialized_size() + value.serialized_size()

    def test_pairs_bytes_sums(self):
        assert pairs_bytes(PAIRS) == sum(pair_bytes(k, v) for k, v in PAIRS)
        assert pairs_bytes([]) == 0


class TestReaders:
    def test_counting_reader_counts(self):
        counters = Counters()
        reader = CountingReader(MaterializedReader(PAIRS), counters)
        consumed = list(iter(reader.next_pair, None))
        assert len(consumed) == 6
        assert reader.records == 6
        assert counters.value(TaskCounter.MAP_INPUT_RECORDS) == 6

    def test_materialized_reader_alias_mode(self):
        reader = MaterializedReader(PAIRS, clone=False)
        key, value = reader.next_pair()
        assert value is PAIRS[0][1]

    def test_materialized_reader_clone_mode(self):
        reader = MaterializedReader(PAIRS, clone=True)
        key, value = reader.next_pair()
        assert value == PAIRS[0][1] and value is not PAIRS[0][1]
        value.set("mutated")
        assert PAIRS[0][1].to_string() == "value-0"

    def test_progress(self):
        reader = MaterializedReader(PAIRS[:2])
        assert reader.get_progress() == 0.0
        reader.next_pair()
        assert reader.get_progress() == 0.5
        assert MaterializedReader([]).get_progress() == 1.0


class TestCollectorSink:
    def test_partitioning(self):
        sink = CollectorSink(3, HashPartitioner(), Counters())
        for key, value in PAIRS:
            sink.collect(key, value)
        assert sum(len(b.pairs) for b in sink.partitions) == 6
        assert sink.records == 6
        assert sink.bytes == pairs_bytes(PAIRS)

    def test_serialize_policy_snapshots(self):
        sink = CollectorSink(1, None, Counters(), record_policy="serialize")
        reused = Text("before")
        sink.collect(IntWritable(1), reused)
        reused.set("after")
        assert sink.partitions[0].pairs[0][1].to_string() == "before"
        assert sink.copied_records == 1

    def test_alias_policy_keeps_references(self):
        sink = CollectorSink(1, None, Counters(), record_policy="alias")
        value = Text("shared")
        sink.collect(IntWritable(1), value)
        assert sink.partitions[0].pairs[0][1] is value
        assert sink.copied_records == 0

    def test_counters_updated(self):
        counters = Counters()
        sink = CollectorSink(1, None, counters)
        sink.collect(IntWritable(1), Text("x"))
        assert counters.value(TaskCounter.MAP_OUTPUT_RECORDS) == 1
        assert counters.value(TaskCounter.MAP_OUTPUT_BYTES) > 0

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            CollectorSink(1, None, Counters(), record_policy="weird")
        with pytest.raises(ValueError):
            CollectorSink(0, None, Counters())

    def test_out_of_range_partitioner_detected(self):
        class Broken(Partitioner):
            def get_partition(self, key, value, n):
                return n + 5

        sink = CollectorSink(2, Broken(), Counters())
        with pytest.raises(ValueError):
            sink.collect(IntWritable(1), Text("x"))


class TestWriterCollector:
    class _Writer:
        def __init__(self):
            self.pairs = []

        def write(self, key, value):
            self.pairs.append((key, value))

    def test_writes_through_with_policy(self):
        writer = self._Writer()
        counters = Counters()
        sink = WriterCollector(writer, counters, record_policy="serialize")
        reused = Text("v")
        sink.collect(IntWritable(1), reused)
        reused.set("changed")
        assert writer.pairs[0][1].to_string() == "v"
        assert counters.value(TaskCounter.REDUCE_OUTPUT_RECORDS) == 1

    def test_on_write_hook(self):
        seen = []
        sink = WriterCollector(
            self._Writer(), Counters(), record_policy="alias",
            on_write=lambda k, v, n: seen.append((k, v, n)),
        )
        sink.collect(IntWritable(1), Text("x"))
        assert len(seen) == 1 and seen[0][2] > 0


class TestCombinerHelper:
    def make_spec(self, with_combiner=True):
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_output_path("/out")
        if with_combiner:
            conf.set_combiner_class(SumReducer)
        return JobSpec.from_conf(conf)

    def test_combiner_compresses_buffer(self):
        spec = self.make_spec()
        buffer = PartitionBuffer()
        for word in ("a", "b", "a", "a", "b"):
            key, value = Text(word), IntWritable(1)
            buffer.append(key, value, pair_bytes(key, value))
        combined = run_combiner_if_any(
            spec, buffer, Counters(), Reporter(), "serialize"
        )
        counts = {str(k): v.get() for k, v in combined.pairs}
        assert counts == {"a": 3, "b": 2}
        assert len(combined.pairs) < len(buffer.pairs)

    def test_no_combiner_passthrough(self):
        spec = self.make_spec(with_combiner=False)
        buffer = PartitionBuffer()
        buffer.append(Text("a"), IntWritable(1), 4)
        result = run_combiner_if_any(spec, buffer, Counters(), Reporter(), "alias")
        assert result is buffer

    def test_empty_buffer_passthrough(self):
        spec = self.make_spec()
        buffer = PartitionBuffer()
        assert run_combiner_if_any(spec, buffer, Counters(), Reporter(),
                                   "alias") is buffer

    def test_combiner_counters(self):
        spec = self.make_spec()
        counters = Counters()
        buffer = PartitionBuffer()
        for word in ("x", "x", "y"):
            buffer.append(Text(word), IntWritable(1), 4)
        run_combiner_if_any(spec, buffer, counters, Reporter(), "serialize")
        assert counters.value(TaskCounter.COMBINE_INPUT_RECORDS) == 3
        assert counters.value(TaskCounter.COMBINE_OUTPUT_RECORDS) == 2


class TestEngineResult:
    def test_repr_shows_status(self):
        ok = EngineResult("j", "m3r", True, 1.5, Counters(), Metrics())
        bad = EngineResult("j", "m3r", False, 0.0, Counters(), Metrics(),
                           error="boom")
        assert "ok" in repr(ok)
        assert "FAILED" in repr(bad)
