"""Cross-job result reuse (ReStore): the reuse-equivalence harness.

The contract under test:

* **Transparency** — with ``m3r.restore.enabled`` on, a job's first run is
  *identical* to a run with it off: byte-identical committed output and
  bit-identical simulated seconds (admission and record charge nothing).
* **Reuse** — an exact rerun (same inputs, same relevant conf, same user
  classes; a fresh output directory) is served from the store: zero map
  and reduce tasks launch, the served output is byte-identical, and the
  simulated clock advances by strictly less than a real run.
* **Invalidation** — mutating an input file, changing a relevant conf
  key, or swapping the mapper produces a different fingerprint (a miss
  and a fresh execution); mutating the *stored* output invalidates the
  entry.  Irrelevant knobs (``m3r.*``, job name, output path) never
  change the fingerprint.

The workloads come from :mod:`workloads` — the same wordcount, matvec and
grep jobs the equivalence and concurrency suites pin down.
"""

from __future__ import annotations

import pytest

from repro.api.conf import RESTORE_ENABLED_KEY, UnknownKnobWarning
from repro.api.counters import JobCounter
from repro.api.job import JobSpec
from repro.api.mapred import Mapper
from repro.api.writables import IntWritable
from repro.lifecycle.events import ReuseEvent
from repro.restore import compute_fingerprint

from workloads import (
    DATA,
    WORKLOADS,
    WordCountWorkload,
    enable_restore,
    histogram_job,
    make_hadoop,
    make_m3r,
    snapshot_output,
    write_corpus,
)

ENGINES = (("hadoop", make_hadoop), ("m3r", make_m3r))


def total_tasks(results) -> int:
    """Launched map + reduce tasks summed across a (sequence of) results."""
    return sum(
        r.counters.value(JobCounter.TOTAL_LAUNCHED_MAPS)
        + r.counters.value(JobCounter.TOTAL_LAUNCHED_REDUCES)
        for r in results
    )


def run_twice(factory, workload, seed: int, restore: bool):
    """One engine, one prepared dataset, the workload run to two distinct
    output locations; returns per-run results, output snapshots, seconds."""
    engine = factory()
    try:
        workload.prepare(engine, seed)
        runs, outputs, seconds = [], [], []
        for tag in ("a", "b"):
            results = workload.run(engine, tag, restore=restore)
            assert all(r.succeeded for r in results), [r.error for r in results]
            runs.append(results)
            snap = {}
            for out_dir in workload.output_dirs(tag):
                snap.update(snapshot_output(engine, out_dir))
            outputs.append(snap)
            seconds.append(sum(r.simulated_seconds for r in results))
        return {"runs": runs, "outputs": outputs, "seconds": seconds,
                "store": engine.restore}
    finally:
        if hasattr(engine, "shutdown"):
            engine.shutdown()


@pytest.mark.parametrize("seed", range(20))
def test_seeded_reuse_differential(seed):
    """The acceptance sweep: 20 seeds across wordcount / matvec / grep on
    both engines, restore on vs off."""
    workload = WORKLOADS[seed % len(WORKLOADS)]
    for kind, factory in ENGINES:
        off = run_twice(factory, workload, seed, restore=False)
        on = run_twice(factory, workload, seed, restore=True)

        # Transparency: the first run is unobservable — byte-identical
        # output and bit-identical simulated seconds.
        assert on["outputs"][0] == off["outputs"][0], (kind, workload.name)
        assert on["seconds"][0] == off["seconds"][0], (kind, workload.name)

        # Rerun equivalence: all four runs commit the same bytes.
        assert off["outputs"][1] == off["outputs"][0]
        assert on["outputs"][1] == on["outputs"][0]

        # The rerun with restore on is a pure hit: zero tasks launched
        # (every job in the sequence reuses), and it is strictly cheaper.
        assert total_tasks(off["runs"][1]) > 0
        assert total_tasks(on["runs"][1]) == 0, (kind, workload.name)
        for result in on["runs"][1]:
            assert result.metrics.get("restore_hits") == 1
        assert on["seconds"][1] < on["seconds"][0], (kind, workload.name)

        stats = on["store"].stats()
        assert stats["lifetime"]["hits"] == len(on["runs"][1])


class TestInvalidation:
    """Fingerprint sensitivity: what must miss, what must not."""

    def setup_run(self, factory, conf_mutate=None):
        engine = factory()
        write_corpus(engine.filesystem, "/in", seed=9, parts=4, lines_per_part=4)
        first = engine.run_job(self._job(engine, "/out-a"))
        assert first.succeeded, first.error
        return engine, first

    def _job(self, engine, out, reducers=4):
        conf = histogram_job_text("/in", out, reducers)
        return enable_restore(conf)

    @pytest.mark.parametrize("kind,factory", ENGINES)
    def test_one_byte_input_mutation_forces_miss(self, kind, factory):
        engine, _ = self.setup_run(factory)
        try:
            # Flip one byte of one input part: same length, new content.
            text = engine.filesystem.read_text("/in/part-00001")
            engine.filesystem.delete("/in/part-00001")
            engine.filesystem.write_text("/in/part-00001", "X" + text[1:])
            second = engine.run_job(self._job(engine, "/out-b"))
            assert second.succeeded, second.error
            assert second.metrics.get("restore_misses") == 1
            assert second.metrics.get("restore_hits") == 0
            assert total_tasks([second]) > 0
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()

    @pytest.mark.parametrize("kind,factory", ENGINES)
    def test_relevant_conf_change_forces_miss(self, kind, factory):
        engine, _ = self.setup_run(factory)
        try:
            conf = enable_restore(histogram_job_text("/in", "/out-b", reducers=5))
            second = engine.run_job(conf)
            assert second.succeeded, second.error
            assert second.metrics.get("restore_misses") == 1
            assert total_tasks([second]) > 0
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()

    @pytest.mark.parametrize("kind,factory", ENGINES)
    def test_mapper_swap_forces_miss(self, kind, factory):
        engine, _ = self.setup_run(factory)
        try:
            conf = self._job(engine, "/out-b")
            conf.set_mapper_class(DoubleCountMapper)
            second = engine.run_job(conf)
            assert second.succeeded, second.error
            assert second.metrics.get("restore_misses") == 1
            assert total_tasks([second]) > 0
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()

    @pytest.mark.parametrize("kind,factory", ENGINES)
    def test_irrelevant_conf_keys_do_not_change_fingerprint(self, kind, factory):
        """m3r.* knobs, the job name and the output path are excluded from
        the fingerprint — changing all three still hits."""
        engine, _ = self.setup_run(factory)
        try:
            conf = self._job(engine, "/out-b")
            conf.set_job_name("renamed-job")
            # An unregistered m3r.* key warns (knob validation) but must
            # still be excluded from the fingerprint like any m3r.* knob.
            with pytest.warns(UnknownKnobWarning):
                conf.set("m3r.trace.note", "different-trace-knob")  # noqa: M3R010 - deliberately unregistered key
            second = engine.run_job(conf)
            assert second.succeeded, second.error
            assert second.metrics.get("restore_hits") == 1
            assert total_tasks([second]) == 0
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()

    def test_stored_output_mutation_invalidates(self):
        """Fingerprint matches but the recorded bytes changed underneath —
        the entry is discarded and the job runs fresh."""
        engine, _ = self.setup_run(make_hadoop)
        try:
            victims = [
                s.path for s in engine.filesystem.list_files_recursive("/out-a")
                if not s.path.rsplit("/", 1)[-1].startswith(("_", "."))
            ]
            assert victims
            engine.filesystem.delete(victims[0])
            second = engine.run_job(self._job(engine, "/out-b"))
            assert second.succeeded, second.error
            assert second.metrics.get("restore_invalidations") == 1
            assert second.metrics.get("restore_hits") == 0
            assert total_tasks([second]) > 0
            assert engine.restore.stats()["lifetime"]["invalidations"] == 1
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()


class DoubleCountMapper(Mapper):
    """Same signature as the wordcount mapper, different code — must miss."""

    def map(self, key, value, output, reporter):
        from repro.api.writables import Text

        for word in str(value).split():
            output.collect(Text(word), IntWritable(2))


def histogram_job_text(input_path, output_path, reducers):
    """Wordcount-shaped job over the text corpus (text in, pairs out)."""
    from repro.apps.wordcount import wordcount_job

    return wordcount_job(input_path, output_path, reducers)


class TestFingerprint:
    """Direct fingerprint algebra, no job runs."""

    def _engine_with_data(self):
        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000", DATA)
        return engine

    def _fingerprint(self, engine, conf):
        return compute_fingerprint(
            engine, JobSpec.from_conf(conf), conf, engine.restore
        )

    def test_identical_plans_agree(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        b = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        assert a is not None and a == b

    def test_output_path_and_name_excluded(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        b = self._fingerprint(
            engine, histogram_job("/in", "/elsewhere", 4, name="other")
        )
        assert a == b

    def test_m3r_knobs_excluded(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        noisy = histogram_job("/in", "/out", 4)
        with pytest.warns(UnknownKnobWarning):
            noisy.set("m3r.trace.note", "xyz")  # noqa: M3R010 - deliberately unregistered key
        noisy.set_boolean(RESTORE_ENABLED_KEY, True)
        assert a == self._fingerprint(engine, noisy)

    def test_reducer_count_included(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        b = self._fingerprint(engine, histogram_job("/in", "/out", 5))
        assert a != b

    def test_combiner_included(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        b = self._fingerprint(
            engine, histogram_job("/in", "/out", 4, use_combiner=True)
        )
        assert a != b

    def test_input_rewrite_included(self):
        engine = self._engine_with_data()
        a = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        engine.filesystem.delete("/in/part-00000")
        engine.filesystem.write_pairs("/in/part-00000", DATA)
        b = self._fingerprint(engine, histogram_job("/in", "/out", 4))
        assert a != b  # same bytes, new content version — conservative miss

    def test_unstable_plan_bypasses(self):
        """A lambda in the plan has no stable identity: no fingerprint."""
        engine = self._engine_with_data()
        conf = histogram_job("/in", "/out", 4)
        conf.set("custom.hook", lambda: None)
        assert self._fingerprint(engine, conf) is None


class TestReuseEvents:
    def test_miss_then_hit_on_the_bus(self):
        """Typed ReuseEvents land in the engine's ring and the metrics
        bridge mirrors them per job."""
        engine = make_m3r()
        workload = WordCountWorkload()
        try:
            workload.prepare(engine, seed=3)
            first = workload.run(engine, "a", restore=True)[0]
            second = workload.run(engine, "b", restore=True)[0]
            actions = [
                e.action for e in engine.event_ring.events()
                if isinstance(e, ReuseEvent)
            ]
            assert actions == ["miss", "hit"]
            hit = [e for e in engine.event_ring.events()
                   if isinstance(e, ReuseEvent) and e.action == "hit"][0]
            assert hit.fingerprint and hit.nbytes > 0 and hit.records > 0
            assert first.metrics.get("restore_misses") == 1
            assert second.metrics.get("restore_hits") == 1
            assert second.metrics.get("restore_served_bytes") == hit.nbytes
        finally:
            engine.shutdown()

    def test_disabled_by_default_no_events(self):
        engine = make_m3r()
        workload = WordCountWorkload()
        try:
            workload.prepare(engine, seed=3)
            result = workload.run(engine, "a", restore=False)[0]
            assert result.metrics.get("restore_hits") == 0
            assert result.metrics.get("restore_misses") == 0
            assert not [
                e for e in engine.event_ring.events() if isinstance(e, ReuseEvent)
            ]
            assert len(engine.restore) == 0
        finally:
            engine.shutdown()
