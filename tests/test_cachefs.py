"""The cache and its filesystem interposition (paper Sections 3.2.1, 4.2)."""

from __future__ import annotations

import pytest

from repro.api.writables import IntWritable, Text
from repro.core.cache import KeyValueCache, split_cache_name
from repro.core.cachefs import CacheOnlyFileSystem, M3RFileSystem
from repro.fs import InMemoryFileSystem
from repro.x10.places import Place


@pytest.fixture
def cache():
    return KeyValueCache([Place(i) for i in range(4)])


@pytest.fixture
def m3rfs(cache):
    return M3RFileSystem(InMemoryFileSystem(), cache)


PAIRS = [(IntWritable(1), Text("a")), (IntWritable(2), Text("b"))]


class TestKeyValueCache:
    def test_put_get_file(self, cache):
        entry = cache.put_file("/out/part-0", 2, PAIRS, nbytes=100)
        assert cache.get_file("/out/part-0") is entry
        assert entry.place_id == 2
        assert entry.records == 2

    def test_put_replaces(self, cache):
        cache.put_file("/f", 0, PAIRS, 100)
        cache.put_file("/f", 1, PAIRS[:1], 50)
        entry = cache.get_file("/f")
        assert entry.place_id == 1 and entry.records == 1
        assert len(cache) == 1

    def test_split_exact_match(self, cache):
        cache.put_split("/data", 0, 64, 1, PAIRS, 64)
        assert cache.get_split("/data", 0, 64) is not None
        assert cache.get_split("/data", 64, 64) is None

    def test_whole_file_serves_covering_split(self, cache):
        cache.put_file("/data", 1, PAIRS, 128)
        assert cache.get_split("/data", 0, 128, file_length=128) is not None
        assert cache.get_split("/data", 0, 200, file_length=128) is not None
        assert cache.get_split("/data", 64, 64, file_length=128) is None

    def test_named_entries(self, cache):
        cache.put_named("my-generator", 3, PAIRS, 10)
        assert cache.get_named("my-generator").place_id == 3
        assert cache.get_named("/my-generator") is not None
        assert cache.get_named("other") is None

    def test_contains_path_covers_children_and_splits(self, cache):
        cache.put_file("/dir/part-0", 0, PAIRS, 10)
        cache.put_split("/other/file", 0, 5, 0, PAIRS, 5)
        assert cache.contains_path("/dir")
        assert cache.contains_path("/dir/part-0")
        assert cache.contains_path("/other/file")
        assert not cache.contains_path("/nope")

    def test_delete_path_removes_splits_and_children(self, cache):
        cache.put_file("/d/part-0", 0, PAIRS, 10)
        cache.put_split("/d/part-1", 0, 9, 1, PAIRS, 9)
        assert cache.delete_path("/d")
        assert len(cache) == 0
        assert not cache.delete_path("/d")

    def test_rename_path_rekeys(self, cache):
        cache.put_file("/old/part-0", 2, PAIRS, 10)
        cache.put_split("/old/part-1", 0, 7, 3, PAIRS, 7)
        cache.rename_path("/old", "/new")
        assert cache.get_file("/new/part-0") is not None
        assert cache.get_split("/new/part-1", 0, 7) is not None
        assert not cache.contains_path("/old")

    def test_accounting(self, cache):
        cache.put_file("/a", 0, PAIRS, 100)
        cache.put_file("/b", 1, PAIRS, 50)
        assert cache.total_bytes() == 150
        assert cache.bytes_at_place(0) == 100
        assert cache.bytes_at_place(1) == 50
        assert cache.bytes_at_place(2) == 0

    def test_clear(self, cache):
        cache.put_file("/a", 0, PAIRS, 1)
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes() == 0

    def test_paths_under(self, cache):
        cache.put_file("/d/x", 0, PAIRS, 1)
        cache.put_file("/d/sub/y", 0, PAIRS, 1)
        cache.put_file("/e/z", 0, PAIRS, 1)
        assert cache.paths_under("/d") == ["/d/sub/y", "/d/x"]

    def test_split_cache_name_distinct_from_paths(self):
        name = split_cache_name("/a/b", 10, 20)
        assert "#" in name and name.startswith("/a/b")


class TestM3RFileSystem:
    def test_union_visibility(self, m3rfs, cache):
        m3rfs.inner.write_text("/real.txt", "x")
        cache.put_file("/cached/part-0", 0, PAIRS, 42)
        assert m3rfs.exists("/real.txt")
        assert m3rfs.exists("/cached/part-0")
        assert m3rfs.exists("/cached")
        status = m3rfs.get_file_status("/cached/part-0")
        assert status.length == 42 and status.is_file
        assert m3rfs.get_file_status("/cached").is_dir

    def test_list_status_merges(self, m3rfs, cache):
        m3rfs.inner.write_pairs("/d/real", PAIRS)
        cache.put_file("/d/cached", 1, PAIRS, 10)
        names = [s.path for s in m3rfs.list_status("/d")]
        assert names == ["/d/cached", "/d/real"]

    def test_list_cache_only_directory(self, m3rfs, cache):
        cache.put_file("/only/part-0", 0, PAIRS, 10)
        assert [s.path for s in m3rfs.list_status("/only")] == ["/only/part-0"]

    def test_read_pairs_prefers_cache(self, m3rfs, cache):
        stale = [(IntWritable(9), Text("stale"))]
        m3rfs.inner.write_pairs("/f", stale)
        cache.put_file("/f", 0, PAIRS, 10)
        assert m3rfs.read_pairs("/f") == PAIRS

    def test_delete_hits_both(self, m3rfs, cache):
        m3rfs.inner.write_pairs("/f", PAIRS)
        cache.put_file("/f", 0, PAIRS, 10)
        assert m3rfs.delete("/f")
        assert not m3rfs.inner.exists("/f")
        assert not cache.contains_path("/f")

    def test_rename_hits_both(self, m3rfs, cache):
        m3rfs.inner.write_pairs("/a", PAIRS)
        cache.put_file("/a", 0, PAIRS, 10)
        assert m3rfs.rename("/a", "/b")
        assert m3rfs.inner.exists("/b")
        assert cache.get_file("/b") is not None
        assert not cache.contains_path("/a")

    def test_rename_cache_only_path(self, m3rfs, cache):
        cache.put_file("/only", 0, PAIRS, 10)
        assert m3rfs.rename("/only", "/moved")
        assert cache.get_file("/moved") is not None

    def test_write_invalidates_cache(self, m3rfs, cache):
        cache.put_file("/f", 0, PAIRS, 10)
        m3rfs.write_pairs("/f", [(IntWritable(5), Text("new"))])
        assert cache.get_file("/f") is None
        assert m3rfs.read_pairs("/f")[0][1].to_string() == "new"

    def test_block_locations_for_cache_only(self, m3rfs, cache):
        cache.put_file("/only", 2, PAIRS, 10)
        assert m3rfs.get_block_locations("/only", 0, 1) == ["node02"]

    def test_get_cache_record_reader(self, m3rfs, cache):
        cache.put_file("/f", 0, PAIRS, 10)
        reader = m3rfs.get_cache_record_reader("/f")
        assert list(reader) == PAIRS
        assert m3rfs.get_cache_record_reader("/missing") is None


class TestCacheOnlyFileSystem:
    def test_operations_touch_only_cache(self, m3rfs, cache):
        m3rfs.inner.write_pairs("/f", PAIRS)
        cache.put_file("/f", 0, PAIRS, 10)
        raw = m3rfs.get_raw_cache()
        assert isinstance(raw, CacheOnlyFileSystem)
        assert raw.exists("/f")
        assert raw.delete("/f")
        assert not cache.contains_path("/f")
        assert m3rfs.inner.exists("/f")  # untouched on disk

    def test_rename_only_cache(self, m3rfs, cache):
        m3rfs.inner.write_pairs("/f", PAIRS)
        cache.put_file("/f", 0, PAIRS, 10)
        raw = m3rfs.get_raw_cache()
        assert raw.rename("/f", "/g")
        assert cache.get_file("/g") is not None
        assert m3rfs.inner.exists("/f") and not m3rfs.inner.exists("/g")

    def test_status_and_reads(self, m3rfs, cache):
        cache.put_file("/f", 1, PAIRS, 77)
        raw = m3rfs.get_raw_cache()
        assert raw.get_file_status("/f").length == 77
        assert raw.read_pairs("/f") == PAIRS
        with pytest.raises(FileNotFoundError):
            raw.read_pairs("/missing")

    def test_writes_rejected(self, m3rfs):
        raw = m3rfs.get_raw_cache()
        with pytest.raises(NotImplementedError):
            raw.write_pairs("/x", PAIRS)
        with pytest.raises(NotImplementedError):
            raw.write_bytes("/x", b"data")
        with pytest.raises(NotImplementedError):
            raw.mkdirs("/x")
