"""Application library: matvec numerics, microbenchmark, repartitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import matvec
from repro.apps.microbenchmark import (
    MicrobenchmarkResult,
    ModPartitioner,
    RemoteFractionMapper,
    generate_input,
    microbenchmark_job,
    run_microbenchmark,
)
from repro.apps.repartition import repartition_job
from repro.apps.wordcount import generate_text
from repro.api.conf import JobConf
from repro.api.writables import BlockIndexWritable, IntWritable

from conftest import make_hadoop, make_m3r


class TestMatvecNumerics:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_one_iteration_matches_numpy(self, factory):
        rows, block, nodes = 300, 60, 4
        engine = factory()
        num_row_blocks = (rows + block - 1) // block
        g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05, seed=3)
        v = matvec.generate_blocked_vector(rows, block, seed=4)
        matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, nodes)
        matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, nodes)
        expected = matvec.reference_multiply(g, v, rows, block)
        sequence = matvec.iteration_jobs("/G", "/V0", "/V1", "/tmp", 0,
                                         num_row_blocks, nodes)
        sequence.run_all(engine)
        got = np.zeros(rows)
        for key, value in engine.filesystem.read_kv_pairs("/V1"):
            start = key.row * block
            got[start : start + len(value.values)] = value.values
        assert np.allclose(got, expected, atol=1e-9)

    def test_three_iterations_match_numpy(self):
        rows, block, nodes = 200, 50, 4
        engine = make_m3r()
        num_row_blocks = (rows + block - 1) // block
        g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05, seed=7)
        v = matvec.generate_blocked_vector(rows, block, seed=8)
        matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, nodes)
        matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, nodes)
        dense_g = np.zeros((rows, rows))
        for key, value in g:
            r0, c0 = key.row * block, key.col * block
            blk = value.matrix.toarray()
            dense_g[r0 : r0 + blk.shape[0], c0 : c0 + blk.shape[1]] = blk
        expected = matvec.blocked_vector_to_array(v, rows)
        current = "/V0"
        for i in range(3):
            expected = dense_g @ expected
            nxt = f"/V{i+1}"
            matvec.iteration_jobs("/G", current, nxt, "/tmp", i,
                                  num_row_blocks, nodes).run_all(engine)
            current = nxt
        got = np.zeros(rows)
        for key, value in engine.filesystem.read_kv_pairs(current):
            start = key.row * block
            got[start : start + len(value.values)] = value.values
        assert np.allclose(got, expected, atol=1e-8)

    def test_second_job_shuffles_locally_on_m3r(self):
        """The paper's partition-stability showcase: job 2 of an iteration
        needs zero communication."""
        rows, block, nodes = 400, 100, 4
        engine = make_m3r()
        num_row_blocks = (rows + block - 1) // block
        g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05)
        v = matvec.generate_blocked_vector(rows, block)
        matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, nodes)
        matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, nodes)
        results = matvec.iteration_jobs("/G", "/V0", "/V1", "/tmp", 0,
                                        num_row_blocks, nodes).run_all(engine)
        sum_job_metrics = results[1].metrics
        assert sum_job_metrics.get("shuffle_remote_records") == 0
        assert sum_job_metrics.get("shuffle_local_records") > 0

    def test_row_chunk_partitioner_contiguity(self):
        partitioner = matvec.RowChunkPartitioner()
        conf = JobConf()
        conf.set_int(matvec.NUM_ROW_BLOCKS_KEY, 8)
        partitioner.configure(conf)
        assignments = [
            partitioner.get_partition(BlockIndexWritable(row, 0), None, 4)
            for row in range(8)
        ]
        assert assignments == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_generators_are_deterministic(self):
        a = matvec.generate_blocked_matrix(100, 50, sparsity=0.1, seed=1)
        b = matvec.generate_blocked_matrix(100, 50, sparsity=0.1, seed=1)
        assert len(a) == len(b)
        for (ka, va), (kb, vb) in zip(a, b):
            assert ka == kb and va == vb


class TestMicrobenchmark:
    def test_mod_partitioner(self):
        p = ModPartitioner()
        assert p.get_partition(IntWritable(13), None, 4) == 1

    def test_remote_decision_deterministic(self):
        mapper = RemoteFractionMapper()
        conf = microbenchmark_job("/in", "/out", 50, 4, seed=9)
        mapper.configure(conf)
        first = [mapper._goes_remote(k) for k in range(100)]
        second = [mapper._goes_remote(k) for k in range(100)]
        assert first == second
        assert 20 < sum(first) < 80  # roughly half at 50%

    def test_extremes(self):
        for percent, expected in ((0, 0), (100, 100)):
            mapper = RemoteFractionMapper()
            mapper.configure(microbenchmark_job("/in", "/out", percent, 4))
            remote = sum(mapper._goes_remote(k) for k in range(100))
            assert remote == expected

    def test_invalid_percent_rejected(self):
        with pytest.raises(ValueError):
            microbenchmark_job("/in", "/out", 101, 4)

    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_runs_end_to_end(self, factory):
        engine = factory()
        result = run_microbenchmark(engine, 40, num_pairs=120, value_bytes=64,
                                    num_reducers=4)
        assert isinstance(result, MicrobenchmarkResult)
        assert len(result.iteration_seconds) == 3
        assert all(t > 0 for t in result.iteration_seconds)
        # Final output exists; intermediates were deleted.
        finals = engine.filesystem.list_files_recursive(
            "/micro/output-r40-i2"
        )
        assert finals

    def test_pair_count_preserved(self):
        engine = make_m3r()
        generate_input(engine.filesystem, "/m/in", 100, 32, 4)
        result = engine.run_job(microbenchmark_job("/m/in", "/m/out", 30, 4))
        assert result.succeeded
        assert len(engine.filesystem.read_kv_pairs("/m/out")) == 100


class TestRepartition:
    def test_repartition_aligns_data(self):
        """After repartitioning scrambled data, an M3R job shuffles locally."""
        engine = make_m3r()
        generate_input(engine.filesystem, "/scrambled", 120, 32, 4,
                       partition_aligned=False)
        conf = repartition_job("/scrambled", "/aligned", 4,
                               partitioner_class=ModPartitioner)
        assert engine.run_job(conf).succeeded
        # The repartitioned (and cached) data now shuffles 0% remotely.
        follow = engine.run_job(microbenchmark_job("/aligned", "/out", 0, 4))
        assert follow.metrics.get("shuffle_remote_records") == 0
        assert len(engine.filesystem.read_kv_pairs("/out")) == 120

    def test_repartition_preserves_pairs(self):
        engine = make_hadoop()
        generate_input(engine.filesystem, "/scrambled", 60, 16, 4,
                       partition_aligned=False)
        before = sorted(
            k.get() for k, _ in engine.filesystem.read_kv_pairs("/scrambled")
        )
        conf = repartition_job("/scrambled", "/aligned", 4,
                               partitioner_class=ModPartitioner)
        assert engine.run_job(conf).succeeded
        after = sorted(
            k.get() for k, _ in engine.filesystem.read_kv_pairs("/aligned")
        )
        assert after == before


class TestTextGenerator:
    def test_deterministic(self):
        assert generate_text(50) == generate_text(50)

    def test_shape(self):
        text = generate_text(10, words_per_line=5)
        lines = text.strip().split("\n")
        assert len(lines) == 10
        assert all(len(line.split()) == 5 for line in lines)
