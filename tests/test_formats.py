"""Input/output formats: split computation, Hadoop line semantics, writers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.conf import JobConf
from repro.api.formats import (
    FileOutputFormat,
    KeyValueTextInputFormat,
    NullOutputFormat,
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
    TextInputFormat,
    TextOutputFormat,
)
from repro.api.mapred import Reporter
from repro.api.splits import FileSplit
from repro.api.writables import IntWritable, NullWritable, Text
from repro.fs import InMemoryFileSystem


@pytest.fixture
def fs():
    return InMemoryFileSystem()


def read_all_lines(fs, conf, num_splits):
    fmt = TextInputFormat()
    splits = fmt.get_splits(fs, conf, num_splits)
    pairs = []
    for split in splits:
        pairs.extend(fmt.get_record_reader(fs, split, conf, Reporter()))
    return splits, pairs


class TestTextInput:
    def test_every_line_exactly_once(self, fs):
        text = "\n".join(f"line {i}" for i in range(50)) + "\n"
        fs.write_text("/in.txt", text)
        conf = JobConf()
        conf.set_input_paths("/in.txt")
        for num_splits in (1, 2, 3, 7, 50):
            _, pairs = read_all_lines(fs, conf, num_splits)
            assert [v.to_string() for _, v in pairs] != []
            assert sorted(v.to_string() for _, v in pairs) == sorted(
                f"line {i}" for i in range(50)
            )

    def test_keys_are_byte_offsets(self, fs):
        fs.write_text("/in.txt", "ab\ncd\n")
        conf = JobConf()
        conf.set_input_paths("/in.txt")
        _, pairs = read_all_lines(fs, conf, 1)
        assert [(k.get(), v.to_string()) for k, v in pairs] == [(0, "ab"), (3, "cd")]

    def test_no_trailing_newline(self, fs):
        fs.write_text("/in.txt", "one\ntwo")
        conf = JobConf()
        conf.set_input_paths("/in.txt")
        _, pairs = read_all_lines(fs, conf, 2)
        assert sorted(v.to_string() for _, v in pairs) == ["one", "two"]

    def test_empty_file(self, fs):
        fs.write_text("/in.txt", "")
        conf = JobConf()
        conf.set_input_paths("/in.txt")
        splits, pairs = read_all_lines(fs, conf, 3)
        assert pairs == []

    def test_directory_input_expands_files(self, fs):
        fs.write_text("/dir/a.txt", "a\n")
        fs.write_text("/dir/b.txt", "b\n")
        fs.write_text("/dir/_hidden", "x\n")
        fs.write_text("/dir/.meta", "y\n")
        conf = JobConf()
        conf.set_input_paths("/dir")
        _, pairs = read_all_lines(fs, conf, 2)
        assert sorted(v.to_string() for _, v in pairs) == ["a", "b"]

    def test_missing_input_raises(self, fs):
        conf = JobConf()
        conf.set_input_paths("/nope")
        with pytest.raises(FileNotFoundError):
            TextInputFormat().get_splits(fs, conf, 1)

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\n\r", min_codepoint=32,
                                       max_codepoint=0x2FA0),
                max_size=30,
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60)
    def test_split_invariance_property(self, lines, num_splits):
        """Any split count yields exactly the original lines (Hadoop's
        first-byte-owns-the-record rule)."""
        fs = InMemoryFileSystem()
        fs.write_text("/in.txt", "\n".join(lines) + "\n")
        conf = JobConf()
        conf.set_input_paths("/in.txt")
        _, pairs = read_all_lines(fs, conf, num_splits)
        assert sorted(v.to_string() for _, v in pairs) == sorted(lines)


class TestKeyValueTextInput:
    def test_splits_at_first_tab(self, fs):
        fs.write_text("/kv.txt", "k1\tv1\nk2\tv2a\tv2b\nnokey\n")
        conf = JobConf()
        conf.set_input_paths("/kv.txt")
        fmt = KeyValueTextInputFormat()
        splits = fmt.get_splits(fs, conf, 1)
        pairs = list(fmt.get_record_reader(fs, splits[0], conf, Reporter()))
        rendered = [(k.to_string(), v.to_string()) for k, v in pairs]
        assert rendered == [("k1", "v1"), ("k2", "v2a\tv2b"), ("nokey", "")]


class TestSequenceFiles:
    def test_roundtrip(self, fs):
        pairs = [(IntWritable(i), Text(f"v{i}")) for i in range(10)]
        fs.write_pairs("/seq", pairs)
        conf = JobConf()
        conf.set_input_paths("/seq")
        fmt = SequenceFileInputFormat()
        splits = fmt.get_splits(fs, conf, 4)
        assert len(splits) == 1  # not splitable
        back = list(fmt.get_record_reader(fs, splits[0], conf, Reporter()))
        assert back == pairs

    def test_reader_clones_storage(self, fs):
        """Mutating what the reader hands out must not corrupt the file."""
        fs.write_pairs("/seq", [(IntWritable(1), Text("original"))])
        conf = JobConf()
        conf.set_input_paths("/seq")
        fmt = SequenceFileInputFormat()
        split = fmt.get_splits(fs, conf, 1)[0]
        key, value = fmt.get_record_reader(fs, split, conf, Reporter()).next_pair()
        value.set("mutated")
        assert fs.read_pairs("/seq")[0][1].to_string() == "original"

    def test_directory_of_part_files(self, fs):
        fs.write_pairs("/d/part-00000", [(IntWritable(0), Text("a"))])
        fs.write_pairs("/d/part-00001", [(IntWritable(1), Text("b"))])
        conf = JobConf()
        conf.set_input_paths("/d")
        fmt = SequenceFileInputFormat()
        splits = fmt.get_splits(fs, conf, 1)
        assert len(splits) == 2

    def test_writer(self, fs):
        conf = JobConf()
        conf.set_output_path("/out")
        writer = SequenceFileOutputFormat().get_record_writer(
            fs, conf, "part-00000", Reporter()
        )
        writer.write(IntWritable(1), Text("x"))
        writer.close()
        assert fs.read_pairs("/out/part-00000") == [(IntWritable(1), Text("x"))]


class TestOutputFormats:
    def test_check_output_specs_refuses_existing(self, fs):
        fs.mkdirs("/out")
        conf = JobConf()
        conf.set_output_path("/out")
        with pytest.raises(FileExistsError):
            SequenceFileOutputFormat().check_output_specs(fs, conf)

    def test_check_output_specs_requires_path(self, fs):
        with pytest.raises(ValueError):
            SequenceFileOutputFormat().check_output_specs(fs, JobConf())

    def test_text_output_separators(self, fs):
        conf = JobConf()
        conf.set_output_path("/out")
        writer = TextOutputFormat().get_record_writer(fs, conf, "part-00000", Reporter())
        writer.write(Text("k"), Text("v"))
        writer.write(NullWritable.get(), Text("only value"))
        writer.write(Text("only key"), NullWritable.get())
        writer.close()
        assert fs.read_text("/out/part-00000") == "k\tv\nonly value\nonly key\n"

    def test_null_output_discards(self, fs):
        writer = NullOutputFormat().get_record_writer(fs, JobConf(), "x", Reporter())
        writer.write(Text("k"), Text("v"))
        writer.close()
        assert fs.total_bytes() == 0

    def test_part_naming(self):
        assert FileOutputFormat.part_name(3) == "part-00003"
        conf = JobConf()
        conf.set_output_path("/out/")
        assert FileOutputFormat.part_path(conf, 12) == "/out/part-00012"
