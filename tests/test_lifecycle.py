"""The staged job lifecycle: shared pipeline, event bus, sinks, tracing.

Covers the refactor's contract: both engines drive the same
:class:`~repro.lifecycle.pipeline.JobPipeline`, every job emits one
deterministic stream of typed events, observers never perturb the run
(byte-identity with tracing on or off), and the guaranteed ``JobEnd``
releases pins and sanitizer scopes on every exit path.
"""

from __future__ import annotations

import json

import pytest

from repro.api.conf import (
    CACHE_PINNED_PATHS_KEY,
    REAL_THREADS_KEY,
    TRACE_PATH_KEY,
    TRACE_RING_KEY,
    JobConf,
)
from repro.api.job import JobSequence
from repro.api.mapred import IdentityMapper
from repro.apps.wordcount import generate_text, wordcount_job
from repro.engine_common import JobFailedError
from repro.lifecycle.events import (
    CacheEvent,
    EventBus,
    JobEnd,
    JobStart,
    SpillEvent,
    StageEnd,
    StageStart,
    TaskEnd,
)
from repro.lifecycle.sinks import MetricsBridgeSink, RingBufferSink
from repro.lifecycle.trace import (
    collect_waterfalls,
    read_jsonl,
    render_json,
    render_text,
)

from conftest import make_hadoop, make_m3r


def run_wordcount(engine, out="/out", lines=120, reducers=4):
    engine.filesystem.write_text("/in.txt", generate_text(lines))
    return engine.run_job(wordcount_job("/in.txt", out, reducers))


class ExplodingMapper(IdentityMapper):
    def map(self, key, value, output, reporter):
        raise RuntimeError("boom")


def exploding_wordcount(out="/bad-out"):
    conf = wordcount_job("/in.txt", out, 4)
    conf.set_mapper_class(ExplodingMapper)
    return conf


# --------------------------------------------------------------------- #
# stage sequencing
# --------------------------------------------------------------------- #


class TestStageSequence:
    def test_m3r_stages_in_order(self):
        engine = make_m3r(4)
        try:
            result = run_wordcount(engine)
            assert result.succeeded
            events = engine.event_ring.events(result.job_id)
            assert isinstance(events[0], JobStart)
            assert isinstance(events[-1], JobEnd)
            stages = [e.stage for e in events if isinstance(e, StageEnd)]
            assert stages == [
                "setup", "plan_splits", "map", "shuffle", "reduce",
                "commit", "cache-admit", "teardown",
            ]
        finally:
            engine.shutdown()

    def test_hadoop_stages_in_order(self):
        engine = make_hadoop(4)
        result = run_wordcount(engine)
        assert result.succeeded
        events = engine.event_ring.events(result.job_id)
        stages = [e.stage for e in events if isinstance(e, StageEnd)]
        assert stages == ["setup", "plan_splits", "map", "reduce", "commit"]

    def test_every_stage_start_has_matching_end(self):
        engine = make_m3r(4)
        try:
            result = run_wordcount(engine)
            events = engine.event_ring.events(result.job_id)
            starts = [e.stage for e in events if isinstance(e, StageStart)]
            ends = [e.stage for e in events if isinstance(e, StageEnd)]
            assert starts == ends
        finally:
            engine.shutdown()

    def test_task_events_are_deterministically_ordered(self):
        """Stage/task events are emitted post-join in task-index order."""
        engine = make_m3r(4)
        try:
            result = run_wordcount(engine)
            events = engine.event_ring.events(result.job_id)
            map_tasks = [
                e.task for e in events
                if isinstance(e, TaskEnd) and e.stage == "map"
            ]
            assert map_tasks == sorted(map_tasks)
            assert len(map_tasks) > 0
        finally:
            engine.shutdown()

    def test_failed_job_still_emits_job_end(self):
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            result = engine.run_job(exploding_wordcount())
            assert not result.succeeded
            events = engine.event_ring.events(result.job_id)
            end = events[-1]
            assert isinstance(end, JobEnd)
            assert not end.succeeded
            assert "boom" in (end.error or "")
            assert end.seconds == result.simulated_seconds == 0.0
        finally:
            engine.shutdown()


# --------------------------------------------------------------------- #
# clock identity: events mirror the accounting exactly
# --------------------------------------------------------------------- #


class TestClockIdentity:
    @pytest.mark.parametrize("factory", [make_m3r, make_hadoop])
    def test_job_end_equals_result_seconds(self, factory):
        engine = factory(4)
        try:
            result = run_wordcount(engine)
            end = engine.event_ring.events(result.job_id)[-1]
            assert isinstance(end, JobEnd)
            assert end.seconds == result.simulated_seconds  # byte-exact
        finally:
            getattr(engine, "shutdown", lambda: None)()

    @pytest.mark.parametrize("factory", [make_m3r, make_hadoop])
    def test_stage_seconds_sum_to_total(self, factory):
        engine = factory(4)
        try:
            result = run_wordcount(engine)
            events = engine.event_ring.events(result.job_id)
            ends = [e for e in events if isinstance(e, StageEnd)]
            assert sum(e.seconds for e in ends) == pytest.approx(
                result.simulated_seconds, rel=1e-12
            )
            # The running clock is exact: the last stage ends on the total.
            assert ends[-1].clock == result.simulated_seconds
        finally:
            getattr(engine, "shutdown", lambda: None)()


# --------------------------------------------------------------------- #
# sinks
# --------------------------------------------------------------------- #


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        engine = make_m3r(4)
        try:
            engine.trace_path = path
            result = run_wordcount(engine)
            ring_events = engine.event_ring.events(result.job_id)
        finally:
            engine.shutdown()
        docs = read_jsonl(path)
        assert len(docs) == len(ring_events)
        from_file = [w.as_dict() for w in collect_waterfalls(docs)]
        from_ring = [w.as_dict() for w in collect_waterfalls(ring_events)]
        assert from_file == from_ring

    def test_conf_key_selects_trace_path(self, tmp_path):
        path = str(tmp_path / "conf-trace.jsonl")
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            conf = wordcount_job("/in.txt", "/out", 4)
            conf.set(TRACE_PATH_KEY, path)
            assert engine.run_job(conf).succeeded
        finally:
            engine.shutdown()
        docs = read_jsonl(path)
        assert docs and docs[0]["event"] == "job_start"
        assert docs[-1]["event"] == "job_end"

    def test_env_var_selects_trace_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env-trace.jsonl")
        monkeypatch.setenv("M3R_TRACE_PATH", path)
        engine = make_m3r(4)
        try:
            assert run_wordcount(engine).succeeded
        finally:
            engine.shutdown()
        assert read_jsonl(path)

    def test_ring_keeps_last_n(self):
        ring = RingBufferSink(maxlen=3)
        for i in range(7):
            ring(StageStart(job_id=f"j{i}", engine="m3r", stage="map"))
        assert len(ring) == 3
        assert [e.job_id for e in ring.events()] == ["j4", "j5", "j6"]

    def test_ring_resizes_from_conf(self):
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            conf = wordcount_job("/in.txt", "/out", 4)
            conf.set_int(TRACE_RING_KEY, 16)
            assert engine.run_job(conf).succeeded
            assert engine.event_ring.maxlen == 16
            assert len(engine.event_ring) <= 16
        finally:
            engine.shutdown()

    def test_metrics_bridge_aggregates_without_touching_result(self):
        bridge = MetricsBridgeSink()
        engine = make_m3r(4)
        try:
            engine.trace_sinks.append(bridge)
            result = run_wordcount(engine)
        finally:
            engine.shutdown()
        assert bridge.metrics.time.get("stage[map]") >= 0.0
        assert bridge.metrics.get("stage_tasks[map]") > 0
        assert bridge.metrics.get("jobs_succeeded") == 1
        # The bridge writes to its own Metrics: the job's result carries
        # no stage[...] categories (the byte-identity invariant).
        assert "stage[map]" not in result.metrics.time.as_dict()

    def test_failing_sink_is_dropped_not_fatal(self):
        bus = EventBus("j1", "m3r")
        seen = []

        def bad(event):
            raise ValueError("observer bug")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit(StageStart(job_id="j1", engine="m3r", stage="map"))
        bus.emit(StageEnd(job_id="j1", engine="m3r", stage="map"))
        assert len(seen) == 2  # the good sink saw everything
        assert len(bus.sink_errors) == 1  # the bad one died once, silently

    def test_critical_subscriber_failure_propagates(self):
        bus = EventBus("j1", "m3r")

        def governor_like(event):
            raise RuntimeError("engine invariant broken")

        bus.subscribe(governor_like, critical=True)
        with pytest.raises(RuntimeError, match="invariant"):
            bus.emit(StageStart(job_id="j1", engine="m3r", stage="map"))


# --------------------------------------------------------------------- #
# observability must not perturb: byte-identity with tracing on
# --------------------------------------------------------------------- #


class TestTracingByteIdentity:
    @pytest.mark.parametrize("factory", [make_m3r, make_hadoop])
    def test_trace_on_off_identical(self, tmp_path, factory):
        def run(trace_path=None):
            engine = factory(4)
            try:
                if trace_path:
                    engine.trace_path = trace_path
                result = run_wordcount(engine)
                output = sorted(
                    (str(k), v.get())
                    for k, v in engine.filesystem.read_kv_pairs("/out")
                )
            finally:
                getattr(engine, "shutdown", lambda: None)()
            return result, output

        plain, plain_out = run()
        traced, traced_out = run(str(tmp_path / "t.jsonl"))
        assert repr(plain.simulated_seconds) == repr(traced.simulated_seconds)
        assert plain.counters.as_dict() == traced.counters.as_dict()
        assert plain.metrics.as_dict() == traced.metrics.as_dict()
        assert plain_out == traced_out


# --------------------------------------------------------------------- #
# cache / spill events under memory pressure
# --------------------------------------------------------------------- #


class TestCacheSpillEvents:
    def test_pressure_surfaces_cache_and_spill_events(self):
        from repro.apps import matvec

        engine = make_m3r(4, cache_capacity_bytes=6000)
        try:
            rows, block = 200, 25
            num_row_blocks = (rows + block - 1) // block
            g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05)
            v = matvec.generate_blocked_vector(rows, block)
            matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, 4)
            matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, 4)
            engine.warm_cache_from("/G")
            engine.warm_cache_from("/V0")
            sequence = matvec.iteration_jobs(
                "/G", "/V0", "/V1", "/scratch", 0, num_row_blocks, 4
            )
            results = [engine.run_job(conf) for conf in sequence]
            assert all(r.succeeded for r in results)
            evictions = sum(r.metrics.get("cache_evictions") for r in results)
            assert evictions > 0  # the workload actually created pressure
            events = engine.event_ring.events()
            cache_events = [e for e in events if isinstance(e, CacheEvent)]
            spill_events = [e for e in events if isinstance(e, SpillEvent)]
            assert len(cache_events) == evictions
            assert all(e.action == "evict" for e in cache_events)
            assert spill_events  # durable entries spilled rather than dropped
            assert all(e.action in ("spill", "rehydrate") for e in spill_events)
            assert all(e.nbytes > 0 for e in spill_events)
        finally:
            engine.shutdown()


# --------------------------------------------------------------------- #
# pin hygiene: every exit path releases job pins
# --------------------------------------------------------------------- #


class TestPinLeakOnFailure:
    @pytest.mark.parametrize("real_threads", [True, False])
    def test_failed_job_releases_pins(self, real_threads):
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            conf = exploding_wordcount()
            conf.set_boolean(REAL_THREADS_KEY, real_threads)
            conf.set(CACHE_PINNED_PATHS_KEY, "/in.txt")
            result = engine.run_job(conf)
            assert not result.succeeded
            assert engine.governor.pinned_prefixes() == []
        finally:
            engine.shutdown()

    def test_mid_sequence_failure_releases_all_pins(self):
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            sequence = JobSequence([
                wordcount_job("/in.txt", "/ok-1", 4),
                exploding_wordcount("/bad-2"),
                wordcount_job("/in.txt", "/never-3", 4),
            ])
            results = engine.run_sequence(sequence)
            assert [r.succeeded for r in results] == [True, False]
            # Neither the failed job's pins nor the sequence pins on the
            # first job's output survive the raise.
            assert engine.governor.pinned_prefixes() == []
        finally:
            engine.shutdown()

    def test_node_failure_releases_pins(self):
        engine = make_m3r(4)
        try:
            engine.filesystem.write_text("/in.txt", generate_text(50))
            engine.fail_nodes.add(1)
            with pytest.raises(JobFailedError):
                engine.run_job(wordcount_job("/in.txt", "/out", 4))
            assert engine.governor.pinned_prefixes() == []
        finally:
            engine.shutdown()


# --------------------------------------------------------------------- #
# trace module: fold + render
# --------------------------------------------------------------------- #


class TestTraceRendering:
    def _waterfalls(self):
        engine = make_m3r(4)
        try:
            result = run_wordcount(engine)
            events = engine.event_ring.events(result.job_id)
        finally:
            engine.shutdown()
        return result, collect_waterfalls(events)

    def test_collect_folds_one_job(self):
        result, waterfalls = self._waterfalls()
        assert len(waterfalls) == 1
        job = waterfalls[0]
        assert job.job_id == result.job_id
        assert job.engine == "m3r"
        assert job.succeeded
        assert job.seconds == result.simulated_seconds
        assert [s.stage for s in job.stages][:3] == [
            "setup", "plan_splits", "map"
        ]

    def test_render_text_waterfall(self):
        _, waterfalls = self._waterfalls()
        text = render_text(waterfalls)
        for stage in ("setup", "map", "shuffle", "reduce", "commit"):
            assert stage in text
        assert "simulated seconds" in text

    def test_render_json_is_serializable(self):
        result, waterfalls = self._waterfalls()
        doc = render_json(waterfalls)
        parsed = json.loads(json.dumps(doc))
        job = parsed["jobs"][0]
        assert job["seconds"] == result.simulated_seconds
        assert sum(s["seconds"] for s in job["stages"]) == pytest.approx(
            result.simulated_seconds, rel=1e-12
        )
