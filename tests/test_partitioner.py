"""Partitioners: range invariants and total-order semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.conf import JobConf
from repro.api.partitioner import HashPartitioner, TotalOrderPartitioner
from repro.api.writables import IntWritable, Text


class TestHashPartitioner:
    @given(st.integers(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=200)
    def test_in_range(self, key, n):
        p = HashPartitioner().get_partition(IntWritable(key), None, n)
        assert 0 <= p < n

    def test_deterministic(self):
        hp = HashPartitioner()
        assert hp.get_partition(Text("abc"), None, 8) == hp.get_partition(
            Text("abc"), None, 8
        )

    def test_equal_keys_same_partition(self):
        hp = HashPartitioner()
        assert hp.get_partition(IntWritable(5), None, 7) == hp.get_partition(
            IntWritable(5), None, 7
        )

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner().get_partition(IntWritable(1), None, 0)

    def test_spreads_keys(self):
        hp = HashPartitioner()
        hits = {hp.get_partition(IntWritable(i), None, 8) for i in range(100)}
        assert len(hits) > 1


class TestTotalOrderPartitioner:
    def test_basic_ranges(self):
        top = TotalOrderPartitioner([IntWritable(10), IntWritable(20)])
        assert top.get_partition(IntWritable(5), None, 3) == 0
        assert top.get_partition(IntWritable(10), None, 3) == 1
        assert top.get_partition(IntWritable(15), None, 3) == 1
        assert top.get_partition(IntWritable(20), None, 3) == 2
        assert top.get_partition(IntWritable(99), None, 3) == 2

    def test_partition_count_must_match_cuts(self):
        top = TotalOrderPartitioner([IntWritable(10)])
        with pytest.raises(ValueError):
            top.get_partition(IntWritable(1), None, 3)

    def test_cuts_must_increase(self):
        with pytest.raises(ValueError):
            TotalOrderPartitioner([IntWritable(5), IntWritable(5)])

    def test_configure_reads_cuts(self):
        conf = JobConf()
        conf.set("total.order.partitioner.cuts", [IntWritable(3)])
        top = TotalOrderPartitioner()
        top.configure(conf)
        assert top.get_partition(IntWritable(1), None, 2) == 0
        assert top.get_partition(IntWritable(4), None, 2) == 1

    def test_sample_cut_points(self):
        sample = [IntWritable(i) for i in range(100)]
        cuts = TotalOrderPartitioner.sample_cut_points(sample, 4)
        assert len(cuts) == 3
        assert cuts[0] < cuts[1] < cuts[2]

    def test_sample_with_duplicates_dedupes(self):
        sample = [IntWritable(1)] * 10 + [IntWritable(2)] * 10
        cuts = TotalOrderPartitioner.sample_cut_points(sample, 4)
        # Strictly increasing even though the raw quantiles collide.
        assert all(a < b for a, b in zip(cuts, cuts[1:]))

    @given(
        st.lists(st.integers(-1000, 1000), min_size=2, max_size=100),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100)
    def test_partitions_respect_global_order(self, keys, n):
        sample = [IntWritable(k) for k in keys]
        cuts = TotalOrderPartitioner.sample_cut_points(sample, n)
        top = TotalOrderPartitioner(cuts)
        partitions = len(cuts) + 1
        assigned = [
            (k, top.get_partition(IntWritable(k), None, partitions))
            for k in sorted(keys)
        ]
        # Partition numbers are non-decreasing when keys are sorted.
        parts = [p for _, p in assigned]
        assert parts == sorted(parts)
