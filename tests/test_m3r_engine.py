"""The M3R engine: cache, partition stability, dedup, immutability, no
resilience."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.counters import TaskCounter
from repro.api.extensions import (
    ImmutableOutput,
    NamedSplit,
    PlacedSplit,
    TEMP_OUTPUT_PREFIX_KEY,
    is_temporary_output,
)
from repro.api.formats import (
    RecordReader,
    InputFormat,
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
)
from repro.api.mapred import IdentityMapper, IdentityReducer
from repro.api.splits import InputSplit
from repro.api.writables import BytesWritable, IntWritable, Text
from repro.apps.microbenchmark import (
    IdentityImmutableReducer,
    ModPartitioner,
    RemoteFractionMapper,
    generate_input,
    microbenchmark_job,
)
from repro.apps.repartition import IdentityImmutableMapper
from repro.apps.wordcount import generate_text, wordcount_job
from repro.engine_common import JobFailedError

from conftest import make_m3r


def identity_job(src, dst, reducers=4, immutable=True):
    conf = JobConf()
    conf.set_job_name("identity")
    conf.set_input_paths(src)
    conf.set_input_format(SequenceFileInputFormat)
    conf.set_mapper_class(IdentityImmutableMapper if immutable else IdentityMapper)
    conf.set_reducer_class(IdentityImmutableReducer if immutable else IdentityReducer)
    conf.set_partitioner_class(ModPartitioner)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_output_path(dst)
    conf.set_num_reduce_tasks(reducers)
    return conf


def seeded_input(engine, path="/in", n=40):
    pairs_by_part = {}
    for part in range(4):
        pairs = [(IntWritable(k), Text(f"v{k}")) for k in range(n) if k % 4 == part]
        engine.filesystem.write_pairs(f"{path}/part-{part:05d}", pairs, at_node=part)
        pairs_by_part[part] = pairs
    return pairs_by_part


class TestPartitionStability:
    def test_mapping_is_deterministic(self, m3r4):
        mapping = [m3r4.partition_place(p) for p in range(16)]
        assert mapping == [m3r4.partition_place(p) for p in range(16)]
        assert mapping[:4] == [0, 1, 2, 3]

    def test_unstable_mode_varies_by_job(self):
        engine = make_m3r(enable_partition_stability=False)
        engine._job_counter = 1
        first = [engine.partition_place(p) for p in range(8)]
        engine._job_counter = 2
        second = [engine.partition_place(p) for p in range(8)]
        assert first != second

    def test_stable_sequence_shuffles_locally(self, m3r4):
        """The microbenchmark at 0% remote: after the aligned load, every
        shuffled record stays in its own place."""
        generate_input(m3r4.filesystem, "/micro", 200, 64, 4)
        result = m3r4.run_job(microbenchmark_job("/micro", "/out", 0, 4))
        assert result.succeeded
        assert result.metrics.get("shuffle_remote_records") == 0
        assert result.metrics.get("shuffle_local_records") > 0

    def test_adjacent_partition_is_remote(self, m3r4):
        generate_input(m3r4.filesystem, "/micro", 200, 64, 4)
        result = m3r4.run_job(microbenchmark_job("/micro", "/out", 100, 4))
        assert result.metrics.get("shuffle_local_records") == 0
        assert result.metrics.get("shuffle_remote_records") > 0


class TestCache:
    def test_second_read_hits_cache(self, m3r4):
        seeded_input(m3r4)
        first = m3r4.run_job(identity_job("/in", "/out1"))
        assert first.metrics.get("cache_misses") > 0
        assert first.metrics.get("cache_hits") == 0
        second = m3r4.run_job(identity_job("/in", "/out2"))
        assert second.metrics.get("cache_hits") > 0
        assert second.metrics.get("cache_misses") == 0
        assert second.metrics.time.get("disk_read") == 0.0
        assert second.metrics.time.get("deserialize") == 0.0

    def test_job_output_feeds_next_job_from_memory(self, m3r4):
        seeded_input(m3r4)
        m3r4.run_job(identity_job("/in", "/mid"))
        follow = m3r4.run_job(identity_job("/mid", "/fin"))
        assert follow.metrics.get("cache_hits") == 4
        assert follow.metrics.time.get("disk_read") == 0.0
        assert len(m3r4.filesystem.read_kv_pairs("/fin")) == 40

    def test_temp_output_not_flushed(self, m3r4):
        seeded_input(m3r4)
        result = m3r4.run_job(identity_job("/in", "/work/temp-x"))
        assert result.metrics.get("temp_outputs_skipped") == 4
        assert not m3r4.raw_filesystem.exists("/work/temp-x")
        assert m3r4.filesystem.exists("/work/temp-x")
        assert len(m3r4.filesystem.read_kv_pairs("/work/temp-x")) == 40

    def test_custom_temp_prefix(self, m3r4):
        seeded_input(m3r4)
        conf = identity_job("/in", "/work/scratch-y")
        conf.set(TEMP_OUTPUT_PREFIX_KEY, "scratch")
        result = m3r4.run_job(conf)
        assert result.metrics.get("temp_outputs_skipped") == 4
        assert not m3r4.raw_filesystem.exists("/work/scratch-y")

    def test_is_temporary_output_convention(self):
        conf = JobConf()
        assert is_temporary_output("/a/temp-thing", conf)
        assert not is_temporary_output("/a/output", conf)
        conf.set(TEMP_OUTPUT_PREFIX_KEY, "zz")
        assert is_temporary_output("/a/zz1", conf)
        assert not is_temporary_output("/a/temp-thing", conf)

    def test_delete_invalidates_cache(self, m3r4):
        seeded_input(m3r4)
        m3r4.run_job(identity_job("/in", "/out1"))
        m3r4.filesystem.delete("/in", recursive=True)
        assert not m3r4.cache.contains_path("/in/part-00000")
        # Re-reading now fails (data is gone everywhere), which proves the
        # cache did not secretly keep serving it.
        result = m3r4.run_job(identity_job("/in", "/out2"))
        assert not result.succeeded

    def test_overwrite_invalidates_cache(self, m3r4):
        seeded_input(m3r4, n=8)
        m3r4.run_job(identity_job("/in", "/out1"))
        replacement = [(IntWritable(0), Text("NEW"))]
        m3r4.filesystem.write_pairs("/in/part-00000", replacement, at_node=0)
        result = m3r4.run_job(identity_job("/in", "/out2"))
        assert result.succeeded
        values = {str(v) for _, v in m3r4.filesystem.read_kv_pairs("/out2")}
        assert "NEW" in values

    def test_cache_disabled_engine(self):
        engine = make_m3r(enable_cache=False)
        seeded_input(engine)
        engine.run_job(identity_job("/in", "/out1"))
        second = engine.run_job(identity_job("/in", "/out2"))
        assert second.metrics.get("cache_hits") == 0
        assert second.metrics.time.get("disk_read") > 0

    def test_warm_cache_from(self, m3r4):
        seeded_input(m3r4)
        assert m3r4.warm_cache_from("/in") == 4
        result = m3r4.run_job(identity_job("/in", "/out"))
        assert result.metrics.get("cache_hits") == 4
        assert result.metrics.time.get("disk_read") == 0.0


class TestImmutability:
    def test_immutable_jobs_do_not_clone(self, m3r4):
        seeded_input(m3r4)
        result = m3r4.run_job(identity_job("/in", "/out", immutable=True))
        assert result.metrics.get("cloned_records") == 0

    def test_mutating_jobs_clone(self, m3r4):
        seeded_input(m3r4)
        result = m3r4.run_job(identity_job("/in", "/out", immutable=False))
        assert result.metrics.get("cloned_records") > 0
        assert result.metrics.time.get("clone") > 0

    def test_mutating_mapper_cannot_corrupt_cache(self, m3r4):
        """A mapper that mutates its input must not damage cached data."""

        class Vandal(IdentityMapper):
            def map(self, key, value, output, reporter):
                output.collect(key, value)
                value.set("VANDALIZED")  # mutate after emit — legal in Hadoop

        seeded_input(m3r4, n=8)
        conf = identity_job("/in", "/out1")
        conf.set_mapper_class(Vandal)
        assert m3r4.run_job(conf).succeeded
        # The cached input still serves pristine values to the next job.
        result = m3r4.run_job(identity_job("/in", "/out2"))
        assert result.succeeded
        values = {str(v) for _, v in m3r4.filesystem.read_kv_pairs("/out2")}
        assert "VANDALIZED" not in values


class TestDedup:
    def test_broadcast_dedup_savings_counted(self, m3r4):
        class Broadcast(IdentityMapper, ImmutableOutput):
            def __init__(self):
                self.payload = BytesWritable(b"p" * 2000)

            def map(self, key, value, output, reporter):
                for partition in range(4):
                    output.collect(IntWritable(partition), self.payload)

        m3r4.filesystem.write_pairs(
            "/in/part-00000", [(IntWritable(0), Text("seed"))], at_node=0
        )
        conf = identity_job("/in", "/out")
        conf.set_mapper_class(Broadcast)
        result = m3r4.run_job(conf)
        assert result.succeeded
        assert result.metrics.get("dedup_saved_bytes") == 0  # one pair per place
        # Now two pairs to the same remote place share the payload object.

        class DoubleBroadcast(Broadcast):
            def map(self, key, value, output, reporter):
                for partition in range(4):
                    output.collect(IntWritable(partition), self.payload)
                    output.collect(IntWritable(partition + 4), self.payload)

        conf = identity_job("/in", "/out2", reducers=8)
        conf.set_mapper_class(DoubleBroadcast)
        result = m3r4.run_job(conf)
        assert result.metrics.get("dedup_saved_bytes") > 0

    def test_dedup_disabled_charges_raw_bytes(self):
        engines = {
            flag: make_m3r(enable_dedup=flag) for flag in (True, False)
        }
        shuffles = {}
        for flag, engine in engines.items():
            class Broadcast(IdentityMapper, ImmutableOutput):
                def __init__(self):
                    self.payload = BytesWritable(b"p" * 2000)

                def map(self, key, value, output, reporter):
                    for k in range(8):
                        output.collect(IntWritable(k), self.payload)

            engine.filesystem.write_pairs(
                "/in/part-00000", [(IntWritable(0), Text("s"))], at_node=0
            )
            conf = identity_job("/in", "/out", reducers=8)
            conf.set_mapper_class(Broadcast)
            result = engine.run_job(conf)
            shuffles[flag] = result.metrics.get("shuffle_remote_bytes")
        assert shuffles[True] < shuffles[False]


class TestSplitExtensions:
    def test_placed_split_overrides_locality(self, m3r4):
        class PinnedSplit(InputSplit, PlacedSplit, NamedSplit):
            def __init__(self, partition):
                self._partition = partition

            def get_length(self):
                return 10

            def get_locations(self):
                return ["node00"]  # locality says 0, PlacedSplit says otherwise

            def get_partition(self):
                return self._partition

            def get_name(self):
                return f"pinned-{self._partition}"

        split = PinnedSplit(3)
        assert m3r4._place_for_split(split, 0, None) == 3

    def test_named_split_caching(self, m3r4):
        calls = {"reads": 0}

        class CountingReaderImpl(RecordReader):
            def __init__(self):
                self._emitted = False

            def next_pair(self):
                if self._emitted:
                    return None
                self._emitted = True
                calls["reads"] += 1
                return IntWritable(1), Text("generated")

        class NamedGeneratorSplit(InputSplit, NamedSplit):
            def get_length(self):
                return 16

            def get_locations(self):
                return []

            def get_name(self):
                return "generator-data"

        class GeneratorFormat(InputFormat):
            def get_splits(self, fs, conf, num_splits):
                return [NamedGeneratorSplit()]

            def get_record_reader(self, fs, split, conf, reporter):
                return CountingReaderImpl()

        conf = identity_job("/ignored", "/out1")
        conf.set_input_format(GeneratorFormat)
        conf.set_input_paths("/ignored")
        assert m3r4.run_job(conf).succeeded
        assert calls["reads"] == 1
        conf2 = identity_job("/ignored", "/out2")
        conf2.set_input_format(GeneratorFormat)
        assert m3r4.run_job(conf2).succeeded
        assert calls["reads"] == 1  # second job served from the cache
        assert m3r4.cache.get_named("generator-data") is not None

    def test_unknown_split_bypasses_cache(self, m3r4):
        class OpaqueSplit(InputSplit):
            def get_length(self):
                return 4

            def get_locations(self):
                return []

        class OpaqueFormat(InputFormat):
            def get_splits(self, fs, conf, num_splits):
                return [OpaqueSplit()]

            def get_record_reader(self, fs, split, conf, reporter):
                class R(RecordReader):
                    done = False

                    def next_pair(self):
                        if R.done:
                            return None
                        R.done = True
                        return IntWritable(1), Text("opaque")

                return R()

        conf = identity_job("/ignored", "/out")
        conf.set_input_format(OpaqueFormat)
        result = m3r4.run_job(conf)
        assert result.succeeded
        assert result.metrics.get("cache_inserts") == 0


class TestNoResilience:
    def test_node_failure_kills_job(self, m3r4):
        seeded_input(m3r4)
        m3r4.fail_nodes.add(1)
        with pytest.raises(JobFailedError):
            m3r4.run_job(identity_job("/in", "/out"))

    def test_user_code_failure_still_reported(self, m3r4):
        class Exploding(IdentityMapper):
            def map(self, key, value, output, reporter):
                raise RuntimeError("boom")

        seeded_input(m3r4)
        conf = identity_job("/in", "/out")
        conf.set_mapper_class(Exploding)
        result = m3r4.run_job(conf)
        assert not result.succeeded and "boom" in result.error


class TestSmallJobLatency:
    def test_small_job_runs_essentially_instantly(self, m3r4):
        """Paper Section 1: 'small HMR jobs can run essentially instantly
        on M3R, avoiding the huge (10s of second) start-up cost'."""
        seeded_input(m3r4, n=8)
        result = m3r4.run_job(identity_job("/in", "/out"))
        assert result.simulated_seconds < 1.0
        assert result.metrics.time.get("jvm_startup") == 0.0
        assert result.metrics.time.get("scheduling") == 0.0
