"""Resilient & elastic M3R (the paper's Section 7 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.microbenchmark import generate_input, microbenchmark_job
from repro.core import ResilientM3REngine
from repro.engine_common import JobFailedError
from repro.fs import SimulatedHDFS
from repro.sim import Cluster, paper_cluster_cost_model


def make_resilient(num_nodes: int = 4, **kwargs) -> ResilientM3REngine:
    cluster = Cluster(num_nodes)
    fs = SimulatedHDFS(cluster, block_size=64 * 1024, replication=2)
    return ResilientM3REngine(
        cluster=cluster, filesystem=fs, cost_model=paper_cluster_cost_model(),
        **kwargs,
    )


def run_identity(engine, src, dst, remote=0):
    result = engine.run_job(microbenchmark_job(src, dst, remote, 4))
    assert result.succeeded, result.error
    return result


class TestReplication:
    def test_outputs_are_replicated(self):
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        result = run_identity(engine, "/in", "/out")
        assert result.metrics.get("replicated_bytes") > 0
        assert result.metrics.time.get("replication") > 0
        assert len(engine._replicas) == 4  # one buddy copy per part file

    def test_replica_lives_on_a_different_place(self):
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        run_identity(engine, "/in", "/out")
        for replica in engine._replicas.values():
            primary = engine.cache.get_file(replica.path)
            assert primary is not None
            assert replica.place_id != primary.place_id

    def test_replica_is_a_deep_copy(self):
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 8, 16, 4)
        run_identity(engine, "/in", "/out")
        replica = next(iter(engine._replicas.values()))
        primary = engine.cache.get_file(replica.path)
        assert replica.pairs[0][1] is not primary.pairs[0][1]


class TestRecovery:
    def test_survives_node_failure(self):
        """The headline: unlike stock M3R, the job sequence continues."""
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        run_identity(engine, "/in", "/work/temp-step1")
        before = sorted(
            (k.get(), v.get_bytes())
            for k, v in engine.filesystem.read_kv_pairs("/work/temp-step1")
        )
        engine.fail_nodes.add(2)
        result = run_identity(engine, "/work/temp-step1", "/out")
        after = sorted(
            (k.get(), v.get_bytes())
            for k, v in engine.filesystem.read_kv_pairs("/out")
        )
        assert after == before  # nothing lost, even the temp-only data
        assert engine.recovery_log
        report = engine.recovery_log[0]
        assert report.promoted_entries > 0
        assert report.lost_entries == 0

    def test_recovery_cost_charged_to_triggering_job(self):
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 400, 2048, 4)
        baseline = run_identity(engine, "/in", "/work/temp-a").simulated_seconds
        engine.fail_nodes.add(1)
        recovered = run_identity(engine, "/work/temp-a", "/work/temp-b")
        assert recovered.metrics.time.get("recovery") > 0
        assert recovered.simulated_seconds > 0

    def test_recovery_proportional_to_failed_data(self):
        """Recovery touches only the dead place's bytes — the paper's
        proportional-work property."""
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 400, 1024, 4)
        run_identity(engine, "/in", "/work/temp-x")
        held = engine.cache.bytes_at_place(3)
        engine.fail_nodes.add(3)
        run_identity(engine, "/work/temp-x", "/work/temp-y")
        report = engine.recovery_log[0]
        assert 0 < report.promoted_bytes <= held * 1.01

    def test_unreplicated_input_entries_are_reread_from_fs(self):
        engine = make_resilient()
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        run_identity(engine, "/in", "/out1")  # caches the INPUT splits too
        engine.fail_nodes.add(0)
        result = run_identity(engine, "/in", "/out2")
        # Input entries at place 0 were dropped and re-read from HDFS.
        assert result.succeeded
        assert len(engine.filesystem.read_kv_pairs("/out2")) == 80

    def test_all_nodes_dead_still_fatal(self):
        engine = make_resilient(2)
        generate_input(engine.filesystem, "/in", 8, 16, 2)
        engine.fail_nodes.update({0, 1})
        with pytest.raises(JobFailedError):
            engine.run_job(microbenchmark_job("/in", "/out", 0, 2))

    def test_partition_mapping_stable_over_live_places(self):
        engine = make_resilient(4)
        before = [engine.partition_place(p) for p in range(8)]
        assert before == [0, 1, 2, 3, 0, 1, 2, 3]
        engine.fail_nodes.add(1)
        engine._dead_places.add(1)
        after = [engine.partition_place(p) for p in range(8)]
        assert 1 not in after
        # deterministic: calling again yields the same mapping
        assert after == [engine.partition_place(p) for p in range(8)]

    def test_second_failure_also_survivable(self):
        engine = make_resilient(4)
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        run_identity(engine, "/in", "/work/temp-1")
        engine.fail_nodes.add(0)
        run_identity(engine, "/work/temp-1", "/work/temp-2")
        engine.fail_nodes.add(1)
        result = run_identity(engine, "/work/temp-2", "/out")
        assert result.succeeded
        assert len(engine.filesystem.read_kv_pairs("/out")) == 80
        assert len(engine.recovery_log) == 2


class TestElasticity:
    def test_grow_migrates_and_rebalances(self):
        engine = make_resilient(4, num_places=2)
        generate_input(engine.filesystem, "/in", 80, 64, 2)
        run_identity_n = microbenchmark_job("/in", "/work/temp-s", 0, 2)
        assert engine.run_job(run_identity_n).succeeded
        report = engine.resize(4)
        assert engine.num_places == 4
        assert report.simulated_seconds >= 0
        # Mapping now spans four places.
        assert {engine.partition_place(p) for p in range(4)} == {0, 1, 2, 3}
        # Data still readable after migration.
        assert len(engine.filesystem.read_kv_pairs("/work/temp-s")) == 80

    def test_shrink_moves_orphaned_entries(self):
        engine = make_resilient(4)
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        assert engine.run_job(microbenchmark_job("/in", "/work/temp-s", 0, 4)).succeeded
        held_high = engine.cache.bytes_at_place(3)
        assert held_high > 0
        report = engine.resize(2)
        assert engine.num_places == 2
        for entry in engine.cache.entries():
            assert entry.place_id < 2
        assert report.promoted_bytes >= held_high
        assert len(engine.filesystem.read_kv_pairs("/work/temp-s")) == 80

    def test_resize_noop(self):
        engine = make_resilient(4)
        report = engine.resize(4)
        assert report.simulated_seconds == 0.0

    def test_resize_validation(self):
        with pytest.raises(ValueError):
            make_resilient(4).resize(0)

    def test_jobs_run_after_resize(self):
        engine = make_resilient(4, num_places=4)
        generate_input(engine.filesystem, "/in", 80, 64, 4)
        assert engine.run_job(microbenchmark_job("/in", "/work/temp-a", 0, 4)).succeeded
        engine.resize(3)
        result = engine.run_job(microbenchmark_job("/work/temp-a", "/out", 0, 4))
        assert result.succeeded
        assert len(engine.filesystem.read_kv_pairs("/out")) == 80
