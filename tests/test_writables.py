"""Writable types: wire-format round trips, sizes, ordering, cloning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.api.io_util import DataInputBuffer, DataOutputBuffer
from repro.api.writables import (
    ArrayWritable,
    BlockIndexWritable,
    BooleanWritable,
    BytesWritable,
    DoubleWritable,
    FloatWritable,
    IntWritable,
    LongWritable,
    MatrixBlockWritable,
    NullWritable,
    PairWritable,
    Text,
    VectorBlockWritable,
    VIntWritable,
    writable_from_bytes,
    writable_to_bytes,
)


def roundtrip(writable):
    """Serialize and re-read a writable; returns the fresh object."""
    data = writable_to_bytes(writable)
    assert len(data) == writable.serialized_size()
    return writable_from_bytes(type(writable), data)


class TestScalars:
    @pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31)])
    def test_int_roundtrip(self, value):
        assert roundtrip(IntWritable(value)) == IntWritable(value)

    @pytest.mark.parametrize("value", [0, 1, -1, 2**63 - 1, -(2**63)])
    def test_long_roundtrip(self, value):
        assert roundtrip(LongWritable(value)) == LongWritable(value)

    @pytest.mark.parametrize("value", [0.0, 1.5, -2.25, 1e300, -1e-300])
    def test_double_roundtrip(self, value):
        assert roundtrip(DoubleWritable(value)) == DoubleWritable(value)

    def test_float_roundtrip(self):
        assert roundtrip(FloatWritable(1.5)) == FloatWritable(1.5)

    @pytest.mark.parametrize("value", [True, False])
    def test_boolean_roundtrip(self, value):
        assert roundtrip(BooleanWritable(value)) == BooleanWritable(value)

    def test_int_set_get(self):
        w = IntWritable(5)
        w.set(9)
        assert w.get() == 9

    def test_int_ordering(self):
        assert IntWritable(1) < IntWritable(2)
        assert IntWritable(2) > IntWritable(1)
        assert IntWritable(3).compare_to(IntWritable(3)) == 0

    def test_null_writable_is_singleton(self):
        assert NullWritable.get() is NullWritable()
        assert NullWritable.get().serialized_size() == 0
        assert NullWritable.get().clone() is NullWritable.get()

    def test_hashable_as_dict_keys(self):
        counts = {IntWritable(1): "a", Text("x"): "b"}
        assert counts[IntWritable(1)] == "a"
        assert counts[Text("x")] == "b"


class TestVInt:
    @pytest.mark.parametrize("value", [0, 1, -1, 127, -112, 128, -113, 10**9, -(10**9)])
    def test_roundtrip(self, value):
        assert roundtrip(VIntWritable(value)) == VIntWritable(value)

    def test_small_values_are_one_byte(self):
        assert VIntWritable(0).serialized_size() == 1
        assert VIntWritable(127).serialized_size() == 1
        assert VIntWritable(-112).serialized_size() == 1

    def test_larger_values_grow(self):
        assert VIntWritable(128).serialized_size() == 2
        assert VIntWritable(1 << 20).serialized_size() == 4

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        assert roundtrip(VIntWritable(value)).get() == value


class TestText:
    @pytest.mark.parametrize("value", ["", "hello", "héllo wörld", "日本語", "a\tb\nc"])
    def test_roundtrip(self, value):
        assert roundtrip(Text(value)) == Text(value)

    def test_compares_as_utf8_bytes(self):
        # Hadoop compares the UTF-8 encodings, not code points.
        a, b = Text("a"), Text("é")
        assert (a < b) == (a.to_string().encode() < b.to_string().encode())

    def test_set_mutates(self):
        t = Text("x")
        t.set("y")
        assert t.to_string() == "y"

    def test_str(self):
        assert str(Text("abc")) == "abc"

    @given(st.text(max_size=200))
    @settings(max_examples=150)
    def test_roundtrip_property(self, value):
        assert roundtrip(Text(value)).to_string() == value


class TestBytesWritable:
    @pytest.mark.parametrize("data", [b"", b"\x00\x01\x02", bytes(range(256))])
    def test_roundtrip(self, data):
        assert roundtrip(BytesWritable(data)) == BytesWritable(data)

    @given(st.binary(max_size=500))
    @settings(max_examples=100)
    def test_roundtrip_property(self, data):
        assert roundtrip(BytesWritable(data)).get_bytes() == data

    def test_length(self):
        assert BytesWritable(b"abc").get_length() == 3


class TestComposites:
    def test_array_roundtrip(self):
        arr = ArrayWritable(IntWritable, [IntWritable(i) for i in range(5)])
        back = roundtrip(arr)
        # read_fields on a default-constructed ArrayWritable uses its
        # declared element class, so round-trip through the declared type.
        data = writable_to_bytes(arr)
        fresh = ArrayWritable(IntWritable)
        from repro.api.io_util import DataInputBuffer

        fresh.read_fields(DataInputBuffer(data))
        assert fresh == arr

    def test_pair_roundtrip_and_order(self):
        p = PairWritable(IntWritable(1), IntWritable(2))
        data = writable_to_bytes(p)
        fresh = PairWritable(IntWritable(), IntWritable())
        fresh.read_fields(DataInputBuffer(data))
        assert fresh == p
        assert PairWritable(IntWritable(1), IntWritable(2)) < PairWritable(
            IntWritable(1), IntWritable(3)
        )
        assert PairWritable(IntWritable(0), IntWritable(9)) < PairWritable(
            IntWritable(1), IntWritable(0)
        )

    def test_block_index_ordering_row_major(self):
        assert BlockIndexWritable(0, 5) < BlockIndexWritable(1, 0)
        assert BlockIndexWritable(2, 1) < BlockIndexWritable(2, 3)
        assert BlockIndexWritable(1, 1) == BlockIndexWritable(1, 1)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_block_index_roundtrip(self, row, col):
        back = roundtrip(BlockIndexWritable(row, col))
        assert (back.row, back.col) == (row, col)


class TestMatrixBlocks:
    def test_matrix_block_roundtrip(self):
        m = sparse.random(30, 20, density=0.2, format="csc", random_state=0)
        block = MatrixBlockWritable(m)
        back = roundtrip(block)
        assert back == block
        assert back.shape == (30, 20)

    def test_empty_matrix_block(self):
        block = MatrixBlockWritable(sparse.csc_matrix((10, 10)))
        assert roundtrip(block) == block
        assert block.nnz == 0

    def test_vector_block_roundtrip(self):
        v = VectorBlockWritable(np.arange(17, dtype=float))
        back = roundtrip(v)
        assert back == v
        assert len(back) == 17

    def test_clone_is_deep(self):
        v = VectorBlockWritable(np.ones(4))
        c = v.clone()
        c.values[0] = 99.0
        assert v.values[0] == 1.0

    def test_matrix_clone_is_deep(self):
        m = MatrixBlockWritable(sparse.eye(5, format="csc"))
        c = m.clone()
        c.matrix.data[0] = 42.0
        assert m.matrix.data[0] == 1.0


class TestClone:
    @pytest.mark.parametrize(
        "writable",
        [
            IntWritable(7),
            LongWritable(-9),
            Text("clone me"),
            BytesWritable(b"\x01\x02"),
            DoubleWritable(2.5),
            BlockIndexWritable(3, 4),
        ],
    )
    def test_clone_equal_but_distinct(self, writable):
        c = writable.clone()
        assert c == writable
        assert c is not writable

    def test_clone_then_mutate_original(self):
        t = Text("before")
        c = t.clone()
        t.set("after")
        assert c.to_string() == "before"
