"""The mini-SystemML front end: lexer, parser, AST shapes, error paths."""

from __future__ import annotations

import pytest

from repro.sysml.ast_nodes import (
    Assign,
    BinOp,
    Call,
    ExprStatement,
    ForLoop,
    IfElse,
    Neg,
    Num,
    Str,
    Var,
    WhileLoop,
)
from repro.sysml.lexer import LexError, Token, tokenize
from repro.sysml.parser import SyntaxErrorDML, parse_script


class TestLexer:
    def test_basic_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("x = 3.5 + y")]
        assert kinds == [
            ("ID", "x"), ("OP", "="), ("NUMBER", "3.5"), ("OP", "+"),
            ("ID", "y"), ("EOF", ""),
        ]

    def test_matmul_operator_is_one_token(self):
        tokens = tokenize("A %*% B")
        assert [t.text for t in tokens[:3]] == ["A", "%*%", "B"]

    def test_strings(self):
        tokens = tokenize('read("path/to.csv")')
        assert tokens[2] == Token("STRING", "path/to.csv", 1, 6)

    def test_comments_stripped(self):
        tokens = tokenize("a = 1 # comment with %*% junk\nb = 2")
        texts = [t.text for t in tokens if t.kind != "EOF"]
        assert texts == ["a", "=", "1", "b", "=", "2"]

    def test_keywords_classified(self):
        tokens = tokenize("for (i in 1:3) {}")
        assert tokens[0].kind == "KEYWORD"
        assert tokens[3].kind == "KEYWORD"

    def test_scientific_numbers(self):
        assert tokenize("1e-6")[0].text == "1e-6"
        assert tokenize("2.5E+3")[0].text == "2.5E+3"

    def test_line_tracking(self):
        tokens = tokenize("a = 1\nbb = 2")
        assert tokens[3].line == 2

    def test_lex_errors(self):
        with pytest.raises(LexError):
            tokenize("a = @")
        with pytest.raises(LexError):
            tokenize('a = "unterminated')


class TestParser:
    def test_assignment(self):
        program = parse_script("x = 1 + 2 * 3")
        assert len(program.statements) == 1
        stmt = program.statements[0]
        assert isinstance(stmt, Assign) and stmt.name == "x"
        assert isinstance(stmt.value, BinOp) and stmt.value.op == "+"
        assert stmt.value.right.op == "*"  # precedence

    def test_matmul_binds_tighter_than_elementwise(self):
        stmt = parse_script("y = A * B %*% C").statements[0]
        assert stmt.value.op == "*"
        assert isinstance(stmt.value.right, BinOp)
        assert stmt.value.right.op == "%*%"

    def test_left_associativity(self):
        stmt = parse_script("y = a - b - c").statements[0]
        assert stmt.value.op == "-"
        assert isinstance(stmt.value.left, BinOp)  # (a - b) - c

    def test_unary_minus(self):
        stmt = parse_script("y = -x + 1").statements[0]
        assert isinstance(stmt.value.left, Neg)

    def test_parentheses(self):
        stmt = parse_script("y = (a + b) * c").statements[0]
        assert stmt.value.op == "*"
        assert stmt.value.left.op == "+"

    def test_calls_with_args(self):
        stmt = parse_script('w = read("X")').statements[0]
        assert isinstance(stmt.value, Call)
        assert stmt.value.name == "read"
        assert isinstance(stmt.value.args[0], Str)

    def test_nested_calls(self):
        stmt = parse_script("n = sum(t(A) %*% A)").statements[0]
        call = stmt.value
        assert call.name == "sum"
        assert isinstance(call.args[0], BinOp)

    def test_for_loop(self):
        program = parse_script("for (i in 1:10) { x = i\n y = x }")
        loop = program.statements[0]
        assert isinstance(loop, ForLoop)
        assert loop.var == "i"
        assert isinstance(loop.start, Num) and isinstance(loop.stop, Num)
        assert len(loop.body) == 2

    def test_while_loop(self):
        loop = parse_script("while (x < 10) { x = x + 1 }").statements[0]
        assert isinstance(loop, WhileLoop)
        assert loop.condition.op == "<"

    def test_if_else(self):
        stmt = parse_script("if (a > b) { c = 1 } else { c = 2 }").statements[0]
        assert isinstance(stmt, IfElse)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = parse_script("if (a == 1) { b = 2 }").statements[0]
        assert stmt.else_body == []

    def test_bare_call_statement(self):
        stmt = parse_script('write(W, "/out/W")').statements[0]
        assert isinstance(stmt, ExprStatement)
        assert stmt.value.name == "write"

    def test_arrow_assignment(self):
        stmt = parse_script("x <- 5").statements[0]
        assert isinstance(stmt, Assign)

    def test_semicolons_allowed(self):
        program = parse_script("a = 1; b = 2;")
        assert len(program.statements) == 2

    def test_comparison_in_expression(self):
        stmt = parse_script("flag = a >= b + 1").statements[0]
        assert stmt.value.op == ">="

    @pytest.mark.parametrize("bad", [
        "x = ", "for (i in 1) { }", "x = (1 + 2", "if (x { }",
        "while x { }", "} stray", "x = 1 +",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SyntaxErrorDML):
            parse_script(bad)

    def test_paper_scripts_parse(self):
        from repro.sysml import scripts

        for script in (scripts.GNMF_SCRIPT, scripts.LINREG_SCRIPT,
                       scripts.PAGERANK_SCRIPT):
            program = parse_script(scripts.with_iterations(script, 2))
            assert program.statements
