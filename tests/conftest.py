"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import hadoop_engine, m3r_engine
from repro.fs import InMemoryFileSystem, SimulatedHDFS
from repro.sim import Cluster


@pytest.fixture
def cluster4() -> Cluster:
    return Cluster(num_nodes=4)


@pytest.fixture
def hdfs(cluster4: Cluster) -> SimulatedHDFS:
    return SimulatedHDFS(cluster4, block_size=64 * 1024, replication=2)


@pytest.fixture
def memfs() -> InMemoryFileSystem:
    return InMemoryFileSystem()


@pytest.fixture
def hadoop4():
    """A 4-node Hadoop engine over its own HDFS."""
    fs = SimulatedHDFS(Cluster(4), block_size=64 * 1024, replication=2)
    return hadoop_engine(filesystem=fs)


@pytest.fixture
def m3r4():
    """A 4-place M3R engine over its own HDFS."""
    fs = SimulatedHDFS(Cluster(4), block_size=64 * 1024, replication=2)
    engine = m3r_engine(filesystem=fs)
    yield engine
    engine.shutdown()


def make_hadoop(num_nodes: int = 4, **kwargs):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return hadoop_engine(filesystem=fs, **kwargs)


def make_m3r(num_nodes: int = 4, **kwargs):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return m3r_engine(filesystem=fs, **kwargs)
