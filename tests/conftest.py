"""Shared fixtures for the test suite.

Set ``M3R_SERVICE=1`` to route every ``make_m3r``/``make_hadoop`` engine
through a single-tenant :class:`repro.service.JobService` client: the
whole suite then exercises service admission, fair scheduling and the
wait/re-raise path, and must observe byte-identical behaviour (the
service's determinism contract).
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time

import pytest

from repro import hadoop_engine, m3r_engine
from repro.fs import InMemoryFileSystem, SimulatedHDFS
from repro.sim import Cluster


@pytest.fixture(autouse=True)
def _no_orphaned_workers():
    """Every test must leave zero live worker processes behind.

    Engines own their process places (``ProcessPlaceBackend``); a test
    that builds one must shut it down (or drop its last reference — the
    backend's finalizer reaps the pool on collection).  A lingering
    child here means a worker leak: the pool would pile up across the
    suite and outlive the pytest process.
    """
    yield
    if not multiprocessing.active_children():
        return
    # Engines built inline (make_m3r) are usually unreferenced by now;
    # collecting runs the backend finalizers, which stop their workers.
    gc.collect()
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = multiprocessing.active_children()
    assert not leaked, (
        f"test leaked {len(leaked)} worker process(es): "
        f"{[p.pid for p in leaked]} — call engine.shutdown()"
    )


@pytest.fixture
def cluster4() -> Cluster:
    return Cluster(num_nodes=4)


@pytest.fixture
def hdfs(cluster4: Cluster) -> SimulatedHDFS:
    return SimulatedHDFS(cluster4, block_size=64 * 1024, replication=2)


@pytest.fixture
def memfs() -> InMemoryFileSystem:
    return InMemoryFileSystem()


@pytest.fixture
def hadoop4():
    """A 4-node Hadoop engine over its own HDFS."""
    fs = SimulatedHDFS(Cluster(4), block_size=64 * 1024, replication=2)
    engine = hadoop_engine(filesystem=fs)
    yield engine
    engine.shutdown()


@pytest.fixture
def m3r4():
    """A 4-place M3R engine over its own HDFS."""
    fs = SimulatedHDFS(Cluster(4), block_size=64 * 1024, replication=2)
    engine = m3r_engine(filesystem=fs)
    yield engine
    engine.shutdown()


def _maybe_service(engine):
    """Under M3R_SERVICE=1, hand back a service tenant client instead of
    the bare engine (drop-in: unknown attributes delegate to the engine)."""
    if os.environ.get("M3R_SERVICE") != "1":
        return engine
    from repro.service import JobService

    return JobService(engine).register_tenant("suite")


def make_hadoop(num_nodes: int = 4, **kwargs):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return _maybe_service(hadoop_engine(filesystem=fs, **kwargs))


def make_m3r(num_nodes: int = 4, **kwargs):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return _maybe_service(m3r_engine(filesystem=fs, **kwargs))
