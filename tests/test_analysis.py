"""Tests for the static lint half of repro.analysis.

Each rule gets a fixture pair: a known-bad snippet it must fire on, and
the fixed version it must stay silent on.  The suite also covers the
``# noqa`` suppression convention, baseline write/diff, the reporters, and
the self-gate: the shipped ``src/repro`` tree must be clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Analyzer,
    diff_baseline,
    findings_to_document,
    load_baseline,
    new_findings,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.callgraph import build_call_graph
import ast


def run_lint(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return Analyzer().run([path])


def rules_fired(findings, *, include_suppressed: bool = False):
    return {
        f.rule
        for f in findings
        if include_suppressed or not f.suppressed
    }


# --------------------------------------------------------------------- #
# M3R001: parameter mutation on an async-reachable path
# --------------------------------------------------------------------- #

M3R001_BAD = """
def task_body(shared, index):
    shared.append(index)

def driver(scope, items):
    for i in range(len(items)):
        scope.async_at(None, task_body, i)
"""

M3R001_FIXED = """
def task_body(shared, index, lock):
    with lock:
        shared.append(index)

def driver(scope, items):
    for i in range(len(items)):
        scope.async_at(None, task_body, i)
"""


def test_m3r001_fires_on_unlocked_mutation(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    assert "M3R001" in rules_fired(findings)
    (finding,) = [f for f in findings if f.rule == "M3R001"]
    assert finding.symbol == "task_body"
    assert "shared" in finding.message


def test_m3r001_silent_when_lock_held(tmp_path):
    findings = run_lint(tmp_path, M3R001_FIXED)
    assert "M3R001" not in rules_fired(findings)


def test_m3r001_silent_for_driver_only_function(tmp_path):
    source = """
def helper(out, x):
    out.append(x)

def main(items):
    acc = []
    for x in items:
        helper(acc, x)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R001" not in rules_fired(findings)


def test_m3r001_sees_through_spawn_forwarders(tmp_path):
    # bounded_task_fn-style wrapper: the body is spawned indirectly.
    source = """
def wrapper(task_fn):
    def bounded(i):
        return task_fn(i)
    return bounded

def body(shared, i):
    shared[i] = 1

def driver(scope):
    bounded = wrapper(body)
    scope.submit(bounded)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R001" in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R002: unordered iteration feeding shuffle-plan/replay ordering
# --------------------------------------------------------------------- #

M3R002_BAD = """
def build_plan(destinations):
    order = []
    for dest in set(destinations):
        order.append(dest)
    return order
"""

M3R002_FIXED = """
def build_plan(destinations):
    order = []
    for dest in sorted(set(destinations)):
        order.append(dest)
    return order
"""


def test_m3r002_fires_on_set_iteration_in_plan(tmp_path):
    findings = run_lint(tmp_path, M3R002_BAD)
    assert "M3R002" in rules_fired(findings)


def test_m3r002_silent_when_sorted(tmp_path):
    findings = run_lint(tmp_path, M3R002_FIXED)
    assert "M3R002" not in rules_fired(findings)


def test_m3r002_covers_dict_values_reached_from_replay(tmp_path):
    source = """
def charge(by_place):
    total = 0
    for v in by_place.values():
        total += v
    return total

def replay(plan):
    return charge(plan)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R002" in rules_fired(findings)


def test_m3r002_ignores_unrelated_code(tmp_path):
    source = """
def unrelated(d):
    return [v for v in d.values()]
"""
    findings = run_lint(tmp_path, source)
    assert "M3R002" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R003: ImmutableOutput attribute writes outside builders
# --------------------------------------------------------------------- #

M3R003_BAD = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.count = 0

    def map(self, key, value, output, reporter):
        self.count += 1
        output.collect(key, value)
"""

M3R003_FIXED = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.count = 0

    def map(self, key, value, output, reporter):
        output.collect(key, value)
"""


def test_m3r003_fires_on_post_construction_write(tmp_path):
    findings = run_lint(tmp_path, M3R003_BAD)
    assert "M3R003" in rules_fired(findings)
    (finding,) = [f for f in findings if f.rule == "M3R003"]
    assert finding.symbol == "Mapper.map"


def test_m3r003_silent_on_fixed_class(tmp_path):
    findings = run_lint(tmp_path, M3R003_FIXED)
    assert "M3R003" not in rules_fired(findings)


def test_m3r003_follows_transitive_subclassing(tmp_path):
    source = """
class ImmutableOutput:
    pass

class Base(ImmutableOutput):
    pass

class Leaf(Base):
    def poke(self):
        self.x = 1
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R003"]
    assert fired and fired[0].symbol == "Leaf.poke"


def test_m3r003_allows_init_and_configure(tmp_path):
    source = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.a = 1

    def configure(self, conf):
        self.b = conf

    def with_limit(self, n):
        self.limit = n
        return self
"""
    findings = run_lint(tmp_path, source)
    assert "M3R003" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R004: swallowed broad exceptions
# --------------------------------------------------------------------- #

M3R004_BAD = """
def fragile():
    try:
        return compute()
    except Exception:
        return None
"""

M3R004_FIXED = """
def fragile(log):
    try:
        return compute()
    except Exception as exc:
        log.warning("compute failed: %s", exc)
        return None
"""


def test_m3r004_fires_on_swallowing_handler(tmp_path):
    findings = run_lint(tmp_path, M3R004_BAD)
    assert "M3R004" in rules_fired(findings)


def test_m3r004_silent_when_exception_is_reported(tmp_path):
    findings = run_lint(tmp_path, M3R004_FIXED)
    assert "M3R004" not in rules_fired(findings)


def test_m3r004_silent_on_reraise(tmp_path):
    source = """
def fragile():
    try:
        return compute()
    except Exception:
        raise
"""
    findings = run_lint(tmp_path, source)
    assert "M3R004" not in rules_fired(findings)


def test_m3r004_fires_on_bare_except(tmp_path):
    source = """
def fragile():
    try:
        return compute()
    except:
        pass
"""
    findings = run_lint(tmp_path, source)
    assert "M3R004" in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R005: package __init__ without __all__
# --------------------------------------------------------------------- #


def test_m3r005_fires_on_missing_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from math import pi\n")
    findings = Analyzer().run([pkg])
    assert "M3R005" in rules_fired(findings)


def test_m3r005_silent_with_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from math import pi\n__all__ = ['pi']\n")
    findings = Analyzer().run([pkg])
    assert "M3R005" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R006: unpicklable capture reaching a spawn/serialize boundary
# --------------------------------------------------------------------- #

M3R006_BAD = """
import threading

def run_stage(scope, items):
    lock = threading.Lock()
    def task(i):
        with lock:
            items[i] = 1
    scope.finish_collect(task)
"""

M3R006_FIXED = """
def run_stage(scope, items):
    def task(i):
        items[i] = 1
    scope.finish_collect(task)
"""


def test_m3r006_fires_on_lock_capture_crossing_spawn(tmp_path):
    findings = run_lint(tmp_path, M3R006_BAD)
    fired = [f for f in findings if f.rule == "M3R006"]
    assert fired
    assert "lock" in fired[0].message
    assert "finish_collect" in fired[0].message
    assert fired[0].symbol == "run_stage.task"


def test_m3r006_silent_without_fatal_capture(tmp_path):
    findings = run_lint(tmp_path, M3R006_FIXED)
    assert "M3R006" not in rules_fired(findings)


def test_m3r006_silent_when_closure_never_crosses_boundary(tmp_path):
    source = """
import threading

def local_only(items):
    lock = threading.Lock()
    def helper(i):
        with lock:
            items[i] = 1
    for i in range(3):
        helper(i)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R006" not in rules_fired(findings)


def test_m3r006_sees_anonymous_lambda_argument(tmp_path):
    source = """
import threading

def run(scope):
    lock = threading.Lock()
    scope.submit(lambda: lock.acquire())
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R006"]
    assert fired and "<lambda>" in fired[0].symbol


def test_m3r006_taint_flows_through_call_edges(tmp_path):
    # The lock is created in the driver and *passed* to the stage; the
    # stage's task body captures the tainted parameter.
    source = """
import threading

def stage(scope, guard):
    def task(i):
        with guard:
            return i
    scope.finish_collect(task)

def driver(scope):
    lock = threading.Lock()
    stage(scope, lock)
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R006"]
    assert fired and "guard" in fired[0].message


def test_m3r006_serialize_boundary_counts(tmp_path):
    source = """
def measure_stage(serializer, handle_factory):
    fh = open("/tmp/x")
    task = lambda: fh.read()
    serializer.measure(task)
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R006"]
    assert fired and "file-handle" in fired[0].message


# --------------------------------------------------------------------- #
# M3R007: lambda / local callable registered on a JobSpec
# --------------------------------------------------------------------- #

M3R007_BAD = """
def build_job(conf):
    class LocalMapper:
        def map(self, k, v, out, rep):
            out.collect(k, v)
    conf.set_mapper_class(LocalMapper)
"""

M3R007_FIXED = """
class ModuleMapper:
    def map(self, k, v, out, rep):
        out.collect(k, v)

def build_job(conf):
    conf.set_mapper_class(ModuleMapper)
"""


def test_m3r007_fires_on_local_class(tmp_path):
    findings = run_lint(tmp_path, M3R007_BAD)
    fired = [f for f in findings if f.rule == "M3R007"]
    assert fired
    assert "LocalMapper" in fired[0].message
    assert "set_mapper_class" in fired[0].message


def test_m3r007_silent_on_module_level_class(tmp_path):
    findings = run_lint(tmp_path, M3R007_FIXED)
    assert "M3R007" not in rules_fired(findings)


def test_m3r007_fires_on_inline_lambda(tmp_path):
    source = """
def build_job(conf):
    conf.set_partitioner_class(lambda k, n: hash(k) % n)
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R007"]
    assert fired and "a lambda" in fired[0].message


def test_m3r007_fires_on_name_bound_lambda_and_nested_def(tmp_path):
    source = """
def build_job(conf):
    part = lambda k, n: 0
    def combiner():
        pass
    conf.set_partitioner_class(part)
    conf.set_combiner_class(combiner)
"""
    findings = run_lint(tmp_path, source)
    fired = sorted(f.message for f in findings if f.rule == "M3R007")
    assert len(fired) == 2
    assert any("lambda 'part'" in m for m in fired)
    assert any("local function 'combiner'" in m for m in fired)


def test_m3r007_ignores_non_setter_calls(tmp_path):
    source = """
def helper(conf):
    fn = lambda: 1
    conf.register_hook(fn)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R007" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R008: order-sensitive float accumulation on an async path
# --------------------------------------------------------------------- #

M3R008_BAD = """
class Tracker:
    def on_task_done(self, dt):
        self.elapsed_seconds += dt

def driver(scope, tracker):
    scope.async_at(None, tracker.on_task_done, 0.5)
"""

M3R008_FIXED = """
import math

class Tracker:
    def on_task_done(self, dt):
        self.addends.append(dt)

    def finish(self):
        self.elapsed_seconds = math.fsum(self.addends)

def driver(scope, tracker):
    scope.async_at(None, tracker.on_task_done, 0.5)
"""


def test_m3r008_fires_on_float_augassign_in_async_reachable(tmp_path):
    findings = run_lint(tmp_path, M3R008_BAD)
    fired = [f for f in findings if f.rule == "M3R008"]
    assert fired
    assert "self.elapsed_seconds" in fired[0].message
    assert "fsum" in fired[0].message


def test_m3r008_silent_on_fsum_pattern(tmp_path):
    findings = run_lint(tmp_path, M3R008_FIXED)
    assert "M3R008" not in rules_fired(findings)


def test_m3r008_silent_on_driver_only_accumulation(tmp_path):
    source = """
class Clock:
    def advance(self, seconds):
        self.now_seconds += seconds

def main(clock):
    clock.advance(1.5)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R008" not in rules_fired(findings)


def test_m3r008_silent_on_integer_counter(tmp_path):
    source = """
class Counter:
    def on_record(self, n):
        self.records += n

def driver(scope, counter):
    scope.async_at(None, counter.on_record, 1)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R008" not in rules_fired(findings)


def test_m3r008_fires_on_time_source_fed_subscript(tmp_path):
    source = """
from time import perf_counter

def worker(stats, key):
    stats[key] += perf_counter()

def driver(scope):
    scope.submit(worker)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R008" in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R009: associativity claims the reduce body belies
# --------------------------------------------------------------------- #

M3R009_BAD = """
class AssociativeReducer:
    pass

class BadSum(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        self.seen += 1
        output.collect(key, sum(values))
"""

M3R009_FIXED = """
class AssociativeReducer:
    pass

class GoodSum(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        total = 0
        for v in values:
            total += v
        output.collect(key, total)
"""


def test_m3r009_fires_on_cross_call_state(tmp_path):
    findings = run_lint(tmp_path, M3R009_BAD)
    fired = [f for f in findings if f.rule == "M3R009"]
    assert fired
    assert fired[0].symbol == "BadSum.reduce"
    assert "cross-call state" in fired[0].message


def test_m3r009_silent_on_pure_fold(tmp_path):
    findings = run_lint(tmp_path, M3R009_FIXED)
    assert "M3R009" not in rules_fired(findings)


def test_m3r009_fires_on_input_mutation(tmp_path):
    source = """
class AssociativeReducer:
    pass

class Mutator(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        values.sort()
        output.collect(key, values)
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R009"]
    assert fired and "mutates input 'values'" in fired[0].message


def test_m3r009_fires_on_arrival_order_branching(tmp_path):
    source = """
class AssociativeReducer:
    pass

class FirstWins(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        output.collect(key, values[0])
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R009"]
    assert fired and "arrival order" in fired[0].message


def test_m3r009_covers_transitive_subclasses_and_allowlist(tmp_path):
    source = """
class AssociativeReducer:
    pass

class Base(AssociativeReducer):
    pass

class Leaf(Base):
    def reduce(self, key, values, output, reporter):
        for i, v in enumerate(values):
            output.collect(key, v)
"""
    findings = run_lint(tmp_path, source)
    assert any(
        f.rule == "M3R009" and f.symbol == "Leaf.reduce" for f in findings
    )

    allow = """
ASSOCIATIVE_ALLOWLIST = frozenset({"reducers.Claimed"})

class Claimed:
    def reduce(self, key, values, output, reporter):
        self.state = key
"""
    findings = run_lint(tmp_path, allow, name="reducers.py")
    assert any(
        f.rule == "M3R009" and f.symbol == "Claimed.reduce" for f in findings
    )


def test_m3r009_unclaimed_reducer_is_free_to_do_anything(tmp_path):
    source = """
class Plain:
    def reduce(self, key, values, output, reporter):
        self.seen += 1
        output.collect(key, values[0])
"""
    findings = run_lint(tmp_path, source)
    assert "M3R009" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R010: m3r.* knob literal outside the KnobRegistry
# --------------------------------------------------------------------- #


def test_m3r010_fires_on_registered_key_literal(tmp_path):
    source = 'KEY = "m3r.cache.capacity-bytes"\n'
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R010"]
    assert fired and "use the derived constant" in fired[0].message


def test_m3r010_fires_on_unknown_key_literal(tmp_path):
    source = 'KEY = "m3r.cache.capacty-bytes"\n'  # typo
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R010"]
    assert fired and "not in the KnobRegistry" in fired[0].message


def test_m3r010_ignores_non_knob_strings(tmp_path):
    source = '\n'.join([
        'A = "m3r"',
        'B = "m3r."',
        'C = "the m3r.cache.spill knob"  # prose, not a bare key',
        'D = "M3R_BATCH"',
    ]) + '\n'
    findings = run_lint(tmp_path, source)
    assert "M3R010" not in rules_fired(findings)


def test_m3r010_exempts_the_registry_module(tmp_path):
    source = """
class KnobRegistry:
    pass

KEY = "m3r.cache.capacity-bytes"
"""
    findings = run_lint(tmp_path, source)
    assert "M3R010" not in rules_fired(findings)


def test_m3r010_src_tree_defines_keys_only_in_the_registry():
    """The acceptance criterion: every m3r.* literal in src/ lives in
    knobs.py (or carries a justified suppression)."""
    package_root = Path(repro.__file__).parent
    findings = Analyzer().run([package_root])
    active = [f for f in findings if f.rule == "M3R010" and not f.suppressed]
    assert active == [], "\n" + render_text(active)


# --------------------------------------------------------------------- #
# the 20-fixture true/false-positive matrix for the dataflow-era rules
# --------------------------------------------------------------------- #

_MATRIX = [
    # (rule, fires, source)
    ("M3R006", True, M3R006_BAD),
    ("M3R006", True, """
import threading

def stage(scope):
    t = threading.Thread(target=print)
    body = lambda: t.join()
    scope.async_at(None, body)
"""),
    ("M3R006", False, M3R006_FIXED),
    ("M3R006", False, """
def stage(scope, engine):
    def task(i):
        return engine.lookup(i)
    scope.finish_collect(task)
"""),  # engine-ref is advisory, not fatal
    ("M3R007", True, M3R007_BAD),
    ("M3R007", True, """
def build(conf):
    def fmt():
        pass
    conf.set_input_format(fmt)
"""),
    ("M3R007", False, M3R007_FIXED),
    ("M3R007", False, """
def build(conf, mapper_cls):
    conf.set_mapper_class(mapper_cls)
"""),  # a parameter has module-level identity at the call site
    ("M3R008", True, M3R008_BAD),
    ("M3R008", True, """
def body(metrics, dt):
    metrics.total_cost += dt / 2.0

def driver(scope):
    scope.submit(body)
"""),
    ("M3R008", False, M3R008_FIXED),
    ("M3R008", False, """
def body(out, i):
    local_seconds = 0.0
    local_seconds += 1.5
    out[i] = local_seconds

def driver(scope):
    scope.submit(body)
"""),  # local accumulator: single-task, order-free
    ("M3R009", True, M3R009_BAD),
    ("M3R009", True, """
class AssociativeReducer:
    pass

class Popper(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        values.pop()
"""),
    ("M3R009", False, M3R009_FIXED),
    ("M3R009", False, """
class AssociativeReducer:
    pass

class MaxReducer(AssociativeReducer):
    def reduce(self, key, values, output, reporter):
        best = None
        for v in values:
            if best is None or v > best:
                best = v
        output.collect(key, best)
"""),
    ("M3R010", True, 'KEY = "m3r.shuffle.real-threads"\n'),
    ("M3R010", True, 'conf = {"m3r.no.such.knob": 1}\n'),
    ("M3R010", False, 'ENV = "M3R_CONF_STRICT"\n'),
    ("M3R010", False, 'DOC = "set the m3r.cache.spill knob to false"\n'),
]


@pytest.mark.parametrize(
    "rule,fires,source",
    _MATRIX,
    ids=[
        f"{rule}-{'tp' if fires else 'fp'}-{i}"
        for i, (rule, fires, _) in enumerate(_MATRIX)
    ],
)
def test_rule_matrix(tmp_path, rule, fires, source):
    findings = run_lint(tmp_path, source)
    if fires:
        assert rule in rules_fired(findings)
    else:
        assert rule not in rules_fired(findings)


# --------------------------------------------------------------------- #
# the dataflow layer itself: capture summaries and taint
# --------------------------------------------------------------------- #


def _dataflow_for(source: str):
    from repro.analysis.dataflow import analyze_dataflow

    graph = build_call_graph([("mod.py", ast.parse(source))])
    return graph, analyze_dataflow(graph)


def _summary_of(graph, dataflow, qualname: str):
    for fn in graph.functions:
        if fn.qualname == qualname:
            return dataflow.summary(fn)
    raise AssertionError(f"no function {qualname!r}")


def test_dataflow_nested_closure_captures_through_levels():
    source = """
import threading

def outer():
    lock = threading.Lock()
    def middle():
        def inner():
            with lock:
                pass
        return inner
    return middle
"""
    graph, dataflow = _dataflow_for(source)
    outer = _summary_of(graph, dataflow, "outer")
    # `middle` transitively keeps `lock` alive: inner's loads count.
    (middle,) = [c for c in outer.closures if c.name == "middle"]
    assert "lock" in middle.free_names
    assert any(c.name == "lock" and c.kind == "lock" and c.fatal
               for c in middle.captures)
    # One level down: `lock` is free in `inner` too (raw free-variable
    # math), but it is not a *capture from middle's scope* — middle never
    # binds it, so the classified capture correctly lives on `middle`.
    from repro.analysis.dataflow import free_names as raw_free_names

    mid_summary = _summary_of(graph, dataflow, "outer.middle")
    (inner,) = [c for c in mid_summary.closures if c.name == "inner"]
    assert "lock" in raw_free_names(inner_node(graph))
    assert inner.free_names == set()


def inner_node(graph):
    for fn in graph.functions:
        if fn.qualname == "outer.middle.inner":
            return fn.node
    raise AssertionError("no inner")


def test_dataflow_factory_returned_callable_taints_caller():
    source = """
import threading

def make_task(guard):
    def task(i):
        with guard:
            return i
    return task

def driver(scope):
    lock = threading.Lock()
    t = make_task(lock)
    scope.submit(t)
"""
    graph, dataflow = _dataflow_for(source)
    factory = _summary_of(graph, dataflow, "make_task")
    assert "lock" in factory.tainted_params.get("guard", set())
    (task,) = [c for c in factory.closures if c.name == "task"]
    guard = [c for c in task.captures if c.name == "guard"]
    assert guard and guard[0].fatal and guard[0].kind.startswith("param:")


def test_dataflow_functools_partial_binding_is_a_plain_local():
    # functools.partial over a module-level function is picklable: the
    # summary must NOT classify the bound name as a fatal kind.
    source = """
import functools

def work(a, b):
    return a + b

def driver(scope):
    bound = functools.partial(work, 1)
    def task():
        return bound()
    scope.submit(task)
"""
    graph, dataflow = _dataflow_for(source)
    driver = _summary_of(graph, dataflow, "driver")
    assert "bound" not in driver.bindings  # not a recognized fatal kind
    (task,) = [c for c in driver.closures if c.name == "task"]
    bound = [c for c in task.captures if c.name == "bound"]
    assert bound and not bound[0].fatal and bound[0].kind == "local"


def test_dataflow_keyword_argument_taint_alignment():
    source = """
import threading

def stage(scope, guard=None):
    return guard

def driver(scope):
    lock = threading.Lock()
    stage(scope, guard=lock)
"""
    graph, dataflow = _dataflow_for(source)
    stage = _summary_of(graph, dataflow, "stage")
    assert "lock" in stage.tainted_params.get("guard", set())


def test_dataflow_self_offset_for_attribute_calls():
    source = """
import threading

class Runner:
    def launch(self, guard):
        return guard

def driver(runner):
    lock = threading.Lock()
    runner.launch(lock)
"""
    graph, dataflow = _dataflow_for(source)
    launch = _summary_of(graph, dataflow, "Runner.launch")
    assert "lock" in launch.tainted_params.get("guard", set())


def test_dataflow_free_names_exclude_locals_and_params():
    source = """
def outer(items):
    limit = 10
    def task(i):
        local = i * 2
        return local + limit + len(items)
    return task
"""
    graph, dataflow = _dataflow_for(source)
    outer = _summary_of(graph, dataflow, "outer")
    (task,) = outer.closures
    assert task.free_names == {"limit", "items"}
    kinds = {c.name: c.kind for c in task.captures}
    assert kinds["limit"] == "local"
    assert kinds["items"] == "param"
    assert not any(c.fatal for c in task.captures)


# --------------------------------------------------------------------- #
# the portability inventory
# --------------------------------------------------------------------- #


def test_portability_inventory_shape_and_verdicts(tmp_path):
    from repro.analysis import load_project, portability_inventory
    from repro.analysis.portability import PORTABILITY_SCHEMA_VERSION

    source = """
import threading

class DemoStageProvider:
    def _map_stage(self, scope, engine, items):
        lock = threading.Lock()
        def task_body(i):
            with lock:
                return engine.lookup(items[i])
        scope.finish_collect(task_body)
"""
    path = tmp_path / "stages.py"
    path.write_text(source, encoding="utf-8")
    project = load_project([path])
    document = portability_inventory(project)

    assert document["schema_version"] == PORTABILITY_SCHEMA_VERSION
    assert document["report"] == "portability"
    assert document["fatal_captures"] == 1
    (provider,) = document["providers"]
    assert provider["provider"] == "DemoStageProvider"
    (method,) = provider["methods"]
    assert method["method"] == "DemoStageProvider._map_stage"
    (body,) = method["task_bodies"]
    assert body["name"] == "task_body"
    verdicts = {c["name"]: c for c in body["captures"]}
    assert verdicts["lock"] == {
        "name": "lock", "kind": "lock", "portable": False, "advisory": False,
    }
    assert verdicts["engine"]["advisory"] is True
    assert verdicts["engine"]["portable"] is True
    assert json.dumps(document)  # machine-readable: JSON-serializable


def test_portability_inventory_on_shipped_tree_is_empty():
    # The process-places refactor moved every task body to module level
    # (DESIGN.md §16); the shipped providers define no closures at all,
    # so the whole inventory — fatal AND advisory — must stay at zero.
    # This is the regression gate `analyze --report portability --gate`
    # enforces in CI.
    from repro.analysis import load_project, portability_inventory

    project = load_project([Path(repro.__file__).parent])
    document = portability_inventory(project)
    assert document["fatal_captures"] == 0
    assert document["advisory_captures"] == 0
    assert document["providers"] == []


# --------------------------------------------------------------------- #
# the KnobRegistry
# --------------------------------------------------------------------- #


def test_knob_registry_names_are_unique_and_prefixed():
    from repro.analysis.knobs import KNOB_PREFIX, REGISTRY

    names = list(REGISTRY.names())
    assert len(names) == len(set(names))
    assert all(name.startswith(KNOB_PREFIX) for name in names)
    assert len(REGISTRY) == len(names)


def test_knob_registry_constants_cover_conf_constants():
    from repro.analysis.knobs import REGISTRY

    constants = REGISTRY.constants()
    assert constants["REAL_THREADS_KEY"] == "m3r.engine.real-threads"  # noqa: M3R010 - asserting the literal mapping
    # Every constant maps to a registered key, and conf re-exports it.
    import repro.api.conf as conf

    for const_name, key in constants.items():
        assert key in REGISTRY
        assert getattr(conf, const_name) == key


def test_knob_registry_env_aliases_match_conf():
    from repro.analysis.knobs import REGISTRY
    import repro.api.conf as conf

    assert REGISTRY.get(conf.TRACE_PATH_KEY).env == conf.TRACE_PATH_ENV
    assert REGISTRY.get(conf.RESTORE_ENABLED_KEY).env == conf.RESTORE_ENV
    assert REGISTRY.get(conf.CONF_STRICT_KEY).env == conf.CONF_STRICT_ENV


def test_knob_registry_markdown_table_lists_public_knobs():
    from repro.analysis.knobs import REGISTRY, render_markdown_table

    table = render_markdown_table()
    lines = [l for l in table.splitlines() if l.startswith("|")]
    public = [k for k in REGISTRY if not k.internal]
    assert len(lines) == len(public) + 2  # header + separator
    for knob in public:
        assert f"`{knob.name}`" in table
    for knob in REGISTRY:
        if knob.internal:
            assert f"`{knob.name}`" not in table


# --------------------------------------------------------------------- #
# noqa suppression
# --------------------------------------------------------------------- #


def test_noqa_suppresses_specific_rule(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)",
        "shared.append(index)  # noqa: M3R001 - test justification",
    )
    findings = run_lint(tmp_path, source)
    m3r001 = [f for f in findings if f.rule == "M3R001"]
    assert m3r001 and all(f.suppressed for f in m3r001)


def test_bare_noqa_suppresses_everything_on_line(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)", "shared.append(index)  # noqa"
    )
    findings = run_lint(tmp_path, source)
    assert all(f.suppressed for f in findings if f.rule == "M3R001")


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)", "shared.append(index)  # noqa: M3R004"
    )
    findings = run_lint(tmp_path, source)
    assert any(
        f.rule == "M3R001" and not f.suppressed for f in findings
    )


def test_noqa_multi_code_suppresses_each_listed_rule(tmp_path):
    # One line firing two rules, both listed comma-separated.
    source = """
def fragile(shared, index):
    try:
        shared.append(index)  # noqa: M3R001, M3R004 - listed together
    except Exception:
        pass  # noqa: M3R004

def driver(scope):
    scope.async_at(None, fragile)
"""
    findings = run_lint(tmp_path, source)
    m3r001 = [f for f in findings if f.rule == "M3R001"]
    assert m3r001 and all(f.suppressed for f in m3r001)


def test_noqa_multi_code_with_trailing_prose(tmp_path):
    # The regression the old pattern had: the justification prose after
    # the last code must not corrupt the code list.
    from repro.analysis.linter import _suppressed_codes

    assert _suppressed_codes(
        "x = 1  # noqa: M3R001,M3R004 and a justification why"
    ) == ["M3R001", "M3R004"]
    assert _suppressed_codes("x = 1  # noqa: M3R001 - reason") == ["M3R001"]
    assert _suppressed_codes("x = 1  # noqa: m3r001") == ["M3R001"]
    assert _suppressed_codes("x = 1  # NOQA: M3R001 ,  M3R002") == [
        "M3R001", "M3R002",
    ]


def test_noqa_bare_and_edge_forms(tmp_path):
    from repro.analysis.linter import _suppressed_codes

    assert _suppressed_codes("x = 1") is None
    assert _suppressed_codes("x = 1  # noqa") == []
    assert _suppressed_codes("x = 1  # noqa - because") == []
    # A colon with no parseable code suppresses nothing (flake8
    # semantics) rather than degrading to suppress-all.
    assert _suppressed_codes("x = 1  # noqa: because reasons") == ["<invalid>"]
    # "noqald" or similar words must not count as a noqa comment.
    assert _suppressed_codes("x = 1  # noqald: M3R001") is None


def test_noqa_invalid_code_list_does_not_suppress(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)",
        "shared.append(index)  # noqa: not a code",
    )
    findings = run_lint(tmp_path, source)
    assert any(f.rule == "M3R001" and not f.suppressed for f in findings)


# --------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------- #


def test_text_report_mentions_location_and_counts(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    text = render_text(findings)
    assert "mod.py" in text and "M3R001" in text
    assert "active" in text and "suppressed" in text


def test_json_report_shape(tmp_path):
    from repro.analysis.report import REPORT_SCHEMA_VERSION

    findings = run_lint(tmp_path, M3R001_BAD)
    document = json.loads(render_json(findings))
    assert document["schema_version"] == REPORT_SCHEMA_VERSION == 2
    assert document["counts"]["total"] == len(findings)
    entry = document["findings"][0]
    for field in ("rule", "path", "line", "col", "symbol", "message",
                  "suppressed", "fingerprint"):
        assert field in entry
    assert document == findings_to_document(findings)


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #


def test_baseline_roundtrip_gates_only_new_findings(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, baseline_file)
    baseline = load_baseline(baseline_file)
    assert new_findings(findings, baseline) == []

    # A new violation in another function is NOT covered by the baseline.
    worse = M3R001_BAD + (
        "\n\ndef second_body(out, i):\n"
        "    out[i] = 1\n\n"
        "def driver2(scope):\n"
        "    scope.submit(second_body)\n"
    )
    findings2 = run_lint(tmp_path, worse)
    fresh = new_findings(findings2, baseline)
    assert fresh and all(f.fingerprint not in baseline for f in fresh)

    added, removed = diff_baseline(findings2, baseline)
    assert added and not removed


def test_baseline_missing_file_is_empty():
    assert load_baseline(Path("/nonexistent/baseline.json")) == set()


def test_baseline_renamed_file_changes_fingerprint(tmp_path):
    """Fingerprints embed the relpath: renaming the file orphans the old
    entry and gates the finding afresh (the refresh workflow)."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "old_name.py").write_text(M3R001_BAD, encoding="utf-8")
    findings = Analyzer().run([pkg])
    assert {f.path for f in findings} == {"pkg/old_name.py"}
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, baseline_file)
    baseline = load_baseline(baseline_file)

    (pkg / "old_name.py").rename(pkg / "new_name.py")
    renamed = Analyzer().run([pkg])
    fresh = new_findings(renamed, baseline)
    assert fresh and all(f.path == "pkg/new_name.py" for f in fresh)

    # ...and the old entries are now orphaned: their recorded file no
    # longer exists under the analyzed root.
    from repro.analysis import orphaned_fingerprints

    orphans = orphaned_fingerprints(baseline_file, [pkg])
    assert len(orphans) == len(baseline)
    assert all("old_name.py" in label for label in orphans.values())


def test_baseline_deleted_finding_shows_as_removed(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, baseline_file)
    baseline = load_baseline(baseline_file)

    fixed = run_lint(tmp_path, M3R001_FIXED)
    added, removed = diff_baseline(
        [f for f in fixed if f.rule == "M3R001"], baseline
    )
    assert added == []
    assert removed == baseline  # the baselined debt was paid off


def test_baseline_reordered_entries_are_equivalent(tmp_path):
    """The baseline is a *set* of fingerprints: entry order in the JSON
    file must not affect gating, and writes are canonically sorted."""
    both = M3R001_BAD + M3R004_BAD
    findings = run_lint(tmp_path, both)
    assert len({f.fingerprint for f in findings}) >= 2
    baseline_file = tmp_path / "baseline.json"
    document = write_baseline(findings, baseline_file)

    shuffled = {
        "version": document["version"],
        "fingerprints": dict(
            reversed(list(document["fingerprints"].items()))
        ),
    }
    shuffled_file = tmp_path / "baseline-shuffled.json"
    shuffled_file.write_text(json.dumps(shuffled))
    assert load_baseline(shuffled_file) == load_baseline(baseline_file)
    assert new_findings(findings, load_baseline(shuffled_file)) == []

    # Writing is canonical: same findings in any order -> identical file.
    rewritten = write_baseline(list(reversed(findings)), shuffled_file)
    assert rewritten == document


def test_orphaned_fingerprints_detects_moved_files(tmp_path):
    from repro.analysis import orphaned_fingerprints

    root = tmp_path / "pkg"
    root.mkdir()
    (root / "alive.py").write_text("x = 1\n")
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({
        "version": 1,
        "fingerprints": {
            "aaaa": "M3R001 pkg/alive.py some_fn",
            "bbbb": "M3R001 pkg/deleted.py gone_fn",
        },
    }))
    orphans = orphaned_fingerprints(baseline_file, [root])
    assert list(orphans) == ["bbbb"]
    assert "deleted.py" in orphans["bbbb"]


def test_orphaned_fingerprints_empty_cases(tmp_path):
    from repro.analysis import orphaned_fingerprints

    assert orphaned_fingerprints(tmp_path / "missing.json", [tmp_path]) == {}
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({"version": 1, "fingerprints": {}}))
    assert orphaned_fingerprints(baseline_file, [tmp_path]) == {}


def test_shipped_baseline_has_no_orphans():
    """The committed baseline must only reference files that still exist
    (the CI analyze gate enforces this)."""
    import repro
    from repro.analysis import DEFAULT_BASELINE_PATH, orphaned_fingerprints

    repo_root = Path(repro.__file__).parent.parent.parent
    baseline_file = repo_root / DEFAULT_BASELINE_PATH
    assert baseline_file.exists()
    orphans = orphaned_fingerprints(
        baseline_file, [Path(repro.__file__).parent]
    )
    assert orphans == {}


# --------------------------------------------------------------------- #
# call graph
# --------------------------------------------------------------------- #


def test_call_graph_spawn_roots_and_reachability():
    tree = ast.parse(
        """
def leaf(x):
    return x

def body(i):
    return leaf(i)

def driver(scope):
    scope.async_at(None, body, 1)
"""
    )
    graph = build_call_graph([("mod.py", tree)])
    assert "body" in graph.spawn_roots
    reachable = graph.reachable_from(graph.spawn_roots)
    assert {"body", "leaf"} <= reachable
    assert "driver" not in reachable


def test_call_graph_lambda_argument_names_spawned_functions():
    tree = ast.parse(
        """
def body(i):
    return i

def driver(scope):
    scope.submit(lambda i: body(i))
"""
    )
    graph = build_call_graph([("mod.py", tree)])
    assert "body" in graph.spawn_roots


# --------------------------------------------------------------------- #
# the self-gate: the shipped tree must be clean
# --------------------------------------------------------------------- #


def test_shipped_source_tree_has_zero_unsuppressed_findings():
    package_root = Path(repro.__file__).parent
    findings = Analyzer().run([package_root])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n" + render_text(active)
