"""Tests for the static lint half of repro.analysis.

Each rule gets a fixture pair: a known-bad snippet it must fire on, and
the fixed version it must stay silent on.  The suite also covers the
``# noqa`` suppression convention, baseline write/diff, the reporters, and
the self-gate: the shipped ``src/repro`` tree must be clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Analyzer,
    diff_baseline,
    findings_to_document,
    load_baseline,
    new_findings,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.callgraph import build_call_graph
import ast


def run_lint(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return Analyzer().run([path])


def rules_fired(findings, *, include_suppressed: bool = False):
    return {
        f.rule
        for f in findings
        if include_suppressed or not f.suppressed
    }


# --------------------------------------------------------------------- #
# M3R001: parameter mutation on an async-reachable path
# --------------------------------------------------------------------- #

M3R001_BAD = """
def task_body(shared, index):
    shared.append(index)

def driver(scope, items):
    for i in range(len(items)):
        scope.async_at(None, task_body, i)
"""

M3R001_FIXED = """
def task_body(shared, index, lock):
    with lock:
        shared.append(index)

def driver(scope, items):
    for i in range(len(items)):
        scope.async_at(None, task_body, i)
"""


def test_m3r001_fires_on_unlocked_mutation(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    assert "M3R001" in rules_fired(findings)
    (finding,) = [f for f in findings if f.rule == "M3R001"]
    assert finding.symbol == "task_body"
    assert "shared" in finding.message


def test_m3r001_silent_when_lock_held(tmp_path):
    findings = run_lint(tmp_path, M3R001_FIXED)
    assert "M3R001" not in rules_fired(findings)


def test_m3r001_silent_for_driver_only_function(tmp_path):
    source = """
def helper(out, x):
    out.append(x)

def main(items):
    acc = []
    for x in items:
        helper(acc, x)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R001" not in rules_fired(findings)


def test_m3r001_sees_through_spawn_forwarders(tmp_path):
    # bounded_task_fn-style wrapper: the body is spawned indirectly.
    source = """
def wrapper(task_fn):
    def bounded(i):
        return task_fn(i)
    return bounded

def body(shared, i):
    shared[i] = 1

def driver(scope):
    bounded = wrapper(body)
    scope.submit(bounded)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R001" in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R002: unordered iteration feeding shuffle-plan/replay ordering
# --------------------------------------------------------------------- #

M3R002_BAD = """
def build_plan(destinations):
    order = []
    for dest in set(destinations):
        order.append(dest)
    return order
"""

M3R002_FIXED = """
def build_plan(destinations):
    order = []
    for dest in sorted(set(destinations)):
        order.append(dest)
    return order
"""


def test_m3r002_fires_on_set_iteration_in_plan(tmp_path):
    findings = run_lint(tmp_path, M3R002_BAD)
    assert "M3R002" in rules_fired(findings)


def test_m3r002_silent_when_sorted(tmp_path):
    findings = run_lint(tmp_path, M3R002_FIXED)
    assert "M3R002" not in rules_fired(findings)


def test_m3r002_covers_dict_values_reached_from_replay(tmp_path):
    source = """
def charge(by_place):
    total = 0
    for v in by_place.values():
        total += v
    return total

def replay(plan):
    return charge(plan)
"""
    findings = run_lint(tmp_path, source)
    assert "M3R002" in rules_fired(findings)


def test_m3r002_ignores_unrelated_code(tmp_path):
    source = """
def unrelated(d):
    return [v for v in d.values()]
"""
    findings = run_lint(tmp_path, source)
    assert "M3R002" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R003: ImmutableOutput attribute writes outside builders
# --------------------------------------------------------------------- #

M3R003_BAD = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.count = 0

    def map(self, key, value, output, reporter):
        self.count += 1
        output.collect(key, value)
"""

M3R003_FIXED = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.count = 0

    def map(self, key, value, output, reporter):
        output.collect(key, value)
"""


def test_m3r003_fires_on_post_construction_write(tmp_path):
    findings = run_lint(tmp_path, M3R003_BAD)
    assert "M3R003" in rules_fired(findings)
    (finding,) = [f for f in findings if f.rule == "M3R003"]
    assert finding.symbol == "Mapper.map"


def test_m3r003_silent_on_fixed_class(tmp_path):
    findings = run_lint(tmp_path, M3R003_FIXED)
    assert "M3R003" not in rules_fired(findings)


def test_m3r003_follows_transitive_subclassing(tmp_path):
    source = """
class ImmutableOutput:
    pass

class Base(ImmutableOutput):
    pass

class Leaf(Base):
    def poke(self):
        self.x = 1
"""
    findings = run_lint(tmp_path, source)
    fired = [f for f in findings if f.rule == "M3R003"]
    assert fired and fired[0].symbol == "Leaf.poke"


def test_m3r003_allows_init_and_configure(tmp_path):
    source = """
class ImmutableOutput:
    pass

class Mapper(ImmutableOutput):
    def __init__(self):
        self.a = 1

    def configure(self, conf):
        self.b = conf

    def with_limit(self, n):
        self.limit = n
        return self
"""
    findings = run_lint(tmp_path, source)
    assert "M3R003" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R004: swallowed broad exceptions
# --------------------------------------------------------------------- #

M3R004_BAD = """
def fragile():
    try:
        return compute()
    except Exception:
        return None
"""

M3R004_FIXED = """
def fragile(log):
    try:
        return compute()
    except Exception as exc:
        log.warning("compute failed: %s", exc)
        return None
"""


def test_m3r004_fires_on_swallowing_handler(tmp_path):
    findings = run_lint(tmp_path, M3R004_BAD)
    assert "M3R004" in rules_fired(findings)


def test_m3r004_silent_when_exception_is_reported(tmp_path):
    findings = run_lint(tmp_path, M3R004_FIXED)
    assert "M3R004" not in rules_fired(findings)


def test_m3r004_silent_on_reraise(tmp_path):
    source = """
def fragile():
    try:
        return compute()
    except Exception:
        raise
"""
    findings = run_lint(tmp_path, source)
    assert "M3R004" not in rules_fired(findings)


def test_m3r004_fires_on_bare_except(tmp_path):
    source = """
def fragile():
    try:
        return compute()
    except:
        pass
"""
    findings = run_lint(tmp_path, source)
    assert "M3R004" in rules_fired(findings)


# --------------------------------------------------------------------- #
# M3R005: package __init__ without __all__
# --------------------------------------------------------------------- #


def test_m3r005_fires_on_missing_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from math import pi\n")
    findings = Analyzer().run([pkg])
    assert "M3R005" in rules_fired(findings)


def test_m3r005_silent_with_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from math import pi\n__all__ = ['pi']\n")
    findings = Analyzer().run([pkg])
    assert "M3R005" not in rules_fired(findings)


# --------------------------------------------------------------------- #
# noqa suppression
# --------------------------------------------------------------------- #


def test_noqa_suppresses_specific_rule(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)",
        "shared.append(index)  # noqa: M3R001 - test justification",
    )
    findings = run_lint(tmp_path, source)
    m3r001 = [f for f in findings if f.rule == "M3R001"]
    assert m3r001 and all(f.suppressed for f in m3r001)


def test_bare_noqa_suppresses_everything_on_line(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)", "shared.append(index)  # noqa"
    )
    findings = run_lint(tmp_path, source)
    assert all(f.suppressed for f in findings if f.rule == "M3R001")


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    source = M3R001_BAD.replace(
        "shared.append(index)", "shared.append(index)  # noqa: M3R004"
    )
    findings = run_lint(tmp_path, source)
    assert any(
        f.rule == "M3R001" and not f.suppressed for f in findings
    )


# --------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------- #


def test_text_report_mentions_location_and_counts(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    text = render_text(findings)
    assert "mod.py" in text and "M3R001" in text
    assert "active" in text and "suppressed" in text


def test_json_report_shape(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    document = json.loads(render_json(findings))
    assert document["version"] == 1
    assert document["counts"]["total"] == len(findings)
    entry = document["findings"][0]
    for field in ("rule", "path", "line", "col", "symbol", "message",
                  "suppressed", "fingerprint"):
        assert field in entry
    assert document == findings_to_document(findings)


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #


def test_baseline_roundtrip_gates_only_new_findings(tmp_path):
    findings = run_lint(tmp_path, M3R001_BAD)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, baseline_file)
    baseline = load_baseline(baseline_file)
    assert new_findings(findings, baseline) == []

    # A new violation in another function is NOT covered by the baseline.
    worse = M3R001_BAD + (
        "\n\ndef second_body(out, i):\n"
        "    out[i] = 1\n\n"
        "def driver2(scope):\n"
        "    scope.submit(second_body)\n"
    )
    findings2 = run_lint(tmp_path, worse)
    fresh = new_findings(findings2, baseline)
    assert fresh and all(f.fingerprint not in baseline for f in fresh)

    added, removed = diff_baseline(findings2, baseline)
    assert added and not removed


def test_baseline_missing_file_is_empty():
    assert load_baseline(Path("/nonexistent/baseline.json")) == set()


def test_orphaned_fingerprints_detects_moved_files(tmp_path):
    from repro.analysis import orphaned_fingerprints

    root = tmp_path / "pkg"
    root.mkdir()
    (root / "alive.py").write_text("x = 1\n")
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({
        "version": 1,
        "fingerprints": {
            "aaaa": "M3R001 pkg/alive.py some_fn",
            "bbbb": "M3R001 pkg/deleted.py gone_fn",
        },
    }))
    orphans = orphaned_fingerprints(baseline_file, [root])
    assert list(orphans) == ["bbbb"]
    assert "deleted.py" in orphans["bbbb"]


def test_orphaned_fingerprints_empty_cases(tmp_path):
    from repro.analysis import orphaned_fingerprints

    assert orphaned_fingerprints(tmp_path / "missing.json", [tmp_path]) == {}
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({"version": 1, "fingerprints": {}}))
    assert orphaned_fingerprints(baseline_file, [tmp_path]) == {}


def test_shipped_baseline_has_no_orphans():
    """The committed baseline must only reference files that still exist
    (the CI analyze gate enforces this)."""
    import repro
    from repro.analysis import DEFAULT_BASELINE_PATH, orphaned_fingerprints

    repo_root = Path(repro.__file__).parent.parent.parent
    baseline_file = repo_root / DEFAULT_BASELINE_PATH
    assert baseline_file.exists()
    orphans = orphaned_fingerprints(
        baseline_file, [Path(repro.__file__).parent]
    )
    assert orphans == {}


# --------------------------------------------------------------------- #
# call graph
# --------------------------------------------------------------------- #


def test_call_graph_spawn_roots_and_reachability():
    tree = ast.parse(
        """
def leaf(x):
    return x

def body(i):
    return leaf(i)

def driver(scope):
    scope.async_at(None, body, 1)
"""
    )
    graph = build_call_graph([("mod.py", tree)])
    assert "body" in graph.spawn_roots
    reachable = graph.reachable_from(graph.spawn_roots)
    assert {"body", "leaf"} <= reachable
    assert "driver" not in reachable


def test_call_graph_lambda_argument_names_spawned_functions():
    tree = ast.parse(
        """
def body(i):
    return i

def driver(scope):
    scope.submit(lambda i: body(i))
"""
    )
    graph = build_call_graph([("mod.py", tree)])
    assert "body" in graph.spawn_roots


# --------------------------------------------------------------------- #
# the self-gate: the shipped tree must be clean
# --------------------------------------------------------------------- #


def test_shipped_source_tree_has_zero_unsuppressed_findings():
    package_root = Path(repro.__file__).parent
    findings = Analyzer().run([package_root])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n" + render_text(active)
