"""The multi-tenant job service: admission, isolation, fair scheduling.

The contracts under test are the service package's invariants:

* backpressure is typed and accounted (queue depth, per-tenant in-flight);
* cancel withdraws queued submissions and refuses running ones;
* a tenant's cache budget evicts only that tenant's unpinned entries;
* the stride schedule, every output byte and every simulated second are a
  pure function of the admission order (20-seed sweep, both engines);
* each tenant's outputs are byte-identical to a solo engine run;
* ReStore visibility: private stores never serve another tenant's
  results, the shared namespace does.
"""

from __future__ import annotations

import threading

import pytest

from repro import hadoop_engine, m3r_engine
from repro.api.mapred import Mapper
from repro.apps.wordcount import wordcount_job
from repro.fs import SimulatedHDFS
from repro.service import (
    AdmissionError,
    JobService,
    QueueFull,
    TenantLimitExceeded,
    TenantSpec,
)
from repro.sim import Cluster
from workloads import (
    enable_restore,
    histogram_job,
    snapshot_output,
    write_corpus,
)


# This suite constructs its own JobService around each engine, so it
# always builds bare engines — the conftest M3R_SERVICE=1 proxy would
# nest a service inside a service.
def make_m3r(num_nodes: int = 4):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return m3r_engine(filesystem=fs)


def make_hadoop(num_nodes: int = 4):
    fs = SimulatedHDFS(Cluster(num_nodes), block_size=64 * 1024, replication=2)
    return hadoop_engine(filesystem=fs)


def wc(inp: str, out: str, reducers: int = 2):
    return wordcount_job(inp, out, reducers)


# --------------------------------------------------------------------- #
# admission / backpressure
# --------------------------------------------------------------------- #


class TestAdmission:
    def test_queue_full_rejects_with_backpressure(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        from repro.api.conf import SERVICE_QUEUE_DEPTH_KEY, Configuration

        cfg = Configuration()
        cfg.set_int(SERVICE_QUEUE_DEPTH_KEY, 2)
        service = JobService(engine, cfg)
        client = service.register_tenant("a", prefixes=("/out",))
        client.submit(wc("/in", "/out/r0"))
        client.submit(wc("/in", "/out/r1"))
        with pytest.raises(QueueFull):
            client.submit(wc("/in", "/out/r2"))
        stats = service.tenant_stats("a")
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2
        rejected = [e for e in service.events() if e.action == "rejected"]
        assert rejected and rejected[0].detail == "queue-full"
        assert service.drain() == 2  # queued work still runs after rejection

    def test_tenant_inflight_limit(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        greedy = service.register_tenant("greedy", inflight_limit=2)
        other = service.register_tenant("other")
        greedy.submit(wc("/in", "/out/g0"))
        greedy.submit(wc("/in", "/out/g1"))
        with pytest.raises(TenantLimitExceeded):
            greedy.submit(wc("/in", "/out/g2"))
        # The limit is per tenant: another tenant still gets in.
        other.submit(wc("/in", "/out/o0"))
        assert service.tenant_stats("greedy")["rejected"] == 1
        assert service.tenant_stats("other")["rejected"] == 0

    def test_namespace_enforced_at_admission(self):
        engine = make_m3r()
        service = JobService(engine)
        client = service.register_tenant("caged", prefixes=("/out/caged",))
        with pytest.raises(AdmissionError):
            client.submit(wc("/in", "/out/other/steal"))

    def test_unknown_tenant_and_ticket(self):
        service = JobService(make_m3r())
        with pytest.raises(KeyError):
            service.submit("ghost", wc("/in", "/out"))
        with pytest.raises(KeyError):
            service.status("ghost/0")

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="a/b")
        with pytest.raises(ValueError):
            TenantSpec(name="a", weight=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", inflight_limit=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", cache_budget_bytes=-1)


# --------------------------------------------------------------------- #
# cancel
# --------------------------------------------------------------------- #


class GateMapper(Mapper):
    """Blocks the first map task until released — keeps a job 'running'."""

    started = threading.Event()
    release = threading.Event()

    def map(self, key, value, output, reporter):
        GateMapper.started.set()
        GateMapper.release.wait(10)
        output.collect(key, value)


class TestCancel:
    def test_cancel_queued_submission(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        client = service.register_tenant("a")
        first = client.submit(wc("/in", "/out/r0"))
        second = client.submit(wc("/in", "/out/r1"))
        assert service.cancel(second) is True
        assert service.status(second).state == "cancelled"
        service.drain()
        assert service.status(first).state == "succeeded"
        # A cancelled ticket never ran and returns no results.
        assert service.wait(second) == []
        assert not engine.filesystem.exists("/out/r1")

    def test_cancel_running_submission_refused(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=1)
        GateMapper.started.clear()
        GateMapper.release.clear()
        conf = wc("/in", "/out/gated")
        conf.set_mapper_class(GateMapper)
        service = JobService(engine)
        client = service.register_tenant("a")
        service.start()
        try:
            ticket = client.submit(conf)
            assert GateMapper.started.wait(10), "job never started"
            assert service.status(ticket).state == "running"
            assert service.cancel(ticket) is False  # running: not cancellable
        finally:
            GateMapper.release.set()
            service.close()
        assert service.status(ticket).state in ("succeeded", "failed")
        assert service.cancel(ticket) is False  # finished: not cancellable


# --------------------------------------------------------------------- #
# per-tenant cache budgets
# --------------------------------------------------------------------- #


class TestTenantBudgets:
    def test_budget_exhaustion_evicts_only_own_entries(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=4)
        service = JobService(engine)
        # "hog" gets a budget smaller than two of its outputs; "neighbor"
        # is unbudgeted and its output is pinned.
        hog = service.register_tenant(
            "hog", prefixes=("/out/hog",), cache_budget_bytes=4000)
        neighbor = service.register_tenant(
            "neighbor", prefixes=("/out/neighbor",))

        neighbor.run_job(wc("/in", "/out/neighbor/keep"))
        engine.governor.pin_prefix("/out/neighbor/keep")
        try:
            resident_before = engine.governor.tenants.occupancy("neighbor")
            assert resident_before > 0

            for run in range(3):
                hog.run_job(wc("/in", f"/out/hog/r{run}"))

            ledger = engine.governor.tenants
            # The hog was squeezed back under its own budget...
            assert ledger.occupancy("hog") <= 4000
            assert ledger.occupancy("hog") < 3 * resident_before
            # ...while the neighbor's pinned bytes were untouched.
            assert ledger.occupancy("neighbor") == resident_before
            for status in engine.filesystem.list_files_recursive(
                    "/out/neighbor/keep"):
                entry = engine.cache.get_file(status.path, materialize=False)
                if entry is not None:
                    assert not entry.spilled
        finally:
            engine.governor.unpin_prefix("/out/neighbor/keep")

    def test_ledger_attribution_follows_rename(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        client = service.register_tenant("a", prefixes=("/out/a",),
                                         cache_budget_bytes=10**9)
        client.run_job(wc("/in", "/out/a/r"))
        # Commit renames temp files into the tenant namespace; the ledger
        # must attribute the final bytes to the tenant.
        assert engine.governor.tenants.occupancy("a") > 0
        stats = engine.cache.stats()
        assert stats["tenants"]["a"]["occupancy_bytes"] > 0


# --------------------------------------------------------------------- #
# fair scheduling + determinism
# --------------------------------------------------------------------- #


def _seeded_run(make_engine, seed: int):
    """One service run with a seeded admission order; returns the witness
    (schedule, per-ticket simulated seconds, output bytes)."""
    import random

    rng = random.Random(seed)
    engine = make_engine()
    write_corpus(engine.filesystem, "/in", seed=seed, parts=2,
                 lines_per_part=2)
    service = JobService(engine)
    clients = {
        name: service.register_tenant(
            name, weight=rng.choice([1, 1, 2, 3]),
            prefixes=(f"/out/{name}",))
        for name in ("t0", "t1", "t2")
    }
    plan = [name for name in clients for _ in range(2)]
    rng.shuffle(plan)
    tickets = [
        clients[name].submit(
            wc("/in", f"/out/{name}/r{i}", reducers=1 + i % 2))
        for i, name in enumerate(plan)
    ]
    service.drain()
    seconds = tuple(service.status(t).simulated_seconds for t in tickets)
    outputs = {
        t: snapshot_output(engine, f"/out/{plan[i]}/r{i}")
        for i, t in enumerate(tickets)
    }
    return service.schedule_log(), seconds, outputs


class TestFairScheduling:
    def test_weighted_round_robin_order(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        heavy = service.register_tenant("heavy", weight=2)
        light = service.register_tenant("light", weight=1)
        for i in range(4):
            heavy.submit(wc("/in", f"/out/h{i}"))
        for i in range(2):
            light.submit(wc("/in", f"/out/l{i}"))
        service.drain()
        order = [tenant for tenant, _ in service.schedule_log()]
        # Stride: passes go h:0.5 l:1.0 h:1.0 h:1.5 l:2.0 h:2.0 — heavy
        # gets two slots for every light one.
        assert order == ["heavy", "light", "heavy", "heavy", "light", "heavy"]

    def test_sequence_is_atomic_but_charged_per_job(self):
        from repro.api.job import JobSequence

        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        batcher = service.register_tenant("batcher")
        steady = service.register_tenant("steady")
        seq = JobSequence()
        seq.add(wc("/in", "/out/b0")).add(wc("/in", "/out/b1")).add(
            wc("/in", "/out/b2"))
        batcher.submit(seq)
        for i in range(2):
            steady.submit(wc("/in", f"/out/s{i}"))
        service.drain()
        order = [tenant for tenant, _ in service.schedule_log()]
        # The 3-job sequence runs as one unit, but costs 3 passes: steady's
        # remaining single jobs then run before batcher would go again.
        assert order == ["batcher", "steady", "steady"]
        assert service.status("batcher/0").jobs_done == 3

    @pytest.mark.parametrize("kind", ["m3r", "hadoop"])
    def test_determinism_sweep_20_seeds(self, kind):
        make_engine = make_m3r if kind == "m3r" else make_hadoop
        for seed in range(20):
            first = _seeded_run(make_engine, seed)
            second = _seeded_run(make_engine, seed)
            assert first[0] == second[0], f"schedule diverged (seed {seed})"
            assert first[1] == second[1], f"seconds diverged (seed {seed})"
            assert first[2] == second[2], f"outputs diverged (seed {seed})"


# --------------------------------------------------------------------- #
# isolation: multi-tenant == solo
# --------------------------------------------------------------------- #


class TestIsolationEquivalence:
    @pytest.mark.parametrize("kind", ["m3r", "hadoop"])
    def test_tenant_outputs_match_solo_run(self, kind):
        make_engine = make_m3r if kind == "m3r" else make_hadoop

        solo = make_engine()
        write_corpus(solo.filesystem, "/in", seed=3, parts=4)
        solo_result = solo.run_job(wc("/in", "/solo/out"))
        solo_snap = snapshot_output(solo, "/solo/out")

        shared = make_engine()
        write_corpus(shared.filesystem, "/in", seed=3, parts=4)
        service = JobService(shared)
        subject = service.register_tenant("subject",
                                          prefixes=("/tenants/subject",))
        noisy = service.register_tenant("noisy", prefixes=("/tenants/noisy",))
        for i in range(2):
            noisy.submit(wc("/in", f"/tenants/noisy/r{i}", reducers=3))
        ticket = subject.submit(wc("/in", "/tenants/subject/out"))
        for i in range(2, 4):
            noisy.submit(wc("/in", f"/tenants/noisy/r{i}", reducers=3))
        results = service.wait(ticket)
        service.drain()

        assert snapshot_output(shared, "/tenants/subject/out") == solo_snap
        # Sharing the warm engine may make the tenant *faster* than solo
        # (the noisy tenant already cached /in — the paper's point), but
        # never changes its bytes and never meaningfully slows it down
        # (cacheless Hadoop sees sub-microsecond placement jitter from the
        # neighbors' writes, nothing more).
        assert results[0].succeeded
        assert results[0].simulated_seconds <= solo_result.simulated_seconds * (
            1 + 1e-6
        )

    def test_failure_isolated_to_submitting_tenant(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        lucky = service.register_tenant("lucky")
        clumsy = service.register_tenant("clumsy")
        bad = wc("/missing-input", "/out/bad")
        bad_ticket = clumsy.submit(bad)
        good_ticket = lucky.submit(wc("/in", "/out/good"))
        service.drain()
        assert service.status(bad_ticket).state == "failed"
        assert service.status(good_ticket).state == "succeeded"
        assert service.tenant_stats("clumsy")["failed"] == 1
        assert service.tenant_stats("lucky")["succeeded"] == 1


# --------------------------------------------------------------------- #
# ReStore visibility
# --------------------------------------------------------------------- #


class TestRestoreVisibility:
    def _run(self, client, tag: str):
        conf = enable_restore(histogram_job("/in", f"/out/{client.tenant}/{tag}",
                                            reducers=2))
        return client.run_job(conf)

    def _stage(self, engine):
        from repro.api.writables import IntWritable, Text

        pairs = [(IntWritable(i % 5), Text(f"v{i}")) for i in range(30)]
        engine.filesystem.write_pairs("/in/part-00000", pairs)

    def test_private_stores_do_not_leak_across_tenants(self):
        engine = make_m3r()
        self._stage(engine)
        service = JobService(engine)
        a = service.register_tenant("a", prefixes=("/out/a",))
        b = service.register_tenant("b", prefixes=("/out/b",))
        first = self._run(a, "r")
        again = self._run(b, "r")  # identical plan, different tenant
        assert first.metrics.get("restore_hits") == 0
        assert again.metrics.get("restore_hits") == 0  # private: no reuse
        assert again.metrics.get("restore_misses") == 1

    def test_shared_namespace_serves_across_tenants(self):
        engine = make_m3r()
        self._stage(engine)
        service = JobService(engine)
        a = service.register_tenant("a", prefixes=("/out/a",),
                                    shared_restore=True)
        b = service.register_tenant("b", prefixes=("/out/b",),
                                    shared_restore=True)
        self._run(a, "r")
        again = self._run(b, "r")
        assert again.metrics.get("restore_hits") == 1
        assert snapshot_output(engine, "/out/a/r") == snapshot_output(
            engine, "/out/b/r")

    def test_engine_store_untouched_by_service_runs(self):
        engine = make_m3r()
        self._stage(engine)
        baseline = engine.restore
        service = JobService(engine)
        a = service.register_tenant("a")
        self._run(a, "r")
        assert engine.restore is baseline
        assert baseline.stats()["lifetime"]["records"] == 0


# --------------------------------------------------------------------- #
# observability / server mode
# --------------------------------------------------------------------- #


class TestObservability:
    def test_lifecycle_fed_status_and_service_events(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        client = service.register_tenant("a")
        ticket = client.submit(wc("/in", "/out/r"))
        assert service.status(ticket).state == "queued"
        service.drain()
        status = service.status(ticket)
        assert status.state == "succeeded"
        assert status.jobs_done == 1
        assert status.simulated_seconds > 0
        actions = [e.action for e in service.events()]
        assert actions == ["submitted", "started", "finished"]
        # ServiceEvents also land in the engine's ring for `repro trace`.
        ring_actions = [
            e.action for e in engine.event_ring.events()
            if getattr(e, "kind", "") == "service_event"
        ]
        assert ring_actions == actions

    def test_wait_reraises_engine_exception(self):
        from repro.engine_common import JobFailedError

        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        service = JobService(engine)
        client = service.register_tenant("a")
        engine.fail_nodes.add(0)
        with pytest.raises(JobFailedError):
            client.run_job(wc("/in", "/out/r"))
        assert service.status("a/0").state == "failed"

    def test_server_mode_concurrent_submitters(self):
        engine = make_m3r()
        write_corpus(engine.filesystem, "/in", seed=1, parts=2)
        snaps = {}
        with JobService(engine) as service:
            clients = [
                service.register_tenant(f"t{i}", prefixes=(f"/out/t{i}",))
                for i in range(3)
            ]

            def submitter(client):
                result = client.run_job(
                    wc("/in", f"/out/{client.tenant}/r"))
                assert result.succeeded
                snaps[client.tenant] = snapshot_output(
                    engine, f"/out/{client.tenant}/r")

            threads = [threading.Thread(target=submitter, args=(c,))
                       for c in clients]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(snaps) == 3
        assert snaps["t0"] == snaps["t1"] == snaps["t2"]  # same input corpus
