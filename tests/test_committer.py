"""The output-commit protocol: _SUCCESS markers and failure behaviour."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.mapred import IdentityMapper, IdentityReducer
from repro.api.writables import IntWritable, Text
from repro.apps.wordcount import generate_text, wordcount_job

from conftest import make_hadoop, make_m3r


def identity_conf(src, dst, reducers=2):
    conf = JobConf()
    conf.set_input_paths(src)
    conf.set_input_format(SequenceFileInputFormat)
    conf.set_mapper_class(IdentityMapper)
    conf.set_reducer_class(IdentityReducer)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_output_path(dst)
    conf.set_num_reduce_tasks(reducers)
    return conf


class TestSuccessMarker:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_marker_written_on_success(self, factory):
        engine = factory()
        engine.filesystem.write_text("/in.txt", generate_text(40))
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert result.succeeded
        assert engine.filesystem.exists("/out/_SUCCESS")

    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_no_marker_on_failure(self, factory):
        class Exploding(IdentityMapper):
            def map(self, key, value, output, reporter):
                raise RuntimeError("boom")

        engine = factory()
        engine.filesystem.write_pairs("/in/part-00000", [(IntWritable(1), Text("x"))])
        conf = identity_conf("/in", "/out")
        conf.set_mapper_class(Exploding)
        result = engine.run_job(conf)
        assert not result.succeeded
        assert not engine.filesystem.exists("/out/_SUCCESS")

    def test_temp_output_gets_no_marker_on_m3r(self):
        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000",
                                      [(IntWritable(1), Text("x"))])
        result = engine.run_job(identity_conf("/in", "/work/temp-x"))
        assert result.succeeded
        # nothing was flushed, including the marker
        assert not engine.raw_filesystem.exists("/work/temp-x/_SUCCESS")
        assert not engine.raw_filesystem.exists("/work/temp-x")

    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_marker_ignored_by_downstream_jobs(self, factory):
        engine = factory()
        engine.filesystem.write_pairs(
            "/in/part-00000", [(IntWritable(i), Text("v")) for i in range(6)]
        )
        assert engine.run_job(identity_conf("/in", "/mid")).succeeded
        assert engine.run_job(identity_conf("/mid", "/fin")).succeeded
        assert len(engine.filesystem.read_kv_pairs("/fin")) == 6

    def test_map_only_job_commits(self):
        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000",
                                      [(IntWritable(1), Text("x"))])
        conf = identity_conf("/in", "/out", reducers=0)
        assert engine.run_job(conf).succeeded
        assert engine.filesystem.exists("/out/_SUCCESS")
