"""The mini Jaql layer: expressions, pipeline parser, compiler, engines."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jaql import (
    JaqlExprError,
    JaqlParseError,
    JaqlRunner,
    evaluate_expr,
    parse_expr,
    parse_pipeline,
)
from repro.jaql.parser import FilterOp, GroupOp, SortOp, TopOp, TransformOp

from conftest import make_hadoop, make_m3r


class TestExpressions:
    def test_path_navigation(self):
        record = {"a": {"b": 3}, "c": "x"}
        assert evaluate_expr(parse_expr("$.a.b"), record) == 3
        assert evaluate_expr(parse_expr("$.c"), record) == "x"
        assert evaluate_expr(parse_expr("$.missing"), record) is None
        assert evaluate_expr(parse_expr("$.a.b.c"), record) is None

    def test_whole_record(self):
        record = {"k": 1}
        assert evaluate_expr(parse_expr("$"), record) == record

    def test_arithmetic_and_comparison(self):
        record = {"x": 10, "y": 4}
        assert evaluate_expr(parse_expr("$.x + $.y * 2"), record) == 18
        assert evaluate_expr(parse_expr("$.x % $.y"), record) == 2
        assert evaluate_expr(parse_expr("$.x > 5 and not ($.y == 4)"), record) is False
        assert evaluate_expr(parse_expr("$.x == 10 or $.y > 100"), record) is True

    def test_literals(self):
        assert evaluate_expr(parse_expr("true"), {}) is True
        assert evaluate_expr(parse_expr("null"), {}) is None
        assert evaluate_expr(parse_expr("'text'"), {}) == "text"
        assert evaluate_expr(parse_expr("-2.5"), {}) == -2.5

    def test_object_construction(self):
        record = {"name": "ada", "age": 36}
        projected = evaluate_expr(
            parse_expr("{ who: $.name, next: $.age + 1 }"), record
        )
        assert projected == {"who": "ada", "next": 37}

    def test_empty_object(self):
        assert evaluate_expr(parse_expr("{}"), {"x": 1}) == {}

    def test_aggregates_require_group_context(self):
        with pytest.raises(JaqlExprError):
            evaluate_expr(parse_expr("count($)"), {"x": 1})

    def test_aggregates(self):
        group = [{"v": 1}, {"v": 3}, {"v": 5}, {"other": 9}]
        env = dict(record=None, group_key="k", group_records=group)
        assert evaluate_expr(parse_expr("count($)"), **env) == 4.0
        assert evaluate_expr(parse_expr("sum($.v)"), **env) == 9.0
        assert evaluate_expr(parse_expr("avg($.v)"), **env) == 3.0
        assert evaluate_expr(parse_expr("min($.v)"), **env) == 1.0
        assert evaluate_expr(parse_expr("max($.v)"), **env) == 5.0
        assert evaluate_expr(parse_expr("key"), **env) == "k"

    def test_agg_over_all_missing_is_null(self):
        env = dict(record=None, group_key=None, group_records=[{"a": 1}])
        assert evaluate_expr(parse_expr("sum($.v)"), **env) is None

    @pytest.mark.parametrize("bad", [
        "$.x +", "count(3)", "{ a 1 }", "(1", "$..x", "frobnicate($)",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(JaqlExprError):
            parse_expr(bad)

    def test_string_math_rejected(self):
        with pytest.raises(JaqlExprError):
            evaluate_expr(parse_expr("$.s + 1"), {"s": "text"})

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    @settings(max_examples=60)
    def test_arithmetic_property(self, a, b):
        record = {"a": a, "b": b}
        assert evaluate_expr(parse_expr("$.a + $.b"), record) == pytest.approx(a + b)
        assert evaluate_expr(parse_expr("$.a * $.b"), record) == pytest.approx(a * b)


class TestPipelineParser:
    SOURCE = """
    read("/in.json")                       // comment
      -> filter $.ok == true
      -> transform { v: $.v * 2 }
      -> group by $.k into { k: key, n: count($) }
      -> sort by $.n desc
      -> top 5
      -> write("/out")
    """

    def test_stage_kinds(self):
        pipeline = parse_pipeline(self.SOURCE)
        assert pipeline.source.path == "/in.json"
        kinds = [type(op) for op in pipeline.ops]
        assert kinds == [FilterOp, TransformOp, GroupOp, SortOp, TopOp]
        assert pipeline.sink.path == "/out"

    def test_sort_direction(self):
        ascending = parse_pipeline(
            "read('/a') -> sort by $.x -> write('/b')"
        ).ops[0]
        descending = parse_pipeline(
            "read('/a') -> sort by $.x desc -> write('/b')"
        ).ops[0]
        assert not ascending.descending
        assert descending.descending

    def test_arrow_inside_braces_not_split(self):
        pipeline = parse_pipeline(
            "read('/a') -> transform { v: $.x - 1 } -> write('/b')"
        )
        assert isinstance(pipeline.ops[0], TransformOp)

    @pytest.mark.parametrize("bad", [
        "filter $.x > 1 -> write('/b')",          # no read
        "read('/a') -> filter $.x > 1",           # no write
        "read('/a') -> write('/b') -> top 3",     # ops after write
        "read('/a') -> frob $.x -> write('/b')",  # unknown op
        "read(noquotes) -> write('/b')",
        "",
    ])
    def test_errors(self, bad):
        with pytest.raises(JaqlParseError):
            parse_pipeline(bad)


RECORDS = [
    {"user": "u1", "status": 200, "ms": 120},
    {"user": "u2", "status": 404, "ms": 50},
    {"user": "u1", "status": 200, "ms": 480},
    {"user": "u3", "status": 200, "ms": 9000},
    {"user": "u2", "status": 200, "ms": 300},
    {"user": "u1", "status": 200, "ms": 60},
]

PIPELINE = """
read("/logs/events.json")
  -> filter $.status == 200 and $.ms < 5000
  -> transform { user: $.user, sec: $.ms / 1000 }
  -> group by $.user into { user: key, hits: count($), total: sum($.sec) }
  -> sort by $.hits desc
  -> top 2
  -> write("/out/top_users")
"""


def stage_data(engine):
    engine.filesystem.write_text(
        "/logs/events.json",
        "\n".join(json.dumps(r) for r in RECORDS) + "\n",
    )


class TestExecution:
    def test_full_pipeline_equivalent_on_both_engines(self):
        outputs = {}
        for factory in (make_hadoop, make_m3r):
            engine = factory()
            stage_data(engine)
            runner = JaqlRunner(engine, num_reducers=4)
            outputs[factory.__name__] = runner.read_output(runner.run(PIPELINE))
        assert outputs["make_hadoop"] == outputs["make_m3r"]
        top = outputs["make_m3r"]
        assert top[0]["user"] == "u1" and top[0]["hits"] == 3.0
        assert top[0]["total"] == pytest.approx(0.66)
        assert len(top) == 2

    def test_map_ops_fused_into_one_job(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=4)
        runner.run(
            "read('/logs/events.json') -> filter $.status == 200"
            " -> transform { m: $.ms } -> filter $.m < 500"
            " -> write('/out/fused')"
        )
        assert runner.jobs_run == 1  # three map ops, one map-only job
        values = sorted(r["m"] for r in runner.read_output("/out/fused"))
        assert values == [60, 120, 300, 480]

    def test_intermediates_temporary_on_m3r(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=4)
        runner.run(PIPELINE)
        assert not engine.raw_filesystem.exists("/jaql")
        assert engine.raw_filesystem.exists("/out/top_users")

    def test_copy_only_pipeline(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=2)
        runner.run("read('/logs/events.json') -> write('/out/copy')")
        assert len(runner.read_output("/out/copy")) == len(RECORDS)

    def test_sort_ascending_numeric(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=3)
        runner.run("read('/logs/events.json') -> sort by $.ms"
                   " -> write('/out/sorted')")
        values = [r["ms"] for r in runner.read_output("/out/sorted")]
        assert values == sorted(values)

    def test_sort_by_non_numeric_fails(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=2)
        with pytest.raises(Exception):
            runner.run("read('/logs/events.json') -> sort by $.user"
                       " -> write('/out/bad')")

    def test_group_without_sort(self):
        engine = make_m3r()
        stage_data(engine)
        runner = JaqlRunner(engine, num_reducers=4)
        runner.run(
            "read('/logs/events.json')"
            " -> group by $.status into { s: key, n: count($) }"
            " -> write('/out/by_status')"
        )
        by_status = {r["s"]: r["n"] for r in runner.read_output("/out/by_status")}
        assert by_status == {200: 5.0, 404: 1.0}
