"""Batched record path + automatic in-mapper combining (DESIGN.md §14).

The contract under test is byte-identity: for any job, the batched path
(``m3r.batch.*``) and the in-mapper-combining path (``m3r.imc.*``) must
produce exactly the output pairs, counters and simulated seconds of the
per-record path, on both engines.  The sweep reuses the 20-seed differential
harness; directed tests cover the batch-boundary edge cases (empty splits,
batch size 1, batch larger than the split, aggregate overflow spill) and the
enforcement teeth (a lying "associative" reducer is caught, not believed).
"""

from __future__ import annotations

import pytest
from conftest import make_hadoop, make_m3r
from workloads import enable_restore, histogram_job, seeded_histogram_dataset

from repro.api.conf import (
    BATCH_ENABLED_KEY,
    BATCH_SIZE_KEY,
    IMC_ENABLED_KEY,
    IMC_MAX_ENTRIES_KEY,
    SANITIZE_MUTATION_KEY,
    JobConf,
)
from repro.api.mapred import Mapper, OutputCollector, Reducer, Reporter
from repro.api.vectorized import (
    AssociativeReducer,
    VectorizedMapper,
    is_associative_reducer,
    is_vectorized,
    pack_batch,
)
from repro.api.writables import IntWritable, Text
from repro.apps.wordcount import SumReducer, WordCountMapperImmutable, wordcount_job

MODES = ("per-record", "batched", "batched+imc")


def apply_mode(conf: JobConf, mode: str, batch_size=None, max_entries=None) -> None:
    if mode != "per-record":
        conf.set_boolean(BATCH_ENABLED_KEY, True)
        if batch_size is not None:
            conf.set_int(BATCH_SIZE_KEY, batch_size)
    if mode == "batched+imc":
        conf.set_boolean(IMC_ENABLED_KEY, True)
        if max_entries is not None:
            conf.set_int(IMC_MAX_ENTRIES_KEY, max_entries)


def run_histogram(factory, seed: int, mode: str, **knobs):
    pairs, params = seeded_histogram_dataset(seed)
    num_parts = params["num_parts"]
    engine = factory()
    try:
        for part in range(num_parts):
            engine.filesystem.write_pairs(
                f"/in/part-{part:05d}", pairs[part::num_parts]
            )
        conf = histogram_job(
            "/in", "/out", params["reducers"],
            use_combiner=params["use_combiner"],
            # NB: mode-independent name — Hadoop's reduce placement hashes
            # the job name, and placement must match across modes.
            name=f"batching-{seed}",
        )
        apply_mode(conf, mode, **knobs)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        return {
            "output": sorted(
                (k.get(), v.get())
                for k, v in engine.filesystem.read_kv_pairs("/out")
            ),
            "counters": result.counters.as_dict(),
            "seconds": result.simulated_seconds,
            "metrics": dict(result.metrics.counters),
        }
    finally:
        if hasattr(engine, "shutdown"):
            engine.shutdown()


def assert_identical(base, other, context):
    assert other["output"] == base["output"], context
    assert other["counters"] == base["counters"], (
        context,
        {
            group: (base["counters"].get(group), other["counters"].get(group))
            for group in set(base["counters"]) | set(other["counters"])
            if base["counters"].get(group) != other["counters"].get(group)
        },
    )
    assert other["seconds"] == base["seconds"], (
        context, base["seconds"], other["seconds"],
    )


# --------------------------------------------------------------------- #
# the 20-seed sweep: three modes, two engines, byte-identical
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("kind", ["hadoop", "m3r"])
@pytest.mark.parametrize("seed", range(20))
def test_three_mode_differential(kind, seed):
    factory = make_hadoop if kind == "hadoop" else make_m3r
    base = run_histogram(factory, seed, "per-record")
    for mode in MODES[1:]:
        other = run_histogram(factory, seed, mode)
        assert_identical(base, other, (kind, seed, mode))
        assert other["metrics"].get("batch_batches", 0) > 0, (kind, seed, mode)


def test_imc_folds_on_a_combiner_seed():
    """At least one sweep seed must actually exercise the fold path (the
    histogram combiner is marked AssociativeReducer)."""
    for seed in range(20):
        _, params = seeded_histogram_dataset(seed)
        if not params["use_combiner"]:
            continue
        run = run_histogram(make_m3r, seed, "batched+imc")
        assert run["metrics"].get("imc_input_records", 0) > 0
        assert (
            run["metrics"]["imc_output_records"]
            + run["metrics"]["imc_folded_records"]
            == run["metrics"]["imc_input_records"]
        )
        return
    pytest.fail("no sweep seed enables the combiner")


# --------------------------------------------------------------------- #
# batch-boundary edge cases (wordcount over text splits)
# --------------------------------------------------------------------- #


def run_wordcount(factory, mode: str, **knobs):
    engine = factory()
    try:
        engine.filesystem.write_text("/in/part-00000", "alpha beta alpha\n")
        engine.filesystem.write_text("/in/part-00001", "")  # empty split
        engine.filesystem.write_text(
            "/in/part-00002", "beta beta gamma\nalpha gamma beta\n"
        )
        conf = wordcount_job("/in", "/out", num_reducers=3)
        apply_mode(conf, mode, **knobs)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        return {
            "output": sorted(
                (str(k), v.get())
                for k, v in engine.filesystem.read_kv_pairs("/out")
            ),
            "counters": result.counters.as_dict(),
            "seconds": result.simulated_seconds,
            "metrics": dict(result.metrics.counters),
        }
    finally:
        if hasattr(engine, "shutdown"):
            engine.shutdown()


@pytest.mark.parametrize("kind", ["hadoop", "m3r"])
@pytest.mark.parametrize("batch_size", [1, 2, 10_000])
def test_batch_boundaries_with_empty_split(kind, batch_size):
    """Batch size 1 (degenerate), 2 (mid-split boundaries) and one far
    larger than any split, against a corpus that includes an empty split."""
    factory = make_hadoop if kind == "hadoop" else make_m3r
    base = run_wordcount(factory, "per-record")
    assert base["output"] == [
        ("alpha", 3), ("beta", 4), ("gamma", 2),
    ]
    for mode in MODES[1:]:
        other = run_wordcount(factory, mode, batch_size=batch_size)
        assert_identical(base, other, (kind, mode, batch_size))


@pytest.mark.parametrize("kind", ["hadoop", "m3r"])
def test_imc_overflow_spills_to_emit(kind):
    """A two-entry aggregate overflows constantly; output must still be
    byte-identical and the spills must be visible in the metrics."""
    factory = make_hadoop if kind == "hadoop" else make_m3r
    base = run_wordcount(factory, "per-record")
    spilled = run_wordcount(factory, "batched+imc", max_entries=2)
    assert_identical(base, spilled, (kind, "spill"))
    assert spilled["metrics"].get("imc_spills", 0) > 0


# --------------------------------------------------------------------- #
# enforcement: contract liars are caught, not believed
# --------------------------------------------------------------------- #


class RecyclingSumReducer(Reducer, AssociativeReducer):
    """Claims associativity but recycles its emitted object across calls —
    the classic object-reuse lie the mutation sanitizer exists to catch."""

    def __init__(self) -> None:
        self.result = IntWritable(0)

    def reduce(self, key, values, output: OutputCollector, reporter: Reporter):
        self.result.set(sum(v.get() for v in values))
        output.collect(key, self.result)


class DoubleEmitReducer(Reducer, AssociativeReducer):
    """Claims associativity but emits twice per reduce call."""

    def reduce(self, key, values, output: OutputCollector, reporter: Reporter):
        total = sum(v.get() for v in values)
        output.collect(key, IntWritable(total))
        output.collect(key, IntWritable(total))


def _lying_combiner_job(combiner_class) -> JobConf:
    conf = wordcount_job("/in", "/out", num_reducers=2, immutable=True)
    conf.set_mapper_class(WordCountMapperImmutable)
    conf.set_combiner_class(combiner_class)
    apply_mode(conf, "batched+imc")
    return conf


def test_recycling_associative_reducer_caught_by_sanitizer():
    engine = make_m3r()
    try:
        engine.filesystem.write_text("/in/part-00000", "word word word word\n")
        conf = _lying_combiner_job(RecyclingSumReducer)
        conf.set_boolean(SANITIZE_MUTATION_KEY, True)
        result = engine.run_job(conf)
        assert not result.succeeded
        assert "ImmutableViolation" in result.error
    finally:
        engine.shutdown()


def test_double_emit_associative_reducer_rejected():
    engine = make_m3r()
    try:
        engine.filesystem.write_text("/in/part-00000", "word word word word\n")
        result = engine.run_job(_lying_combiner_job(DoubleEmitReducer))
        assert not result.succeeded
        assert "exactly one" in result.error
    finally:
        engine.shutdown()


# --------------------------------------------------------------------- #
# the VectorizedMapper protocol
# --------------------------------------------------------------------- #


class DoublingVectorMapper(Mapper, VectorizedMapper):
    """Emits (key, 2*value) — map and map_batch must agree exactly."""

    batch_arrays = True

    def map(self, key, value, output, reporter):
        output.collect(key, IntWritable(value.get() * 2))

    def map_batch(self, keys, values, output, reporter):
        collect = output.collect
        for i in range(len(keys)):
            collect(keys[i], IntWritable(values[i].get() * 2))


def test_pack_batch_containers():
    keys, values = [Text("a"), Text("b")], [IntWritable(1), IntWritable(2)]
    same_k, same_v = pack_batch(keys, values, as_arrays=False)
    assert same_k is keys and same_v is values
    arr_k, arr_v = pack_batch(keys, values, as_arrays=True)
    assert arr_k.dtype == object and list(arr_k) == keys
    assert arr_v.dtype == object and list(arr_v) == values


def test_markers():
    assert is_vectorized(DoublingVectorMapper)
    assert not is_vectorized(RecyclingSumReducer)
    assert is_associative_reducer(RecyclingSumReducer)  # marker (a lie, but opt-in)
    assert is_associative_reducer(SumReducer)  # allowlist

    class SumReducerChild(SumReducer):
        pass

    # An allowlist license is exact-name only: subclasses must opt in.
    assert not is_associative_reducer(SumReducerChild)


@pytest.mark.parametrize("kind", ["hadoop", "m3r"])
def test_vectorized_mapper_batches(kind):
    """A batch_arrays VectorizedMapper runs via map_batch under the batch
    knob and produces byte-identical results to its per-record map."""
    factory = make_hadoop if kind == "hadoop" else make_m3r

    def run(mode):
        engine = factory()
        try:
            engine.filesystem.write_pairs(
                "/in/part-00000",
                [(IntWritable(i), IntWritable(i * i)) for i in range(10)],
            )
            conf = histogram_job("/in", "/out", 2)
            conf.set_mapper_class(DoublingVectorMapper)
            apply_mode(conf, mode, batch_size=4)
            result = engine.run_job(conf)
            assert result.succeeded, result.error
            return {
                "output": sorted(
                    (k.get(), v.get())
                    for k, v in engine.filesystem.read_kv_pairs("/out")
                ),
                "counters": result.counters.as_dict(),
                "seconds": result.simulated_seconds,
                "metrics": dict(result.metrics.counters),
            }
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()

    base = run("per-record")
    batched = run("batched")
    assert_identical(base, batched, kind)
    # 10 records in batches of 4 -> 3 batches
    assert batched["metrics"].get("batch_batches") == 3


# --------------------------------------------------------------------- #
# batch × restore: the reuse store sees identical artifacts
# --------------------------------------------------------------------- #


def test_batched_run_matches_per_record_under_restore():
    outputs = {}
    for mode in ("per-record", "batched+imc"):
        engine = make_m3r()
        try:
            engine.filesystem.write_text(
                "/in/part-00000", "reuse the plan reuse the store\n"
            )
            conf = wordcount_job("/in", "/out", num_reducers=2)
            enable_restore(conf)
            apply_mode(conf, mode)
            first = engine.run_job(conf)
            assert first.succeeded, first.error
            conf2 = wordcount_job("/in", "/out2", num_reducers=2)
            enable_restore(conf2)
            apply_mode(conf2, mode)
            second = engine.run_job(conf2)
            assert second.succeeded, second.error
            outputs[mode] = [
                sorted(
                    (str(k), v.get())
                    for k, v in engine.filesystem.read_kv_pairs(path)
                )
                for path in ("/out", "/out2")
            ]
        finally:
            engine.shutdown()
    assert outputs["per-record"] == outputs["batched+imc"]
