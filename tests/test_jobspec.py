"""JobSpec normalization: API resolution, immutability rules, grouping."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.extensions import ImmutableOutput
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.job import JobSequence, JobSpec
from repro.api.mapred import (
    IdentityMapper,
    IdentityReducer,
    MapRunnable,
    Mapper,
    Reducer,
)
from repro.api.mapreduce import Job, NewMapper, NewReducer
from repro.api.multiple_io import TaggedInputSplit
from repro.api.partitioner import HashPartitioner
from repro.api.splits import FileSplit
from repro.api.writables import IntWritable, Text


class ImmMapper(Mapper, ImmutableOutput):
    pass


class PlainMapper(Mapper):
    pass


class ImmNewMapper(NewMapper, ImmutableOutput):
    pass


class ImmReducer(Reducer, ImmutableOutput):
    pass


class ImmRunner(MapRunnable, ImmutableOutput):
    def __init__(self, mapper):
        self.mapper = mapper


class PlainRunner(MapRunnable):
    def __init__(self, mapper):
        self.mapper = mapper


def basic_conf(**kwargs):
    conf = JobConf()
    conf.set_input_paths("/in")
    conf.set_output_path("/out")
    for key, value in kwargs.items():
        getattr(conf, f"set_{key}")(value)
    return conf


SPLIT = FileSplit("/in/f", 0, 10)


class TestResolution:
    def test_defaults(self):
        spec = JobSpec.from_conf(basic_conf())
        assert isinstance(spec.input_format, SequenceFileInputFormat)
        assert isinstance(spec.output_format, SequenceFileOutputFormat)
        assert isinstance(spec.partitioner, HashPartitioner)
        assert spec.num_reducers == 1
        assert not spec.is_map_only
        assert spec.resolve_mapper_class(SPLIT) is IdentityMapper

    def test_map_only(self):
        conf = basic_conf()
        conf.set_num_reduce_tasks(0)
        assert JobSpec.from_conf(conf).is_map_only

    def test_new_api_classes_win(self):
        job = Job()
        job.conf.set_input_paths("/in")
        job.set_mapper_class(ImmNewMapper)
        job.conf.set_mapper_class(PlainMapper)  # old-API setting too
        spec = JobSpec.from_conf(job.conf)
        assert spec.mapper_class is ImmNewMapper

    def test_tagged_split_overrides_mapper(self):
        spec = JobSpec.from_conf(basic_conf(mapper_class=PlainMapper))
        tagged = TaggedInputSplit(SPLIT, SequenceFileInputFormat, ImmMapper)
        assert spec.resolve_mapper_class(tagged) is ImmMapper
        assert spec.resolve_mapper_class(SPLIT) is PlainMapper


class TestImmutabilityRules:
    def test_unmarked_mapper_never_immutable(self):
        spec = JobSpec.from_conf(basic_conf(mapper_class=PlainMapper))
        assert not spec.map_output_immutable(SPLIT, fresh_runner=True)
        assert not spec.map_output_immutable(SPLIT, fresh_runner=False)

    def test_marked_mapper_needs_fresh_runner(self):
        """Paper Section 4.1: the default MapRunnable breaks the contract;
        M3R's fresh-object replacement restores it."""
        spec = JobSpec.from_conf(basic_conf(mapper_class=ImmMapper))
        assert spec.map_output_immutable(SPLIT, fresh_runner=True)
        assert not spec.map_output_immutable(SPLIT, fresh_runner=False)

    def test_custom_runner_must_be_marked(self):
        marked = basic_conf(mapper_class=ImmMapper, map_runner_class=ImmRunner)
        unmarked = basic_conf(mapper_class=ImmMapper, map_runner_class=PlainRunner)
        assert JobSpec.from_conf(marked).map_output_immutable(SPLIT, True)
        assert not JobSpec.from_conf(unmarked).map_output_immutable(SPLIT, True)

    def test_new_api_marker_sufficient(self):
        conf = basic_conf()
        job = Job(conf)
        job.set_mapper_class(ImmNewMapper)
        spec = JobSpec.from_conf(job.conf)
        assert spec.map_output_immutable(SPLIT, fresh_runner=False)

    def test_reduce_side(self):
        marked = JobSpec.from_conf(basic_conf(reducer_class=ImmReducer))
        unmarked = JobSpec.from_conf(basic_conf(reducer_class=IdentityReducer))
        none = JobSpec.from_conf(basic_conf())
        assert marked.reduce_output_immutable()
        assert not unmarked.reduce_output_immutable()
        assert not none.reduce_output_immutable()


class TestGrouping:
    def test_group_sorted_pairs_default_equality(self):
        spec = JobSpec.from_conf(basic_conf())
        pairs = [
            (IntWritable(1), Text("a")),
            (IntWritable(1), Text("b")),
            (IntWritable(2), Text("c")),
        ]
        groups = list(spec.group_sorted_pairs(pairs))
        assert [(k.get(), len(vs)) for k, vs in groups] == [(1, 2), (2, 1)]

    def test_grouping_comparator_merges_keys(self):
        class Parity:
            def compare(self, a, b):
                return (a.get() % 2) - (b.get() % 2)

        conf = basic_conf()
        conf.set_output_value_grouping_comparator(Parity)
        spec = JobSpec.from_conf(conf)
        pairs = [(IntWritable(k), Text(str(k))) for k in (2, 4, 1, 3)]
        groups = list(spec.group_sorted_pairs(pairs))
        assert [len(vs) for _, vs in groups] == [2, 2]

    def test_sort_key_orders_pairs(self):
        spec = JobSpec.from_conf(basic_conf())
        pairs = [(IntWritable(3), None), (IntWritable(1), None), (IntWritable(2), None)]
        ordered = sorted(pairs, key=spec.sort_key())
        assert [k.get() for k, _ in ordered] == [1, 2, 3]

    def test_empty_group_stream(self):
        spec = JobSpec.from_conf(basic_conf())
        assert list(spec.group_sorted_pairs([])) == []


class TestDrivers:
    def test_run_combine_without_combiner_raises(self):
        spec = JobSpec.from_conf(basic_conf())
        with pytest.raises(RuntimeError):
            spec.run_combine([], None, None)

    def test_reduce_without_reducer_is_identity(self):
        spec = JobSpec.from_conf(basic_conf())
        collected = []

        class Sink:
            def collect(self, k, v):
                collected.append((k, v))

        from repro.api.mapred import Reporter

        spec.run_reduce_task(
            [(IntWritable(1), [Text("a"), Text("b")])], Sink(), Reporter()
        )
        assert len(collected) == 2


class TestJobSequence:
    def test_iteration_and_len(self):
        seq = JobSequence()
        seq.add(basic_conf()).add(basic_conf())
        assert len(seq) == 2
        assert list(seq)

    def test_run_all_raises_on_failure(self):
        class FailingEngine:
            def run_job(self, conf):
                class R:
                    succeeded = False
                    error = "nope"

                return R()

        with pytest.raises(RuntimeError):
            JobSequence([basic_conf()]).run_all(FailingEngine())
