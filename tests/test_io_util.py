"""Byte-level I/O buffers: the Hadoop wire conventions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.io_util import DataInputBuffer, DataOutputBuffer, vint_size


class TestPrimitives:
    def test_int_is_big_endian(self):
        out = DataOutputBuffer()
        out.write_int(1)
        assert out.to_bytes() == b"\x00\x00\x00\x01"

    def test_long_roundtrip(self):
        out = DataOutputBuffer()
        out.write_long(-(2**40))
        assert DataInputBuffer(out.to_bytes()).read_long() == -(2**40)

    def test_double_roundtrip(self):
        out = DataOutputBuffer()
        out.write_double(3.141592653589793)
        assert DataInputBuffer(out.to_bytes()).read_double() == 3.141592653589793

    def test_boolean(self):
        out = DataOutputBuffer()
        out.write_boolean(True)
        out.write_boolean(False)
        inp = DataInputBuffer(out.to_bytes())
        assert inp.read_boolean() is True
        assert inp.read_boolean() is False

    def test_byte_masking(self):
        out = DataOutputBuffer()
        out.write_byte(0x1FF)
        assert DataInputBuffer(out.to_bytes()).read_byte() == 0xFF

    def test_mixed_sequence(self):
        out = DataOutputBuffer()
        out.write_int(7)
        out.write_utf("hi")
        out.write_double(1.5)
        inp = DataInputBuffer(out.to_bytes())
        assert inp.read_int() == 7
        assert inp.read_utf() == "hi"
        assert inp.read_double() == 1.5
        assert inp.remaining == 0

    def test_eof_raises(self):
        inp = DataInputBuffer(b"\x00")
        with pytest.raises(EOFError):
            inp.read_int()

    def test_len(self):
        out = DataOutputBuffer()
        out.write_int(1)
        assert len(out) == 4


class TestVLong:
    @pytest.mark.parametrize(
        "value", [0, 1, -1, 127, -112, 128, -113, 255, 256, 2**31, -(2**31), 2**62]
    )
    def test_roundtrip(self, value):
        out = DataOutputBuffer()
        out.write_vlong(value)
        assert DataInputBuffer(out.to_bytes()).read_vlong() == value

    def test_single_byte_range(self):
        # Hadoop encodes [-112, 127] in one byte.
        for value in (-112, 0, 127):
            out = DataOutputBuffer()
            out.write_vlong(value)
            assert len(out.to_bytes()) == 1

    def test_vint_size_matches_encoding(self):
        for value in (-(2**40), -300, -113, -112, 0, 127, 128, 5000, 2**33):
            out = DataOutputBuffer()
            out.write_vlong(value)
            assert len(out.to_bytes()) == vint_size(value), value

    @given(st.integers(min_value=-(2**63) + 1, max_value=2**63 - 1))
    @settings(max_examples=300)
    def test_roundtrip_property(self, value):
        out = DataOutputBuffer()
        out.write_vlong(value)
        encoded = out.to_bytes()
        assert len(encoded) == vint_size(value)
        assert DataInputBuffer(encoded).read_vlong() == value


class TestUtf:
    @given(st.text(max_size=300))
    @settings(max_examples=150)
    def test_roundtrip_property(self, text):
        out = DataOutputBuffer()
        out.write_utf(text)
        assert DataInputBuffer(out.to_bytes()).read_utf() == text

    def test_concatenated_strings(self):
        out = DataOutputBuffer()
        for word in ("a", "", "bc", "ßü"):
            out.write_utf(word)
        inp = DataInputBuffer(out.to_bytes())
        assert [inp.read_utf() for _ in range(4)] == ["a", "", "bc", "ßü"]
