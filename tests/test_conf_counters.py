"""Configuration / JobConf and counters."""

from __future__ import annotations

import pytest

from repro.api.conf import (
    CONF_STRICT_ENV,
    CONF_STRICT_KEY,
    Configuration,
    JobConf,
    UnknownKnobError,
    UnknownKnobWarning,
    conf_bool,
)
from repro.api.counters import Counters, FileSystemCounter, JobCounter, TaskCounter
from repro.api.mapred import IdentityMapper, IdentityReducer
from repro.api.partitioner import HashPartitioner


class TestConfiguration:
    def test_get_set(self):
        conf = Configuration()
        conf.set("a.b", "value")
        assert conf.get("a.b") == "value"
        assert conf.get("missing") is None
        assert conf.get("missing", "d") == "d"

    def test_typed_getters(self):
        conf = Configuration()
        conf.set("i", "42")
        conf.set("f", "2.5")
        conf.set("b", "true")
        assert conf.get_int("i") == 42
        assert conf.get_float("f") == 2.5
        assert conf.get_boolean("b") is True
        assert conf.get_int("absent", 7) == 7
        assert conf.get_boolean("absent", True) is True

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("TRUE", True), ("1", True), ("yes", True),
        ("false", False), ("0", False), ("no", False), ("junk", False),
    ])
    def test_boolean_parsing(self, raw, expected):
        conf = Configuration()
        conf.set("k", raw)
        assert conf.get_boolean("k") is expected

    def test_strings_roundtrip(self):
        conf = Configuration()
        conf.set_strings("list", ["a", "b", "c"])
        assert conf.get_strings("list") == ["a", "b", "c"]
        assert conf.get_strings("absent") == []

    def test_class_values(self):
        conf = Configuration()
        conf.set_class("cls", IdentityMapper)
        assert conf.get_class("cls") is IdentityMapper
        conf.set("notcls", "a string")
        with pytest.raises(TypeError):
            conf.get_class("notcls")
        with pytest.raises(TypeError):
            conf.set_class("x", "not a class")

    def test_copy_is_independent(self):
        conf = Configuration()
        conf.set("k", "v1")
        copy = conf.copy()
        copy.set("k", "v2")
        assert conf.get("k") == "v1"

    def test_contains_and_unset(self):
        conf = Configuration()
        conf.set("k", 1)
        assert "k" in conf
        conf.unset("k")
        assert "k" not in conf


class TestConfBool:
    """The one canonical boolean-knob resolver: JobConf > env > default."""

    KEY = "m3r.test.knob"  # noqa: M3R010 - throwaway key for resolver tests, deliberately unregistered
    ENV = "M3R_TEST_KNOB"

    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(self.ENV, raising=False)
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=True) is True
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=False) is False

    def test_none_conf_falls_through_to_env(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "true")
        assert conf_bool(None, self.KEY, self.ENV, default=False) is True

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "1")
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=False) is True
        monkeypatch.setenv(self.ENV, "no")
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=True) is False

    def test_conf_beats_env(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "true")
        conf = JobConf()
        # The throwaway key is not in the KnobRegistry, so setting it
        # warns — that's the runtime knob validation working as intended.
        with pytest.warns(UnknownKnobWarning):
            conf.set_boolean(self.KEY, False)
        assert conf_bool(conf, self.KEY, self.ENV, default=True) is False
        monkeypatch.setenv(self.ENV, "false")
        with pytest.warns(UnknownKnobWarning):
            conf.set_boolean(self.KEY, True)
        assert conf_bool(conf, self.KEY, self.ENV, default=False) is True

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "   ")
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=True) is True
        assert conf_bool(JobConf(), self.KEY, self.ENV, default=False) is False

    def test_no_env_name_means_no_env_lookup(self, monkeypatch):
        monkeypatch.setenv(self.ENV, "true")
        assert conf_bool(JobConf(), self.KEY, env=None, default=False) is False


class TestKnobValidation:
    """Runtime validation of ``m3r.*`` keys against the KnobRegistry:
    unknown keys warn; under strict mode (JobConf > env > default) they
    raise.  Non-``m3r.*`` keys are never validated."""

    BAD = "m3r.cache.capacity-byte"  # noqa: M3R010 - deliberate misspelling of a registered key

    def test_registered_key_is_silent(self, recwarn, monkeypatch):
        monkeypatch.delenv(CONF_STRICT_ENV, raising=False)
        from repro.api.conf import CACHE_CAPACITY_KEY

        conf = Configuration()
        conf.set_int(CACHE_CAPACITY_KEY, 1 << 20)
        assert not [w for w in recwarn.list if issubclass(w.category, UnknownKnobWarning)]

    def test_non_m3r_key_is_never_validated(self, recwarn, monkeypatch):
        monkeypatch.delenv(CONF_STRICT_ENV, raising=False)
        conf = Configuration()
        conf.set("mapred.reduce.tasks", 4)
        conf.set("whatever.else", "x")
        assert not [w for w in recwarn.list if issubclass(w.category, UnknownKnobWarning)]

    def test_unknown_key_warns_by_default(self, monkeypatch):
        monkeypatch.delenv(CONF_STRICT_ENV, raising=False)
        conf = Configuration()
        with pytest.warns(UnknownKnobWarning, match="capacity-byte"):
            conf.set(self.BAD, 1)
        assert conf.get(self.BAD) == 1  # the set still lands

    def test_typed_setters_validate_too(self, monkeypatch):
        monkeypatch.delenv(CONF_STRICT_ENV, raising=False)
        conf = Configuration()
        with pytest.warns(UnknownKnobWarning):
            conf.set_int(self.BAD, 1)
        with pytest.warns(UnknownKnobWarning):
            conf.set_boolean(self.BAD, True)

    def test_env_turns_on_strict(self, monkeypatch):
        monkeypatch.setenv(CONF_STRICT_ENV, "1")
        conf = Configuration()
        with pytest.raises(UnknownKnobError, match="capacity-byte"):
            conf.set(self.BAD, 1)
        assert self.BAD not in conf  # a strict rejection does not land

    def test_conf_key_turns_on_strict(self, monkeypatch):
        monkeypatch.delenv(CONF_STRICT_ENV, raising=False)
        conf = Configuration()
        conf.set_boolean(CONF_STRICT_KEY, True)
        with pytest.raises(UnknownKnobError):
            conf.set(self.BAD, 1)

    def test_conf_key_beats_env(self, monkeypatch):
        # JobConf says lenient, env says strict: JobConf wins (same
        # precedence order as conf_bool).
        monkeypatch.setenv(CONF_STRICT_ENV, "1")
        conf = Configuration()
        conf.set_boolean(CONF_STRICT_KEY, False)
        with pytest.warns(UnknownKnobWarning):
            conf.set(self.BAD, 1)

    def test_blank_env_is_lenient(self, monkeypatch):
        monkeypatch.setenv(CONF_STRICT_ENV, "   ")
        conf = Configuration()
        with pytest.warns(UnknownKnobWarning):
            conf.set(self.BAD, 1)

    def test_error_is_a_keyerror_and_names_the_key(self, monkeypatch):
        monkeypatch.setenv(CONF_STRICT_ENV, "true")
        conf = Configuration()
        with pytest.raises(KeyError) as excinfo:
            conf.set(self.BAD, 1)
        assert self.BAD in str(excinfo.value)


class TestJobConf:
    def test_wiring(self):
        conf = JobConf()
        conf.set_job_name("j")
        conf.set_mapper_class(IdentityMapper)
        conf.set_reducer_class(IdentityReducer)
        conf.set_combiner_class(IdentityReducer)
        conf.set_partitioner_class(HashPartitioner)
        conf.set_num_reduce_tasks(3)
        assert conf.get_job_name() == "j"
        assert conf.get_mapper_class() is IdentityMapper
        assert conf.get_reducer_class() is IdentityReducer
        assert conf.get_combiner_class() is IdentityReducer
        assert conf.get_partitioner_class() is HashPartitioner
        assert conf.get_num_reduce_tasks() == 3

    def test_negative_reducers_rejected(self):
        conf = JobConf()
        with pytest.raises(ValueError):
            conf.set_num_reduce_tasks(-1)

    def test_input_paths(self):
        conf = JobConf()
        conf.set_input_paths("/a", "/b")
        conf.add_input_path("/c")
        assert conf.get_input_paths() == ["/a", "/b", "/c"]

    def test_output_path(self):
        conf = JobConf()
        assert conf.get_output_path() is None
        conf.set_output_path("/out")
        assert conf.get_output_path() == "/out"

    def test_copy_constructor_inherits(self):
        conf = JobConf()
        conf.set_mapper_class(IdentityMapper)
        task_conf = JobConf(conf)
        assert task_conf.get_mapper_class() is IdentityMapper

    def test_default_reducers_is_one(self):
        assert JobConf().get_num_reduce_tasks() == 1


class TestCounters:
    def test_enum_addressing(self):
        counters = Counters()
        counters.increment(TaskCounter.MAP_INPUT_RECORDS, 3)
        counters.increment(TaskCounter.MAP_INPUT_RECORDS, 2)
        assert counters.value(TaskCounter.MAP_INPUT_RECORDS) == 5

    def test_string_addressing(self):
        counters = Counters()
        counters.increment("my.group", "events", 4)
        assert counters.value("my.group", "events") == 4
        assert counters.value("my.group", "absent") == 0

    def test_find_counter_creates(self):
        counters = Counters()
        counter = counters.find_counter("g", "c")
        counter.increment(10)
        assert counters.value("g", "c") == 10

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment(JobCounter.TOTAL_LAUNCHED_MAPS, 2)
        b.increment(JobCounter.TOTAL_LAUNCHED_MAPS, 3)
        b.increment(FileSystemCounter.BYTES_READ, 100)
        a.merge(b)
        assert a.value(JobCounter.TOTAL_LAUNCHED_MAPS) == 5
        assert a.value(FileSystemCounter.BYTES_READ) == 100

    def test_groups_are_separate(self):
        counters = Counters()
        counters.increment("g1", "x", 1)
        counters.increment("g2", "x", 2)
        assert counters.group("g1") == {"x": 1}
        assert counters.group("g2") == {"x": 2}

    def test_as_dict(self):
        counters = Counters()
        counters.increment("g", "c", 7)
        assert counters.as_dict() == {"g": {"c": 7}}

    def test_type_errors(self):
        counters = Counters()
        with pytest.raises(TypeError):
            counters.increment(TaskCounter.MAP_INPUT_RECORDS, "name")
        with pytest.raises(TypeError):
            counters.increment("group", 3)
