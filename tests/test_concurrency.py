"""Concurrency stress tests for real multi-threaded task execution.

The M3R engine now runs each map/reduce phase as one X10 ``finish`` block
spawning an ``async`` per task on real worker threads, with
``workers_per_place`` bounding per-place concurrency; the Hadoop engine
mirrors this with slot-bounded worker threads.  These tests pin down the
contract that makes that safe:

* **Determinism** — with ``workers_per_place >= 4`` over ~64 splits, the
  committed output, every counter total, and the cached blocks are
  byte-identical to the serial debugging path
  (``m3r.engine.real-threads = false``), across many seeded datasets.
* **No lost updates** — per-record counters (system and user) are exact,
  not merely close, under concurrent increments.
* **Fail-fast** — a mapper raising at an arbitrary task index fails the
  whole job (``JobFailedError`` propagates; plain exceptions surface as a
  failed :class:`EngineResult`), the ``finish`` never hangs, no output is
  committed, and the engine stays usable afterwards.
"""

from __future__ import annotations

from collections import Counter as PyCounter

import numpy as np
import pytest

from repro.api.conf import REAL_THREADS_KEY, SHUFFLE_REAL_THREADS_KEY
from repro.api.counters import TaskCounter
from repro.apps import matvec
from repro.apps.wordcount import generate_text, wordcount_job
from repro.engine_common import JobFailedError

from workloads import (
    NodeLossMapper,
    PoisonedMapper,
    failing_job,
    make_hadoop,
    make_m3r,
    poison_corpus,
    run_stress,
    stress_job,
)


class TestM3RStress:
    def test_threaded_matches_serial_on_64_splits(self):
        """workers_per_place=4, 64 splits: byte-identical to the serial path."""
        threaded = run_stress(make_m3r, seed=1, threaded=True,
                              engine_kwargs={"workers_per_place": 4})
        serial = run_stress(make_m3r, seed=1, threaded=False,
                            engine_kwargs={"workers_per_place": 4})
        assert threaded["output"] == serial["output"]
        assert threaded["counters"] == serial["counters"]
        assert threaded["cached"] == serial["cached"]
        assert threaded["seconds"] == pytest.approx(serial["seconds"])
        # And the answer itself is right.
        expected = PyCounter(threaded["corpus"].split())
        assert dict(threaded["counts"]) == dict(expected)

    def test_counters_exact_under_threads(self):
        """Per-record system and user counters: exact totals, no lost
        updates, across 64 concurrently-mapped splits."""
        run = run_stress(make_m3r, seed=2, threaded=True,
                         engine_kwargs={"workers_per_place": 4})
        words = len(run["corpus"].split())
        lines = sum(1 for line in run["corpus"].splitlines() if line)
        counters = run["counters_obj"]
        assert counters.value("stress", "words") == words
        assert counters.value("stress", "records") == lines
        assert counters.value(TaskCounter.MAP_INPUT_RECORDS) == lines
        assert counters.value(TaskCounter.MAP_OUTPUT_RECORDS) == words

    @pytest.mark.parametrize("seed", range(20))
    def test_twenty_seeded_runs_deterministic(self, seed):
        """Acceptance sweep: 20 seeded corpora, threaded == serial on
        output, counters and cached blocks."""
        threaded = run_stress(make_m3r, seed=seed, threaded=True, parts=16,
                              engine_kwargs={"workers_per_place": 4})
        serial = run_stress(make_m3r, seed=seed, threaded=False, parts=16,
                            engine_kwargs={"workers_per_place": 4})
        assert threaded["output"] == serial["output"]
        assert threaded["counters"] == serial["counters"]
        assert threaded["cached"] == serial["cached"]

    def test_single_worker_forces_serial_path_same_answer(self):
        """workers_per_place=1 forces the serial debugging path; the job's
        answer is unchanged (the split *hint* scales with workers, so task
        counts differ legitimately — the committed counts must not)."""
        serial = run_stress(make_m3r, seed=3, threaded=True, parts=16,
                            engine_kwargs={"workers_per_place": 1})
        threaded = run_stress(make_m3r, seed=3, threaded=True, parts=16,
                              engine_kwargs={"workers_per_place": 8})
        assert dict(threaded["counts"]) == dict(serial["counts"])
        assert dict(serial["counts"]) == dict(PyCounter(serial["corpus"].split()))


class TestShuffleConcurrency:
    """The parallel shuffle (one async per place-to-place message) must be
    observationally identical to the serial shuffle: every byte metric,
    every counter, every committed record, and the simulated clock."""

    @pytest.mark.parametrize("seed", range(20))
    def test_twenty_seeded_runs_parallel_shuffle_deterministic(self, seed):
        """Acceptance sweep: m3r.shuffle.real-threads on vs off — identical
        shuffle_remote_bytes, dedup_saved_bytes, counters, outputs, and
        (exactly, not approximately) simulated seconds."""
        parallel = run_stress(
            make_m3r, seed=seed, threaded=True, parts=16,
            engine_kwargs={"workers_per_place": 4},
            conf_bools={SHUFFLE_REAL_THREADS_KEY: True},
        )
        serial = run_stress(
            make_m3r, seed=seed, threaded=True, parts=16,
            engine_kwargs={"workers_per_place": 4},
            conf_bools={SHUFFLE_REAL_THREADS_KEY: False},
        )
        assert parallel["output"] == serial["output"]
        assert parallel["counters"] == serial["counters"]
        assert parallel["cached"] == serial["cached"]
        for name in ("shuffle_remote_bytes", "shuffle_remote_records",
                     "shuffle_local_bytes", "shuffle_local_records",
                     "dedup_saved_bytes"):
            assert parallel["metrics"].get(name) == serial["metrics"].get(name), name
        # Charges are replayed in plan order post-join, so the float sums
        # are bitwise identical — no approx needed.
        assert parallel["seconds"] == serial["seconds"]

    def test_local_handoff_bytes_split_from_shuffle_bytes(self):
        """Co-located partitions are counted as local hand-offs, not as
        REDUCE_SHUFFLE_BYTES; the two cover all map-output traffic."""
        run = run_stress(make_m3r, seed=5, threaded=True, parts=16,
                         engine_kwargs={"workers_per_place": 4})
        counters = run["counters_obj"]
        remote = counters.value(TaskCounter.REDUCE_SHUFFLE_BYTES)
        local = counters.value(TaskCounter.REDUCE_LOCAL_HANDOFF_BYTES)
        assert local > 0  # partition % num_places guarantees co-location
        assert remote > 0
        assert local == run["metrics"].get("shuffle_local_bytes")


class PoisonKeyComparator:
    """Sort comparator that fails when the poison key reaches a shuffle
    sort — the fault-injection hook for the shuffle asyncs."""

    def compare(self, a, b):
        if "POISON" in str(a) or "POISON" in str(b):
            raise RuntimeError("injected shuffle failure")
        return (str(a) > str(b)) - (str(a) < str(b))


class TestShuffleFaultInjection:
    @pytest.mark.parametrize("parallel_shuffle", [True, False])
    def test_shuffle_async_failure_fails_job_cleanly(self, parallel_shuffle):
        """With sorted runs on (default), run sorting happens inside the
        shuffle activities.  A comparator blowing up there must fail the
        job the same way the serial shuffle fails it: a failed
        EngineResult, nothing committed, engine usable afterwards."""
        engine = make_m3r(num_nodes=4, workers_per_place=4)
        try:
            for part in range(8):
                text = generate_text(4, seed=900 + part)
                if part == 3:
                    text += "\nPOISON\n"
                engine.filesystem.write_text(f"/in/part-{part:05d}", text)
            conf = stress_job("/in", "/out")
            # No combiner: the combiner would sort (and trip the poison)
            # already in the map phase — the point here is the shuffle.
            conf.unset("mapred.combiner.class")
            conf.set_output_key_comparator_class(PoisonKeyComparator)
            conf.set_boolean(SHUFFLE_REAL_THREADS_KEY, parallel_shuffle)
            result = engine.run_job(conf)
            assert not result.succeeded
            assert "injected shuffle failure" in result.error
            assert not engine.filesystem.exists("/out/_SUCCESS")
            # The finish joined cleanly; the engine takes the next job.
            follow_up = engine.run_job(
                wordcount_job("/in/part-00000", "/out2", 2)
            )
            assert follow_up.succeeded, follow_up.error
        finally:
            engine.shutdown()


class TestHadoopStress:
    def test_threaded_matches_serial(self):
        """The Hadoop engine honours the same knob — like for like."""
        threaded = run_stress(make_hadoop, seed=4, threaded=True)
        serial = run_stress(make_hadoop, seed=4, threaded=False)
        assert threaded["output"] == serial["output"]
        assert threaded["counters"] == serial["counters"]
        assert threaded["seconds"] == pytest.approx(serial["seconds"])


class TestMatvecStress:
    def test_matvec_iteration_threaded_matches_serial_and_numpy(self):
        rows, block = 256, 32
        num_blocks = rows // block
        g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05, seed=21)
        v = matvec.generate_blocked_vector(rows, block, seed=22)
        reference = matvec.reference_multiply(g, v, rows, block)
        vectors = {}
        for threaded in (True, False):
            engine = make_m3r(num_nodes=4, workers_per_place=4)
            try:
                matvec.write_partitioned(engine.filesystem, "/G", g, num_blocks, 8)
                matvec.write_partitioned(engine.filesystem, "/v0", v, num_blocks, 8)
                sequence = matvec.iteration_jobs(
                    "/G", "/v0", "/v1", "/tmp", 0, num_blocks, 8
                )
                for conf in sequence.confs:
                    conf.set_boolean(REAL_THREADS_KEY, threaded)
                results = engine.run_sequence(sequence)
                assert all(r.succeeded for r in results)
                pairs = engine.filesystem.read_kv_pairs("/v1")
                vectors[threaded] = matvec.blocked_vector_to_array(pairs, rows)
            finally:
                engine.shutdown()
        # threaded vs serial: bit-identical floats, not just close
        assert np.array_equal(vectors[True], vectors[False])
        assert np.allclose(vectors[True], reference)


class TestFaultInjection:
    @pytest.mark.parametrize("seed", [0, 7, 19])
    def test_job_failed_error_propagates_under_threads(self, seed):
        """A task simulating node loss fails the whole job: JobFailedError
        reaches the caller, the finish does not hang, nothing is committed."""
        engine = make_m3r(num_nodes=4, workers_per_place=4)
        try:
            poison_corpus(engine.filesystem, seed)
            with pytest.raises(JobFailedError):
                engine.run_job(failing_job(NodeLossMapper))
            # No partially committed output: the failure struck in the map
            # phase, so no reducer ever wrote a part file, and the success
            # marker never appeared.
            assert not engine.filesystem.exists("/out/_SUCCESS")
            assert engine.filesystem.read_kv_pairs("/out") == []
        finally:
            engine.shutdown()

    @pytest.mark.parametrize("seed", [3, 11])
    def test_user_exception_reported_same_as_serial(self, seed):
        """A plain user exception surfaces as a failed EngineResult with the
        same error string as the serial path — and the engine (and its
        cache) stays usable for the next job."""
        results = {}
        for threaded in (True, False):
            engine = make_m3r(num_nodes=4, workers_per_place=4)
            try:
                poison_corpus(engine.filesystem, seed)
                conf = failing_job(PoisonedMapper)
                conf.set_boolean(REAL_THREADS_KEY, threaded)
                result = engine.run_job(conf)
                assert not result.succeeded
                assert "ValueError" in result.error
                results[threaded] = result.error
                assert not engine.filesystem.exists("/out/_SUCCESS")
                # Engine survives the failure: a clean job runs fine and the
                # cache is still consistent (registrations from the failed
                # map phase must not wedge later lookups).
                follow_up = engine.run_job(
                    wordcount_job("/in/part-00000", "/out2", 2)
                )
                assert follow_up.succeeded, follow_up.error
                assert engine.filesystem.exists("/out2/_SUCCESS")
                for entry in engine.cache.entries():
                    assert entry.nbytes >= 0 and entry.pairs is not None
            finally:
                engine.shutdown()
        assert results[True] == results[False]
