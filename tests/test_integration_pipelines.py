"""Long multi-job integration pipelines and cross-layer invariants.

These tests run realistic job sequences on one long-lived M3R instance —
the deployment shape the paper targets — and check the invariants that
only show up across many jobs: cache bookkeeping, namespace coherence,
determinism of simulated time, and mixed-workload coexistence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.conf import JobConf
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.writables import IntWritable, Text
from repro.apps.microbenchmark import (
    generate_input,
    microbenchmark_job,
    run_microbenchmark,
)
from repro.apps.wordcount import generate_text, wordcount_job
from repro.mrlib import MatrixContext
from repro.pig import PigRunner
from repro.sysml import run_script
from repro.sysml import scripts as dml

from conftest import make_hadoop, make_m3r


def cache_invariants(engine) -> None:
    """Invariants that must hold after any job on an M3R engine."""
    total = 0
    for entry in engine.cache.entries():
        assert 0 <= entry.place_id < engine.num_places
        assert entry.records == len(entry.pairs)
        assert entry.nbytes >= 0
        total += entry.nbytes
        # every cached path is visible through the filesystem view
        assert engine.filesystem.exists(entry.path), entry.path
    assert engine.cache.total_bytes() == total
    assert sum(
        engine.cache.bytes_at_place(p) for p in range(engine.num_places)
    ) == total


class TestLongSequences:
    def test_ten_chained_identity_jobs(self):
        engine = make_m3r()
        generate_input(engine.filesystem, "/chain/in", 60, 64, 4)
        current = "/chain/in"
        for step in range(10):
            nxt = f"/chain/temp-{step}"
            result = engine.run_job(microbenchmark_job(current, nxt, 30, 4,
                                                       seed=step))
            assert result.succeeded, result.error
            cache_invariants(engine)
            if step > 0:
                # chained steps run fully out of memory
                assert result.metrics.time.get("disk_read") == 0.0
            engine.filesystem.delete(current, recursive=True)
            cache_invariants(engine)
            current = nxt
        assert len(engine.filesystem.read_kv_pairs(current)) == 60

    def test_mixed_workloads_share_one_engine(self):
        """WordCount, Pig and SystemML coexisting on the same places."""
        engine = make_m3r()
        engine.filesystem.write_text("/w/in.txt", generate_text(80))
        assert engine.run_job(wordcount_job("/w/in.txt", "/w/out", 4)).succeeded
        cache_invariants(engine)

        engine.filesystem.write_text("/p/data.txt", "a\t1\nb\t2\na\t3\n")
        runner = PigRunner(engine, num_reducers=4)
        runner.run("r = LOAD '/p/data.txt' AS (k, v);"
                   " g = GROUP r BY k;"
                   " s = FOREACH g GENERATE group, SUM(r.v) AS t;"
                   " STORE s INTO '/p/out';")
        assert sorted(runner.read_output("/p/out")) == ["a\t4", "b\t2"]
        cache_invariants(engine)

        inputs = dml.pagerank_inputs(engine.filesystem, 60, 30,
                                     sparsity=0.1, num_partitions=4)
        _, runtime = run_script(dml.with_iterations(dml.PAGERANK_SCRIPT, 1),
                                engine, inputs=inputs, block_size=30,
                                num_reducers=4)
        assert runtime.jobs_run > 0
        cache_invariants(engine)

        ctx = MatrixContext(engine, block_size=5, num_partitions=4)
        a = np.eye(10)
        A = ctx.from_numpy("/mat/a", a)
        assert np.allclose((A @ A).to_numpy(), a)
        cache_invariants(engine)

    def test_simulated_time_is_deterministic_across_runs(self):
        def pipeline_seconds():
            engine = make_m3r()
            engine.filesystem.write_text("/in.txt", generate_text(120))
            total = engine.run_job(
                wordcount_job("/in.txt", "/out1", 4)
            ).simulated_seconds
            generate_input(engine.filesystem, "/m/in", 80, 128, 4)
            result = run_microbenchmark(engine, 30, num_pairs=80,
                                        value_bytes=128, num_reducers=4,
                                        base_path="/m2")
            return total + sum(result.iteration_seconds)

        assert pipeline_seconds() == pipeline_seconds()

    def test_cache_never_leaks_deleted_paths(self):
        engine = make_m3r()
        for round_number in range(5):
            generate_input(engine.filesystem, f"/r{round_number}/in", 40, 64, 4)
            result = engine.run_job(
                microbenchmark_job(f"/r{round_number}/in",
                                   f"/r{round_number}/temp-out", 0, 4)
            )
            assert result.succeeded
            engine.filesystem.delete(f"/r{round_number}", recursive=True)
            assert not engine.cache.contains_path(f"/r{round_number}/in")
            assert not engine.cache.contains_path(f"/r{round_number}/temp-out")
        assert engine.cache.total_bytes() == 0

    def test_rename_moves_cache_with_namespace(self):
        engine = make_m3r()
        generate_input(engine.filesystem, "/old/in", 40, 64, 4)
        assert engine.run_job(
            microbenchmark_job("/old/in", "/old/temp-out", 0, 4)
        ).succeeded
        engine.filesystem.rename("/old", "/new")
        assert engine.cache.contains_path("/new/temp-out/part-00000")
        assert not engine.cache.contains_path("/old/temp-out/part-00000")
        # The renamed temp output feeds a follow-up job from memory.
        follow = engine.run_job(microbenchmark_job("/new/temp-out", "/fin", 0, 4))
        assert follow.succeeded
        assert follow.metrics.get("cache_hits") == 4


class TestHadoopLongSequences:
    def test_ten_jobs_constant_overhead_each(self):
        """The baseline pays its fixed costs on every single job."""
        engine = make_hadoop()
        generate_input(engine.filesystem, "/chain/in", 40, 64, 4)
        seconds = []
        current = "/chain/in"
        for step in range(10):
            nxt = f"/chain/out-{step}"
            result = engine.run_job(microbenchmark_job(current, nxt, 30, 4,
                                                       seed=step))
            assert result.succeeded
            seconds.append(result.simulated_seconds)
            current = nxt
        # every job pays at least submission + cleanup
        assert all(s > 8.0 for s in seconds)


@given(st.integers(0, 100), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_microbenchmark_equivalence_property(remote, reducers):
    """For any remote fraction and reducer count, both engines produce the
    same multiset of output pairs."""
    outputs = {}
    for factory in (make_hadoop, make_m3r):
        engine = factory()
        generate_input(engine.filesystem, "/in", 30, 16, reducers)
        result = engine.run_job(
            microbenchmark_job("/in", "/out", remote, reducers)
        )
        assert result.succeeded, result.error
        outputs[factory.__name__] = sorted(
            (k.get(), v.get_bytes())
            for k, v in engine.filesystem.read_kv_pairs("/out")
        )
    assert outputs["make_hadoop"] == outputs["make_m3r"]
