"""MultipleInputs/MultipleOutputs and the distributed cache."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.distcache import DistributedCache
from repro.api.formats import (
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
    TextInputFormat,
    TextOutputFormat,
)
from repro.api.mapred import IdentityMapper, Mapper, Reporter
from repro.api.multiple_io import (
    DelegatingInputFormat,
    MultipleInputs,
    MultipleOutputs,
    TaggedInputSplit,
    TASK_FS_KEY,
    TASK_PARTITION_KEY,
)
from repro.api.writables import IntWritable, Text
from repro.apps.join import join_job
from repro.fs import InMemoryFileSystem

from conftest import make_hadoop, make_m3r


class AMapper(IdentityMapper):
    pass


class BMapper(IdentityMapper):
    pass


@pytest.fixture
def fs():
    return InMemoryFileSystem()


class TestMultipleInputs:
    def test_tagged_splits_per_path(self, fs):
        fs.write_pairs("/a/part-00000", [(IntWritable(1), Text("a"))])
        fs.write_text("/b.txt", "line\n")
        conf = JobConf()
        MultipleInputs.add_input_path(conf, "/a", SequenceFileInputFormat, AMapper)
        MultipleInputs.add_input_path(conf, "/b.txt", TextInputFormat, BMapper)
        assert conf.get_input_format() is DelegatingInputFormat
        splits = DelegatingInputFormat().get_splits(fs, conf, 4)
        tags = {(s.input_format_class, s.mapper_class) for s in splits}
        assert (SequenceFileInputFormat, AMapper) in tags
        assert (TextInputFormat, BMapper) in tags

    def test_same_path_twice_with_different_mappers(self, fs):
        fs.write_pairs("/a/part-00000", [(IntWritable(1), Text("a"))])
        conf = JobConf()
        MultipleInputs.add_input_path(conf, "/a", SequenceFileInputFormat, AMapper)
        MultipleInputs.add_input_path(conf, "/a", SequenceFileInputFormat, BMapper)
        splits = DelegatingInputFormat().get_splits(fs, conf, 4)
        mappers = sorted(s.mapper_class.__name__ for s in splits)
        assert mappers == ["AMapper", "BMapper"]
        assert conf.get_input_paths().count("/a") == 1

    def test_tagged_split_delegation(self, fs):
        fs.write_pairs("/a/part-00000", [(IntWritable(1), Text("a"))])
        conf = JobConf()
        MultipleInputs.add_input_path(conf, "/a", SequenceFileInputFormat, AMapper)
        split = DelegatingInputFormat().get_splits(fs, conf, 1)[0]
        assert isinstance(split, TaggedInputSplit)
        assert split.get_length() == split.get_delegate().get_length()
        reader = DelegatingInputFormat().get_record_reader(fs, split, conf, Reporter())
        assert list(reader) == [(IntWritable(1), Text("a"))]

    def test_unconfigured_raises(self, fs):
        with pytest.raises(ValueError):
            DelegatingInputFormat().get_splits(fs, JobConf(), 1)


class TestJoinOnBothEngines:
    LEFT = "1\talice\n2\tbob\n3\tcarol\n"
    RIGHT = "1\tapples\n1\tpears\n3\tplums\n"

    def run_join(self, engine):
        engine.filesystem.write_text("/left.txt", self.LEFT)
        engine.filesystem.write_text("/right.txt", self.RIGHT)
        result = engine.run_job(join_job("/left.txt", "/right.txt", "/out", 2))
        assert result.succeeded, result.error
        return sorted(
            (str(k), str(v)) for k, v in engine.filesystem.read_kv_pairs("/out")
        )

    def test_join_equivalent_on_both_engines(self):
        hadoop_rows = self.run_join(make_hadoop())
        m3r_rows = self.run_join(make_m3r())
        assert hadoop_rows == m3r_rows
        assert hadoop_rows == [
            ("1", "alice\tapples"),
            ("1", "alice\tpears"),
            ("3", "carol\tplums"),
        ]


class OutputsReducer(IdentityMapper):
    """Map-only task using MultipleOutputs for a side channel."""

    def configure(self, conf):
        self.mos = MultipleOutputs(conf)

    def map(self, key, value, output, reporter):
        output.collect(key, value)
        if key.get() % 2 == 0:
            self.mos.collect("evens", reporter, key, value)

    def close(self):
        self.mos.close()


class TestMultipleOutputs:
    def test_registration_validation(self):
        conf = JobConf()
        with pytest.raises(ValueError):
            MultipleOutputs.add_named_output(conf, "bad-name", TextOutputFormat,
                                             Text, Text)
        MultipleOutputs.add_named_output(conf, "good", TextOutputFormat, Text, Text)
        assert "good" in MultipleOutputs.get_named_outputs(conf)

    def test_needs_task_context(self):
        conf = JobConf()
        MultipleOutputs.add_named_output(conf, "x", TextOutputFormat, Text, Text)
        with pytest.raises(RuntimeError):
            MultipleOutputs(conf)

    def test_unregistered_name_rejected(self, fs):
        conf = JobConf()
        conf.set_output_path("/out")
        conf.set(TASK_FS_KEY, fs)
        conf.set(TASK_PARTITION_KEY, 0)
        MultipleOutputs.add_named_output(conf, "known", SequenceFileOutputFormat,
                                         IntWritable, Text)
        mos = MultipleOutputs(conf)
        with pytest.raises(KeyError):
            mos.collect("unknown", Reporter(), IntWritable(1), Text("x"))

    def test_side_outputs_through_engine(self):
        engine = make_m3r()
        engine.filesystem.write_pairs(
            "/in/part-00000",
            [(IntWritable(i), Text(f"v{i}")) for i in range(6)],
        )
        conf = JobConf()
        conf.set_job_name("mos")
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(OutputsReducer)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(0)
        MultipleOutputs.add_named_output(conf, "evens", SequenceFileOutputFormat,
                                         IntWritable, Text)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        main = [
            pair
            for status in engine.filesystem.list_files_recursive("/out")
            if status.path.rsplit("/", 1)[-1].startswith("part-")
            for pair in engine.filesystem.read_pairs(status.path)
        ]
        assert len(main) == 6
        evens = [
            k.get()
            for status in engine.filesystem.list_files_recursive("/out")
            if status.path.rsplit("/", 1)[-1].startswith("evens-r-")
            for k, _ in engine.filesystem.read_pairs(status.path)
        ]
        assert sorted(evens) == [0, 2, 4]


class TestDistributedCache:
    def test_register_and_list(self):
        conf = JobConf()
        DistributedCache.add_cache_file("/side/model.bin", conf)
        DistributedCache.add_cache_file("/side/model.bin", conf)  # dedup
        DistributedCache.add_cache_file("/side/dict.txt", conf)
        assert DistributedCache.get_cache_files(conf) == [
            "/side/model.bin", "/side/dict.txt",
        ]

    def test_archives(self):
        conf = JobConf()
        DistributedCache.add_cache_archive("/side/bundle.zip", conf)
        assert DistributedCache.get_cache_archives(conf) == ["/side/bundle.zip"]

    def test_local_files_visible_to_tasks(self, fs):
        conf = JobConf()
        fs.write_text("/side/dict.txt", "a\nb\n")
        DistributedCache.add_cache_file("/side/dict.txt", conf)
        local = DistributedCache.get_local_cache_files(conf)
        assert local == ["/side/dict.txt"]
        assert fs.read_text(local[0]) == "a\nb\n"

    def test_total_bytes(self, fs):
        conf = JobConf()
        fs.write_text("/side/a", "12345")
        DistributedCache.add_cache_file("/side/a", conf)
        DistributedCache.add_cache_file("/side/missing", conf)
        assert DistributedCache.total_cache_bytes(conf, fs) == 5

    def test_mapper_can_use_cache_file(self):
        """End-to-end: a mapper loads a side dictionary during configure."""

        class FilterByDictionary(Mapper):
            def configure(self, conf):
                fs = conf.get(TASK_FS_KEY)
                path = DistributedCache.get_local_cache_files(conf)[0]
                self.allowed = set(fs.read_text(path).split())

            def map(self, key, value, output, reporter):
                if value.to_string() in self.allowed:
                    output.collect(key, value)

        engine = make_hadoop()
        engine.filesystem.write_text("/side/allowed.txt", "keep\n")
        engine.filesystem.write_pairs(
            "/in/part-00000",
            [(IntWritable(0), Text("keep")), (IntWritable(1), Text("drop"))],
        )
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(FilterByDictionary)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(1)
        DistributedCache.add_cache_file("/side/allowed.txt", conf)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        values = [str(v) for _, v in engine.filesystem.read_kv_pairs("/out")]
        assert values == ["keep"]
