"""Integrated mode and server mode (paper Section 5.3)."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.extensions import FORCE_HADOOP_ENGINE_KEY
from repro.api.job import JobSequence
from repro.apps.wordcount import generate_text, wordcount_job
from repro.core import IntegratedJobClient, M3RServer
from repro.fs import SimulatedHDFS
from repro.sim import Cluster

from repro import hadoop_engine, m3r_engine


@pytest.fixture
def shared_pair():
    """M3R and Hadoop engines sharing one filesystem (integrated mode)."""
    fs = SimulatedHDFS(Cluster(4), block_size=64 * 1024)
    m3r = m3r_engine(filesystem=fs)
    hadoop = hadoop_engine(filesystem=fs)
    m3r.filesystem.write_text("/in.txt", generate_text(80))
    return m3r, hadoop


class TestIntegratedMode:
    def test_jobs_redirected_to_m3r(self, shared_pair):
        m3r, hadoop = shared_pair
        client = IntegratedJobClient(m3r, hadoop=hadoop)
        result = client.submit_job(wordcount_job("/in.txt", "/out", 4))
        assert result.engine == "m3r"
        assert result.succeeded

    def test_force_hadoop_property(self, shared_pair):
        m3r, hadoop = shared_pair
        client = IntegratedJobClient(m3r, hadoop=hadoop)
        conf = wordcount_job("/in.txt", "/out", 4)
        conf.set_boolean(FORCE_HADOOP_ENGINE_KEY, True)
        result = client.submit_job(conf)
        assert result.engine == "hadoop"
        assert result.succeeded

    def test_force_hadoop_without_fallback_raises(self, shared_pair):
        m3r, _ = shared_pair
        client = IntegratedJobClient(m3r)
        conf = wordcount_job("/in.txt", "/out", 4)
        conf.set_boolean(FORCE_HADOOP_ENGINE_KEY, True)
        with pytest.raises(RuntimeError):
            client.submit_job(conf)

    def test_run_sequence_stops_on_failure(self, shared_pair):
        m3r, hadoop = shared_pair
        client = IntegratedJobClient(m3r, hadoop=hadoop)
        good = wordcount_job("/in.txt", "/out1", 2)
        bad = wordcount_job("/does-not-exist", "/out2", 2)
        never = wordcount_job("/in.txt", "/out3", 2)
        results = client.run_sequence(JobSequence([good, bad, never]))
        assert len(results) == 2
        assert results[0].succeeded and not results[1].succeeded

    def test_run_job_alias(self, shared_pair):
        m3r, hadoop = shared_pair
        client = IntegratedJobClient(m3r, hadoop=hadoop)
        assert client.run_job.__func__ is client.submit_job.__func__


class TestServerMode:
    def test_submit_to_bound_port(self, shared_pair):
        m3r, _ = shared_pair
        with M3RServer(m3r, port=19001):
            result = M3RServer.submit_to_port(
                19001, wordcount_job("/in.txt", "/out", 4)
            )
            assert result.engine == "m3r" and result.succeeded
        # after stop the port is free again
        with pytest.raises(ConnectionRefusedError):
            M3RServer.submit_to_port(19001, wordcount_job("/in.txt", "/o2", 2))

    def test_server_replacement_story(self, shared_pair):
        """The BigSheets swap: stop the Hadoop server, start M3R on the
        same port; the unmodified client notices nothing."""
        m3r, hadoop = shared_pair
        port = 19002

        hadoop_server = M3RServer(hadoop, port=port).start()
        first = M3RServer.submit_to_port(port, wordcount_job("/in.txt", "/o1", 4))
        assert first.engine == "hadoop"
        hadoop_server.stop()

        with M3RServer(m3r, port=port):
            second = M3RServer.submit_to_port(port, wordcount_job("/in.txt", "/o2", 4))
            assert second.engine == "m3r"
        counts = lambda path: dict(
            (str(k), v.get()) for k, v in m3r.filesystem.read_kv_pairs(path)
        )
        assert counts("/o1") == counts("/o2")

    def test_coexisting_servers_on_different_ports(self, shared_pair):
        m3r, hadoop = shared_pair
        with M3RServer(hadoop, port=19003), M3RServer(m3r, port=19004):
            assert M3RServer.submit_to_port(
                19003, wordcount_job("/in.txt", "/oa", 2)
            ).engine == "hadoop"
            assert M3RServer.submit_to_port(
                19004, wordcount_job("/in.txt", "/ob", 2)
            ).engine == "m3r"
            assert M3RServer.bound_ports() == [19003, 19004]

    def test_double_bind_rejected(self, shared_pair):
        m3r, _ = shared_pair
        with M3RServer(m3r, port=19005):
            with pytest.raises(RuntimeError):
                M3RServer(m3r, port=19005).start()
