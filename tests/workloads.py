"""Shared workload builders for the test suites.

One home for the corpus writers, job builders, mappers/reducers and
snapshot helpers that used to be copy-pasted between
``test_engine_equivalence.py``, ``test_concurrency.py`` and the
benchmark drivers.  The restore suite (``test_restore.py``) composes the
same builders into rerun-able workloads, so cross-job reuse is tested
against exactly the jobs the equivalence and concurrency suites already
pin down.
"""

from __future__ import annotations

from collections import Counter as PyCounter
from collections import defaultdict
from typing import Any, Dict, List, Tuple

from repro.api.conf import REAL_THREADS_KEY, RESTORE_ENABLED_KEY, JobConf
from repro.api.formats import (
    SequenceFileInputFormat,
    SequenceFileOutputFormat,
    TextInputFormat,
)
from repro.api.mapred import Mapper, Reducer
from repro.api.portable import ProcessPortable
from repro.api.vectorized import AssociativeReducer
from repro.api.writables import IntWritable, Text
from repro.apps import matvec
from repro.apps.grep import grep_sequence
from repro.apps.wordcount import SumReducer, generate_text, wordcount_job
from repro.engine_common import JobFailedError

from conftest import make_hadoop, make_m3r

__all__ = [
    "NUM_SPLITS",
    "DATA",
    "GrepWorkload",
    "MatvecWorkload",
    "NodeLossMapper",
    "PoisonedMapper",
    "SumValuesReducer",
    "ToOneMapper",
    "WORKLOADS",
    "WordCountWorkload",
    "WordStressMapper",
    "enable_restore",
    "failing_job",
    "histogram_job",
    "make_hadoop",
    "make_m3r",
    "poison_corpus",
    "run_both",
    "run_stress",
    "seeded_histogram_dataset",
    "snapshot",
    "snapshot_output",
    "stress_job",
    "write_corpus",
]

NUM_SPLITS = 64

#: The equivalence suites' fixed mixed-key dataset.
DATA = [(IntWritable(i % 7), Text(f"t{i % 3}")) for i in range(40)]


# --------------------------------------------------------------------- #
# corpus / dataset builders
# --------------------------------------------------------------------- #


def write_corpus(fs, path: str, seed: int, parts: int = NUM_SPLITS,
                 lines_per_part: int = 6) -> str:
    """Write ``parts`` small text files under ``path``; returns the corpus."""
    chunks = []
    for part in range(parts):
        text = generate_text(lines_per_part, seed=seed * 1000 + part)
        fs.write_text(f"{path}/part-{part:05d}", text, at_node=None)
        chunks.append(text)
    return "\n".join(chunks)


def poison_corpus(fs, seed: int, parts: int = NUM_SPLITS) -> int:
    """``parts`` part files, one of which (seeded-random) is poisoned."""
    import random

    victim = random.Random(seed).randrange(parts)
    for part in range(parts):
        text = generate_text(4, seed=seed * 77 + part)
        if part == victim:
            text += "\nPOISON\n"
        fs.write_text(f"/in/part-{part:05d}", text)
    return victim


def seeded_histogram_dataset(seed: int) -> Tuple[List[Tuple[Any, Any]], Dict[str, Any]]:
    """The differential sweep's seeded-random dataset: returns the pair
    list plus the drawn job parameters (splits, reducers, combiner,
    skew)."""
    import random

    rng = random.Random(seed)
    params = {
        "num_keys": rng.randint(1, 40),
        "num_pairs": rng.randint(1, 200),
        "num_parts": rng.randint(1, 8),
        "reducers": rng.randint(1, 6),
        "use_combiner": rng.random() < 0.5,
        "skew": rng.choice([1.0, 2.0]),  # uniform vs quadratically skewed
    }
    pairs = []
    for i in range(params["num_pairs"]):
        draw = rng.random() ** params["skew"]
        key = int(draw * params["num_keys"])
        pairs.append((IntWritable(key), Text(f"v{i % 5}")))
    return pairs, params


# --------------------------------------------------------------------- #
# user classes
# --------------------------------------------------------------------- #


class ToOneMapper(Mapper, ProcessPortable):
    """(key, anything) → (key, 1); with SumValuesReducer this is a
    combiner-safe key histogram."""

    def map(self, key, value, output, reporter):
        output.collect(key, IntWritable(1))


class SumValuesReducer(Reducer, AssociativeReducer, ProcessPortable):
    """Integer sum — marked associative, so the IMC suites exercise the
    opt-in marker path (the stock SumReducers exercise the allowlist)."""

    def reduce(self, key, values, output, reporter):
        output.collect(key, IntWritable(sum(v.get() for v in values)))


class WordStressMapper(Mapper, ProcessPortable):
    """Word splitter with a per-record user counter (lost updates under
    concurrent increments would show up as an inexact total)."""

    def map(self, key, value, output, reporter):
        reporter.incr_counter("stress", "records", 1)
        for word in str(value).split():
            reporter.incr_counter("stress", "words", 1)
            output.collect(Text(word), IntWritable(1))


class PoisonedMapper(Mapper, ProcessPortable):
    """Raises mid-phase when it encounters the poisoned record."""

    exception: type = ValueError

    def map(self, key, value, output, reporter):
        if "POISON" in str(value):
            raise self.exception("injected task failure")
        output.collect(Text(str(value)), IntWritable(1))


class NodeLossMapper(PoisonedMapper):
    exception = JobFailedError


# --------------------------------------------------------------------- #
# job builders
# --------------------------------------------------------------------- #


def enable_restore(conf: JobConf) -> JobConf:
    """Switch cross-job result reuse on for one job conf."""
    conf.set_boolean(RESTORE_ENABLED_KEY, True)
    return conf


def histogram_job(
    input_path: str,
    output_path: str,
    reducers: int,
    use_combiner: bool = False,
    name: str = "histogram",
) -> JobConf:
    """The differential sweep's key-histogram job over sequence files."""
    conf = JobConf()
    conf.set_job_name(name)
    conf.set_input_paths(input_path)
    conf.set_input_format(SequenceFileInputFormat)
    conf.set_mapper_class(ToOneMapper)
    conf.set_reducer_class(SumValuesReducer)
    if use_combiner:
        conf.set_combiner_class(SumValuesReducer)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_output_path(output_path)
    conf.set_num_reduce_tasks(reducers)
    return conf


def stress_job(input_path: str, output_path: str, reducers: int = 8) -> JobConf:
    conf = JobConf()
    conf.set_job_name("wordcount-stress")
    conf.set_input_paths(input_path)
    conf.set_output_path(output_path)
    conf.set_input_format(TextInputFormat)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_num_reduce_tasks(reducers)
    conf.set_mapper_class(WordStressMapper)
    conf.set_reducer_class(SumReducer)
    conf.set_combiner_class(SumReducer)
    return conf


def failing_job(mapper_cls) -> JobConf:
    conf = JobConf()
    conf.set_job_name("fault-injection")
    conf.set_input_paths("/in")
    conf.set_output_path("/out")
    conf.set_input_format(TextInputFormat)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_num_reduce_tasks(4)
    conf.set_mapper_class(mapper_cls)
    conf.set_reducer_class(SumReducer)
    return conf


# --------------------------------------------------------------------- #
# runners / snapshots
# --------------------------------------------------------------------- #


def run_both(build_job, datasets, reducers=4, jobs=1):
    """Run the same job(s) on fresh engines; return both output dicts."""
    outputs = {}
    for kind, factory in (("hadoop", make_hadoop), ("m3r", make_m3r)):
        engine = factory()
        try:
            for path, pairs in datasets.items():
                chunks = defaultdict(list)
                for index, pair in enumerate(pairs):
                    chunks[index % 2].append(pair)
                for part, chunk in chunks.items():
                    engine.filesystem.write_pairs(f"{path}/part-{part:05d}", chunk)
            build_job(engine)
            outputs[kind] = sorted(
                (repr(k), repr(v)) for k, v in engine.filesystem.read_kv_pairs("/out")
            )
        finally:
            if hasattr(engine, "shutdown"):
                engine.shutdown()
    return outputs


def snapshot(engine, out_dir: str = "/out"):
    """Everything the determinism contract covers: committed output pairs,
    per-file layout, all counter totals, and (for M3R) the cached blocks."""
    per_file = {}
    for status in engine.filesystem.list_status(out_dir):
        per_file[status.path] = [
            (repr(k), repr(v)) for k, v in engine.filesystem.read_kv_pairs(status.path)
        ] if not status.path.endswith("_SUCCESS") else []
    cached = None
    if hasattr(engine, "cache"):
        cached = sorted(
            (e.name, e.path, e.place_id, e.nbytes,
             sorted((repr(k), repr(v)) for k, v in e.pairs))
            for e in engine.cache.entries()
        )
    return per_file, cached


def snapshot_output(engine, out_dir: str) -> Dict[str, str]:
    """Byte-level view of one output directory, keyed by basename (so two
    runs committed to different directories compare directly).  Pair
    files snapshot as the repr of their sequence, byte files as their
    raw bytes; ``_SUCCESS``-style markers record presence only."""
    per_file: Dict[str, str] = {}
    for status in engine.filesystem.list_files_recursive(out_dir):
        basename = status.path.rsplit("/", 1)[-1]
        if basename.startswith(("_", ".")):
            per_file[basename] = "<marker>"
            continue
        try:
            per_file[basename] = repr(engine.filesystem.read_pairs(status.path))
        except TypeError:
            per_file[basename] = repr(engine.filesystem.read_bytes(status.path))
    return per_file


def run_stress(factory, seed: int, threaded: bool, parts: int = NUM_SPLITS,
               engine_kwargs=None, conf_bools=None):
    """One engine, one seeded corpus, one run; returns the full snapshot."""
    engine = factory(**(engine_kwargs or {}))
    try:
        corpus = write_corpus(engine.filesystem, "/in", seed, parts=parts)
        conf = stress_job("/in", "/out")
        conf.set_boolean(REAL_THREADS_KEY, threaded)
        for key, value in (conf_bools or {}).items():
            conf.set_boolean(key, value)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        per_file, cached = snapshot(engine)
        counts = PyCounter()
        for k, v in engine.filesystem.read_kv_pairs("/out"):
            counts[str(k)] += v.get()
        return {
            "corpus": corpus,
            "output": per_file,
            "cached": cached,
            "counts": counts,
            "counters": result.counters.as_dict(),
            "counters_obj": result.counters,
            "metrics": result.metrics,
            "seconds": result.simulated_seconds,
        }
    finally:
        if hasattr(engine, "shutdown"):
            engine.shutdown()


# --------------------------------------------------------------------- #
# rerun-able workloads (the restore differential harness)
# --------------------------------------------------------------------- #


class WordCountWorkload:
    """Plain wordcount over a seeded text corpus."""

    name = "wordcount"

    def prepare(self, engine, seed: int) -> None:
        write_corpus(engine.filesystem, "/in", seed, parts=8, lines_per_part=4)

    def run(self, engine, tag: str, restore: bool = False) -> List[Any]:
        conf = wordcount_job("/in", f"/out-{tag}", 4)
        if restore:
            enable_restore(conf)
        return [engine.run_job(conf)]

    def output_dirs(self, tag: str) -> List[str]:
        return [f"/out-{tag}"]


class MatvecWorkload:
    """One blocked matrix-vector iteration (a two-job sequence with a
    temporary intermediate — exercises prefix reuse across a sequence)."""

    name = "matvec"
    rows, block, reducers = 64, 16, 4

    def prepare(self, engine, seed: int) -> None:
        num_blocks = self.rows // self.block
        g = matvec.generate_blocked_matrix(
            self.rows, self.block, sparsity=0.2, seed=seed * 13 + 1
        )
        v = matvec.generate_blocked_vector(self.rows, self.block, seed=seed * 13 + 2)
        matvec.write_partitioned(engine.filesystem, "/G", g, num_blocks, self.reducers)
        matvec.write_partitioned(engine.filesystem, "/v0", v, num_blocks, self.reducers)

    def run(self, engine, tag: str, restore: bool = False) -> List[Any]:
        num_blocks = self.rows // self.block
        sequence = matvec.iteration_jobs(
            "/G", "/v0", f"/v1-{tag}", f"/mv-tmp-{tag}", 0, num_blocks,
            self.reducers,
        )
        if restore:
            for conf in sequence.confs:
                enable_restore(conf)
        return engine.run_sequence(sequence)

    def output_dirs(self, tag: str) -> List[str]:
        return [f"/v1-{tag}"]


class GrepWorkload:
    """The paper's grep pipeline (search + sort jobs chained)."""

    name = "grep"

    def prepare(self, engine, seed: int) -> None:
        write_corpus(engine.filesystem, "/corpus", seed, parts=4, lines_per_part=5)

    def run(self, engine, tag: str, restore: bool = False) -> List[Any]:
        sequence = grep_sequence(
            "/corpus", f"/grep-{tag}", r"the|and|of", temp_dir=f"/gtmp-{tag}"
        )
        if restore:
            for conf in sequence.confs:
                enable_restore(conf)
        return engine.run_sequence(sequence)

    def output_dirs(self, tag: str) -> List[str]:
        return [f"/grep-{tag}"]


WORKLOADS = (WordCountWorkload(), MatvecWorkload(), GrepWorkload())
