"""Memory governance: budgets, eviction policies, spill and rehydration.

Covers the unit layer (budget arithmetic, policy victim selection), the
cache integration (eviction/spill/rehydrate, pinning, range-alias safety,
the nbytes fallback) and the engine layer (bounded runs stay byte-identical
to unbounded runs, conf-key overrides, metrics attribution), plus the
concurrency invariants under real worker threads.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.conf import (
    CACHE_CAPACITY_KEY,
    CACHE_EVICTION_POLICY_KEY,
    CACHE_PINNED_PATHS_KEY,
)
from repro.core.cache import KeyValueCache, split_cache_name
from repro.fs import InMemoryFileSystem
from repro.kvstore.store import BlockInfo, KeyValueStore
from repro.memory import (
    EvictionCandidate,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    MemoryBudget,
    MemoryGovernor,
    SpillManager,
    create_policy,
)
from repro.sim.cost_model import paper_cluster_cost_model
from repro.x10.places import Place
from tests.conftest import make_m3r


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #

def _places(n: int = 2):
    return [Place(i) for i in range(n)]


def _governed_cache(
    capacity: int,
    *,
    places: int = 2,
    policy: str = "lru",
    spill: bool = True,
    high: float = 0.9,
    low: float = 0.75,
):
    fs = InMemoryFileSystem()
    governor = MemoryGovernor(
        budget=MemoryBudget(capacity, high, low),
        policy=create_policy(policy),
        spill=SpillManager(fs, paper_cluster_cost_model()),
        spill_enabled=spill,
    )
    return KeyValueCache(_places(places), governor=governor), fs


def _pairs(tag: str, n: int = 4):
    return [(f"{tag}-{i}", i) for i in range(n)]


# --------------------------------------------------------------------------- #
# budget
# --------------------------------------------------------------------------- #

def test_budget_charge_release_and_watermarks():
    budget = MemoryBudget(1000, high_watermark=0.9, low_watermark=0.5)
    budget.charge(0, 800)
    assert budget.occupancy(0) == 800
    assert not budget.over_high_watermark(0)
    budget.charge(0, 150)
    assert budget.over_high_watermark(0)
    # Eviction target reaches down to the LOW watermark (hysteresis).
    assert budget.eviction_target(0) == 950 - 500
    budget.release(0, 600)
    assert budget.occupancy(0) == 350
    assert budget.high_water(0) == 950  # high-water mark persists


def test_budget_unbounded_never_evicts():
    budget = MemoryBudget.unbounded()
    budget.charge(3, 10**12)
    assert not budget.over_high_watermark(3)
    assert budget.eviction_target(3) == 0


def test_budget_validation():
    with pytest.raises(ValueError):
        MemoryBudget(-1)
    with pytest.raises(ValueError):
        MemoryBudget(100, high_watermark=0.5, low_watermark=0.9)
    with pytest.raises(ValueError):
        MemoryBudget(100, high_watermark=1.5)


# --------------------------------------------------------------------------- #
# policies
# --------------------------------------------------------------------------- #

def _candidates(sizes):
    return [EvictionCandidate(name, 0, size) for name, size in sizes]


def test_lru_evicts_least_recently_touched():
    policy = LRUPolicy()
    for name in ("a", "b", "c"):
        policy.on_admit(name, 10)
    policy.on_access("a", 10)  # refresh a: b is now the coldest
    victims = policy.select_victims(
        _candidates([("a", 10), ("b", 10), ("c", 10)]), bytes_to_free=10
    )
    assert victims == ["b"]


def test_fifo_ignores_accesses():
    policy = FIFOPolicy()
    for name in ("a", "b", "c"):
        policy.on_admit(name, 10)
    policy.on_access("a", 10)  # no effect: a was admitted first, a goes first
    victims = policy.select_victims(
        _candidates([("a", 10), ("b", 10), ("c", 10)]), bytes_to_free=10
    )
    assert victims == ["a"]


def test_gds_prefers_large_cold_entries():
    policy = GreedyDualSizePolicy()
    policy.on_admit("big", 1000)
    policy.on_admit("small", 10)
    # Equal recency: the big entry has the lower cost/size priority.
    victims = policy.select_victims(
        _candidates([("big", 1000), ("small", 10)]), bytes_to_free=500
    )
    assert victims == ["big"]


def test_gds_inflation_ages_out_stale_entries():
    policy = GreedyDualSizePolicy()
    policy.on_admit("old-small", 10)
    victims = policy.select_victims(
        _candidates([("old-small", 10)]), bytes_to_free=5
    )
    assert victims == ["old-small"]
    policy.on_remove("old-small")
    # Post-eviction inflation: a NEW large entry outranks the stale priority
    # a re-admitted copy of the old entry would have had before aging.
    policy.on_admit("new-big", 1000)
    assert policy._priority["new-big"] > policy.MISS_COST / 10 * 0  # sanity
    policy.on_admit("reborn-small", 10)
    ordered = policy.select_victims(
        _candidates([("new-big", 1000), ("reborn-small", 10)]), bytes_to_free=1
    )
    assert ordered == ["new-big"]


def test_policy_victims_cover_requested_bytes():
    policy = LRUPolicy()
    for name in ("a", "b", "c"):
        policy.on_admit(name, 30)
    victims = policy.select_victims(
        _candidates([("a", 30), ("b", 30), ("c", 30)]), bytes_to_free=50
    )
    assert victims == ["a", "b"]  # 60 >= 50, stops there


def test_create_policy_registry():
    assert create_policy("LRU").name == "lru"
    assert create_policy("greedydual").name == "gds"
    with pytest.raises(ValueError):
        create_policy("clock")


# --------------------------------------------------------------------------- #
# cache integration: eviction, spill, rehydration
# --------------------------------------------------------------------------- #

def test_eviction_spills_and_rehydrates_byte_identical():
    cache, fs = _governed_cache(100)
    first = _pairs("first")
    cache.put_file("/a", 0, list(first), 60)
    cache.put_file("/b", 0, _pairs("second"), 60)  # pushes over 90
    entry_a = cache.get_file("/a", materialize=False)
    assert entry_a is not None and entry_a.spilled and entry_a.pairs is None
    # The spill file exists on the raw filesystem, outside job namespaces.
    assert fs.exists(entry_a.spill.path)
    stats = cache.governor.lifetime.counters
    assert stats["cache_evictions"] == 1 and stats["cache_spills"] == 1
    # A materializing lookup transparently rehydrates, identical pairs.
    hit = cache.get_file("/a")
    assert hit is not None and not hit.spilled
    assert hit.pairs == first
    assert cache.governor.lifetime.counters["cache_rehydrations"] == 1


def test_spilled_entries_remain_visible_to_namespace_queries():
    cache, _ = _governed_cache(100)
    cache.put_file("/dir/a", 0, _pairs("a"), 60)
    cache.put_file("/dir/b", 0, _pairs("b"), 60)
    assert cache.get_file("/dir/a", materialize=False).spilled
    # contains/paths_under still see the spilled entry (cachefs union view).
    assert cache.contains_path("/dir/a")
    assert cache.paths_under("/dir") == ["/dir/a", "/dir/b"]
    # Metadata peeks did NOT rehydrate anything.
    assert cache.governor.lifetime.counters.get("cache_rehydrations", 0) == 0


def test_peek_does_not_perturb_lru_order():
    cache, _ = _governed_cache(200)
    cache.put_file("/a", 0, _pairs("a"), 60)
    cache.put_file("/b", 0, _pairs("b"), 60)
    # Metadata peeks at /a must not refresh it...
    for _ in range(5):
        cache.get_file("/a", materialize=False)
    cache.put_file("/c", 0, _pairs("c"), 80)  # 200 > 180 high watermark
    # ...so /a (the true LRU) is the victim, not /b.
    assert cache.get_file("/a", materialize=False).spilled
    assert not cache.get_file("/b", materialize=False).spilled


def test_whole_file_eviction_leaves_no_stale_range_alias():
    """A split lookup that matched the whole-file entry must keep working
    after that entry is evicted — and must never see pairs=None."""
    cache, _ = _governed_cache(100)
    data = _pairs("whole", 8)
    cache.put_file("/f", 0, list(data), 60)
    # Whole-file alias serves the full-range split.
    alias = cache.get_split("/f", 0, 60, file_length=60)
    assert alias is not None and alias.pairs == data
    cache.put_file("/g", 0, _pairs("other"), 60)  # evicts /f
    assert cache.get_file("/f", materialize=False).spilled
    # The alias path rehydrates through the same entry: no stale alias, no
    # spilled entry ever escapes a materializing lookup.
    again = cache.get_split("/f", 0, 60, file_length=60)
    assert again is not None
    assert again.pairs == data and not again.spilled
    # An exact-range entry under the same path is independent of the whole
    # file and survives its eviction.
    cache.put_split("/f", 0, 30, 1, _pairs("range"), 20)
    ranged = cache.get_split("/f", 0, 30)
    assert ranged is not None and ranged.name == split_cache_name("/f", 0, 30)


def test_pinned_entries_survive_eviction_waves():
    cache, _ = _governed_cache(100)
    cache.put_file("/keep", 0, _pairs("keep"), 60)
    assert cache.pin("/keep")
    cache.put_file("/loser", 0, _pairs("loser"), 60)
    # /keep is older but pinned; /loser takes the eviction.
    assert not cache.get_file("/keep", materialize=False).spilled
    assert cache.get_file("/loser", materialize=False).spilled
    cache.unpin("/keep")
    cache.put_file("/new", 0, _pairs("new"), 60)
    assert cache.get_file("/keep", materialize=False).spilled


def test_pinned_prefix_protects_job_outputs():
    cache, _ = _governed_cache(100)
    cache.governor.pin_prefix("/out")
    cache.put_file("/out/part-00000", 0, _pairs("out"), 60)
    cache.put_file("/other", 0, _pairs("other"), 60)
    assert not cache.get_file("/out/part-00000", materialize=False).spilled
    assert cache.get_file("/other", materialize=False).spilled
    cache.governor.unpin_prefix("/out")


def test_spill_disabled_drops_durable_keeps_temp():
    cache, _ = _governed_cache(100, spill=False)
    cache.put_file("/durable", 0, _pairs("d"), 60, durable=True)
    cache.put_file("/tmp/x", 0, _pairs("t"), 60, durable=False)
    cache.put_file("/durable2", 0, _pairs("d2"), 60, durable=True)
    # Durable entries may be dropped outright (re-readable from the FS)...
    assert cache.get_file("/durable", materialize=False) is None
    # ...but the non-durable temp output exists only here: never dropped.
    temp = cache.get_file("/tmp/x", materialize=False)
    assert temp is not None and not temp.spilled
    assert cache.governor.lifetime.counters["cache_evictions"] >= 1
    assert cache.governor.lifetime.counters.get("cache_spills", 0) == 0


def test_put_nbytes_fallback_uses_serializer_estimate():
    cache, _ = _governed_cache(0)  # unbounded: accounting only
    pairs = _pairs("sized", 16)
    entry = cache.put_file("/z", 0, pairs, 0)  # caller passed no size
    assert entry.nbytes > 0
    assert cache.governor.budget.occupancy(0) == entry.nbytes
    neg = cache.put_file("/neg", 0, pairs, -5)
    assert neg.nbytes == entry.nbytes


def test_delete_path_releases_budget_and_spill_files():
    cache, fs = _governed_cache(100)
    cache.put_file("/a", 0, _pairs("a"), 60)
    cache.put_file("/b", 0, _pairs("b"), 60)  # /a spills
    spilled = cache.get_file("/a", materialize=False)
    spill_path = spilled.spill.path
    assert fs.exists(spill_path)
    assert cache.delete_path("/a")
    assert not fs.exists(spill_path)  # spill file discarded with the entry
    assert cache.delete_path("/b")
    assert cache.governor.budget.occupancy(0) == 0
    assert len(cache) == 0


def test_rename_keeps_spilled_entries_and_policy_state():
    cache, _ = _governed_cache(100)
    cache.put_file("/old/a", 0, _pairs("a"), 60)
    cache.put_file("/old/b", 0, _pairs("b"), 60)  # /old/a spills
    cache.rename_path("/old", "/new")
    assert cache.get_file("/old/a", materialize=False) is None
    moved = cache.get_file("/new/a")
    assert moved is not None and moved.pairs == _pairs("a")
    resident = cache.get_file("/new/b")
    assert resident is not None and resident.pairs == _pairs("b")


def test_reconfigure_shrinks_budget_and_enforces():
    cache, _ = _governed_cache(0)  # starts unbounded
    cache.put_file("/a", 0, _pairs("a"), 60)
    cache.put_file("/b", 0, _pairs("b"), 60)
    assert cache.governor.lifetime.counters.get("cache_evictions", 0) == 0
    cache.reconfigure(capacity_bytes=100, policy_name="fifo")
    assert cache.governor.policy.name == "fifo"
    assert cache.governor.lifetime.counters["cache_evictions"] >= 1
    assert cache.governor.budget.occupancy(0) <= 100


def test_stats_shape():
    cache, _ = _governed_cache(100)
    cache.put_file("/a", 0, _pairs("a"), 60)
    cache.put_file("/b", 1, _pairs("b"), 60)
    stats = cache.stats()
    assert stats["capacity_bytes"] == 100
    assert stats["policy"] == "lru"
    assert set(stats["places"]) == {0, 1}
    assert stats["places"][0]["resident_bytes"] == 60
    assert "counters" in stats["lifetime"]


# --------------------------------------------------------------------------- #
# kvstore byte accounting
# --------------------------------------------------------------------------- #

def test_store_place_bytes_counter_matches_scan():
    store = KeyValueStore(_places(3))
    store.put_block("/x", BlockInfo(place_id=0), _pairs("x"), 100)
    store.put_block("/y", BlockInfo(place_id=1), _pairs("y"), 40)
    store.put_block("/dir/z", BlockInfo(place_id=0), _pairs("z"), 60)
    for place in range(3):
        assert store.total_bytes_at_place(place) == store.scan_bytes_at_place(place)
    assert store.total_bytes_at_place(0) == 160
    store.rename("/x", "/renamed")
    assert store.total_bytes_at_place(0) == store.scan_bytes_at_place(0) == 160
    store.delete("/dir")
    assert store.total_bytes_at_place(0) == store.scan_bytes_at_place(0) == 100
    store.delete("/renamed")
    assert store.total_bytes_at_place(0) == store.scan_bytes_at_place(0) == 0


# --------------------------------------------------------------------------- #
# concurrency: put/get/evict races under real threads
# --------------------------------------------------------------------------- #

def test_concurrent_put_and_evict_invariants():
    """Hammer one governed cache from many threads; every materializing
    lookup must return live pairs, and the final budget must reconcile
    exactly with the resident entries."""
    cache, _ = _governed_cache(2000, places=4)
    errors = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for i in range(40):
                path = f"/w{worker_id}/f{i % 10}"
                pairs = _pairs(f"{worker_id}-{i}", 6)
                cache.put_file(path, (worker_id + i) % 4, list(pairs), 120)
                hit = cache.get_file(path)
                if hit is not None:  # may already be replaced by a peer
                    assert hit.pairs is not None, "materialized entry had no pairs"
                    assert not hit.spilled
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    # Budget reconciliation: occupancy equals the bytes of resident entries.
    per_place = {p: 0 for p in range(4)}
    for entry in cache.entries():
        if not entry.spilled:
            per_place[entry.place_id] += entry.nbytes
    for place, expect in per_place.items():
        assert cache.governor.budget.occupancy(place) == expect
    assert cache.governor.lifetime.counters.get("cache_evictions", 0) > 0


def test_concurrent_lookup_during_eviction_never_sees_spilled():
    cache, _ = _governed_cache(500)
    for i in range(4):
        cache.put_file(f"/seed{i}", 0, _pairs(f"seed{i}"), 100)
    stop = threading.Event()
    errors = []

    def reader() -> None:
        try:
            while not stop.is_set():
                for i in range(4):
                    hit = cache.get_file(f"/seed{i}")
                    if hit is not None:
                        assert hit.pairs is not None and not hit.spilled
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    def churner() -> None:
        try:
            for i in range(120):
                cache.put_file(f"/churn{i % 6}", 0, _pairs(f"c{i}"), 100)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    threads = [threading.Thread(target=reader) for _ in range(3)]
    threads.append(threading.Thread(target=churner))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


# --------------------------------------------------------------------------- #
# engine integration
# --------------------------------------------------------------------------- #

def _run_matvec(engine, iterations: int = 2, rows: int = 200):
    from repro.apps import matvec

    block = max(1, rows // 8)
    num_row_blocks = (rows + block - 1) // block
    g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05)
    v = matvec.generate_blocked_vector(rows, block)
    matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, 4)
    matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, 4)
    engine.warm_cache_from("/G")
    engine.warm_cache_from("/V0")
    current = "/V0"
    for iteration in range(iterations):
        nxt = f"/V{iteration + 1}"
        sequence = matvec.iteration_jobs(
            "/G", current, nxt, "/scratch", iteration, num_row_blocks, 4
        )
        for result in sequence.run_all(engine):
            assert result.succeeded, result.error
        current = nxt
    return sorted(
        (key, tuple(value.values.ravel().tolist()))
        for key, value in engine.filesystem.read_kv_pairs(current)
    )


def test_bounded_engine_matches_unbounded_byte_for_byte():
    unbounded = make_m3r(4)
    try:
        expected = _run_matvec(unbounded)
        assert unbounded.governor.lifetime.counters.get("cache_evictions", 0) == 0
    finally:
        unbounded.shutdown()

    bounded = make_m3r(4, cache_capacity_bytes=6000)
    try:
        actual = _run_matvec(bounded)
        # Pressure actually occurred, and the answer did not change.
        assert bounded.governor.lifetime.counters["cache_evictions"] > 0
        assert bounded.governor.lifetime.counters["cache_spills"] > 0
    finally:
        bounded.shutdown()
    assert actual == expected


def test_jobconf_overrides_reconfigure_governor():
    from repro.apps.wordcount import generate_text, wordcount_job

    engine = make_m3r(4)
    try:
        engine.filesystem.write_text("/in.txt", generate_text(200))
        conf = wordcount_job("/in.txt", "/out", 4)
        conf.set_int(CACHE_CAPACITY_KEY, 50_000)
        conf.set(CACHE_EVICTION_POLICY_KEY, "gds")
        conf.set_strings(CACHE_PINNED_PATHS_KEY, ["/precious"])
        result = engine.run_job(conf)
        assert result.succeeded
        assert engine.governor.budget.capacity_bytes == 50_000
        assert engine.governor.policy.name == "gds"
        # Job-scoped pins are released after the job.
        assert engine.governor.pinned_prefixes() == []
    finally:
        engine.shutdown()


def test_spill_time_lands_on_job_clock_and_metrics():
    engine = make_m3r(4, cache_capacity_bytes=6000)
    try:
        from repro.apps import matvec

        rows, block = 200, 25
        num_row_blocks = (rows + block - 1) // block
        g = matvec.generate_blocked_matrix(rows, block, sparsity=0.05)
        v = matvec.generate_blocked_vector(rows, block)
        matvec.write_partitioned(engine.filesystem, "/G", g, num_row_blocks, 4)
        matvec.write_partitioned(engine.filesystem, "/V0", v, num_row_blocks, 4)
        engine.warm_cache_from("/G")
        engine.warm_cache_from("/V0")
        sequence = matvec.iteration_jobs(
            "/G", "/V0", "/V1", "/scratch", 0, num_row_blocks, 4
        )
        results = [engine.run_job(conf) for conf in sequence]
        assert all(r.succeeded for r in results)
        spill_write = sum(
            r.metrics.time.get("spill_write") for r in results
        )
        if engine.governor.lifetime.counters.get("cache_spills", 0):
            assert spill_write > 0
            # Lifetime view accumulates the same category.
            assert engine.governor.lifetime.time.get("spill_write") >= spill_write
    finally:
        engine.shutdown()


def test_unbounded_default_changes_nothing():
    """Capacity 0 (the default) must leave per-job timings untouched by
    governance: no evictions, no spill charges, no governor seconds."""
    engine = make_m3r(4)
    try:
        expected = _run_matvec(engine)
        assert expected  # produced output
        counters = engine.governor.lifetime.counters
        assert counters.get("cache_evictions", 0) == 0
        assert counters.get("cache_spills", 0) == 0
        assert engine.governor.lifetime.time.get("spill_write") == 0.0
        assert engine.governor.drain_seconds() == 0.0
    finally:
        engine.shutdown()
