"""The mini Pig layer: expressions, parser, compiler, engine equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pig import (
    DistinctNode,
    ExprError,
    FilterNode,
    ForeachNode,
    GroupNode,
    JoinNode,
    LimitNode,
    LoadNode,
    OrderNode,
    PigParseError,
    PigRunner,
    evaluate,
    parse_expression,
    parse_pig_script,
)
from repro.pig.expr import coerce, fields_used

from conftest import make_hadoop, make_m3r


class TestExpressions:
    def test_arithmetic(self):
        ast = parse_expression("a * 2 + b")
        assert evaluate(ast, {"a": 3.0, "b": 1.0}) == 7.0

    def test_precedence(self):
        assert evaluate(parse_expression("2 + 3 * 4"), {}) == 14.0
        assert evaluate(parse_expression("(2 + 3) * 4"), {}) == 20.0

    def test_comparisons(self):
        row = {"x": 5.0}
        assert evaluate(parse_expression("x >= 5"), row) is True
        assert evaluate(parse_expression("x != 5"), row) is False
        assert evaluate(parse_expression("x < 10 AND x > 0"), row) is True
        assert evaluate(parse_expression("NOT x == 5"), row) is False
        assert evaluate(parse_expression("x == 99 OR x == 5"), row) is True

    def test_strings(self):
        row = {"name": "bob"}
        assert evaluate(parse_expression("name == 'bob'"), row) is True
        assert evaluate(parse_expression('name != "alice"'), row) is True

    def test_modulo_and_unary(self):
        assert evaluate(parse_expression("7 % 3"), {}) == 1.0
        assert evaluate(parse_expression("-x"), {"x": 4.0}) == -4.0

    def test_unknown_field(self):
        with pytest.raises(ExprError):
            evaluate(parse_expression("missing + 1"), {"x": 1.0})

    def test_type_error_on_string_math(self):
        with pytest.raises(ExprError):
            evaluate(parse_expression("name + 1"), {"name": "bob"})

    def test_parse_errors(self):
        for bad in ("a +", "(a", "a ==", "a @ b"):
            with pytest.raises(ExprError):
                parse_expression(bad)

    def test_fields_used(self):
        assert sorted(fields_used(parse_expression("a*b + c > d"))) == list("abcd")

    def test_coerce(self):
        assert coerce("3.5") == 3.5
        assert coerce("abc") == "abc"
        assert coerce("") == ""

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    @settings(max_examples=80)
    def test_arithmetic_property(self, a, b):
        row = {"a": a, "b": b}
        assert evaluate(parse_expression("a + b"), row) == pytest.approx(a + b)
        assert evaluate(parse_expression("a * b"), row) == pytest.approx(a * b)
        assert evaluate(parse_expression("a - b"), row) == pytest.approx(a - b)


class TestPigParser:
    SCRIPT = """
    -- full-surface script
    raw = LOAD '/data/x.txt' AS (a, b, c);
    filtered = FILTER raw BY a > 1 AND c == 'ok';
    shaped = FOREACH filtered GENERATE a, b * 2 AS doubled;
    grouped = GROUP shaped BY a;
    stats = FOREACH grouped GENERATE group, COUNT(shaped) AS n, SUM(shaped.doubled);
    pairs = JOIN shaped BY a, stats BY group;
    uniq = DISTINCT shaped;
    ranked = ORDER stats BY n DESC;
    first = LIMIT ranked 5;
    STORE stats INTO '/out/stats';
    """

    def test_node_types(self):
        script = parse_pig_script(self.SCRIPT)
        types = {alias: type(node) for alias, node in script.nodes.items()}
        assert types["raw"] is LoadNode
        assert types["filtered"] is FilterNode
        assert types["shaped"] is ForeachNode
        assert types["grouped"] is GroupNode
        assert types["stats"] is GroupNode  # aggregation folded
        assert types["pairs"] is JoinNode
        assert types["uniq"] is DistinctNode
        assert types["ranked"] is OrderNode
        assert types["first"] is LimitNode
        assert len(script.stores) == 1

    def test_schemas(self):
        script = parse_pig_script(self.SCRIPT)
        assert script.nodes["raw"].schema.fields == ("a", "b", "c")
        assert script.nodes["shaped"].schema.fields == ("a", "doubled")
        assert script.nodes["stats"].schema.fields == ("group", "n", "sum_doubled")
        assert script.nodes["pairs"].schema.fields == (
            "shaped::a", "shaped::doubled", "stats::group", "stats::n",
            "stats::sum_doubled",
        )

    def test_aggregation_folding(self):
        script = parse_pig_script(self.SCRIPT)
        stats = script.nodes["stats"]
        assert [(f, n) for _, f, n in stats.aggregates] == [
            ("GROUP", ""), ("COUNT", ""), ("SUM", "doubled"),
        ]

    def test_unfolded_foreach_over_group(self):
        script = parse_pig_script(
            "a = LOAD '/x' AS (k, v); g = GROUP a BY k;"
            " plain = FOREACH g GENERATE group;"
        )
        # 'group' alone with no aggregates folds into a GroupNode too.
        assert isinstance(script.nodes["plain"], GroupNode)

    @pytest.mark.parametrize("bad", [
        "x = FILTER missing BY a > 1;",
        "x = LOAD '/p';",  # no schema
        "STORE nothing INTO '/out';",
        "x = ORDER y BY f;",
        "x = JUNK something;",
        "a = LOAD '/x' AS (k, v); s = FOREACH a GENERATE SUM(other.v);",
    ])
    def test_errors(self, bad):
        with pytest.raises(PigParseError):
            parse_pig_script(bad)

    def test_order_by_unknown_field(self):
        with pytest.raises(PigParseError):
            parse_pig_script(
                "a = LOAD '/x' AS (k, v); o = ORDER a BY missing;"
            )


DATA = "\n".join(
    f"{day}\t{item}\t{qty}"
    for day, item, qty in [
        ("mon", "apple", 10), ("mon", "pear", 4), ("tue", "apple", 7),
        ("tue", "plum", 2), ("wed", "apple", 1), ("wed", "pear", 9),
    ]
) + "\n"


SCRIPT = """
sales = LOAD '/data/sales.txt' AS (day, item, qty);
big = FILTER sales BY qty >= 4;
byitem = GROUP big BY item;
stats = FOREACH byitem GENERATE group, COUNT(big) AS n, SUM(big.qty) AS total,
                               MIN(big.qty) AS lo, MAX(big.qty) AS hi;
ranked = ORDER stats BY total DESC;
uniqdays = DISTINCT sales;
top = LIMIT ranked 2;
STORE stats INTO '/out/stats';
STORE ranked INTO '/out/ranked';
STORE top INTO '/out/top';
"""


class TestPigExecution:
    def run_engine(self, factory):
        engine = factory()
        engine.filesystem.write_text("/data/sales.txt", DATA)
        runner = PigRunner(engine, num_reducers=4)
        runner.run(SCRIPT)
        return runner

    def test_equivalent_on_both_engines(self):
        rows = {}
        for factory in (make_hadoop, make_m3r):
            runner = self.run_engine(factory)
            rows[factory.__name__] = {
                "stats": sorted(runner.read_output("/out/stats")),
                "ranked": runner.read_output("/out/ranked"),
                "top": runner.read_output("/out/top"),
            }
        assert rows["make_hadoop"] == rows["make_m3r"]

    def test_aggregate_values(self):
        runner = self.run_engine(make_m3r)
        stats = dict(
            (line.split("\t")[0], line.split("\t")[1:])
            for line in runner.read_output("/out/stats")
        )
        assert stats["apple"] == ["2", "17", "7", "10"]
        assert stats["pear"] == ["2", "13", "4", "9"]
        assert "plum" not in stats  # filtered (qty 2 < 4)

    def test_order_and_limit(self):
        runner = self.run_engine(make_m3r)
        ranked = [line.split("\t")[0] for line in runner.read_output("/out/ranked")]
        assert ranked == ["apple", "pear"]
        assert len(runner.read_output("/out/top")) == 2

    def test_intermediates_temporary_on_m3r(self):
        runner = self.run_engine(make_m3r)
        engine = runner.engine
        temp_files = [
            status.path
            for status in engine.raw_filesystem.list_files_recursive("/pig")
        ] if engine.raw_filesystem.exists("/pig") else []
        assert temp_files == []  # nothing flushed
        assert engine.cache.total_bytes() > 0

    def test_store_without_statement_raises(self):
        engine = make_m3r()
        with pytest.raises(ValueError):
            PigRunner(engine).run("a = LOAD '/x' AS (f);")

    def test_join_cross_product(self):
        engine = make_m3r()
        engine.filesystem.write_text("/l.txt", "1\tx\n1\ty\n2\tz\n")
        engine.filesystem.write_text("/r.txt", "1\tA\n1\tB\n3\tC\n")
        runner = PigRunner(engine, num_reducers=2)
        runner.run(
            "l = LOAD '/l.txt' AS (k, lv); r = LOAD '/r.txt' AS (k2, rv);"
            " j = JOIN l BY k, r BY k2; STORE j INTO '/out/j';"
        )
        rows = sorted(runner.read_output("/out/j"))
        assert rows == sorted([
            "1\tx\t1\tA", "1\tx\t1\tB", "1\ty\t1\tA", "1\ty\t1\tB",
        ])

    def test_distinct(self):
        engine = make_m3r()
        engine.filesystem.write_text("/d.txt", "a\t1\na\t1\nb\t2\n")
        runner = PigRunner(engine, num_reducers=2)
        runner.run("x = LOAD '/d.txt' AS (k, v); u = DISTINCT x;"
                   " STORE u INTO '/out/u';")
        assert sorted(runner.read_output("/out/u")) == ["a\t1", "b\t2"]

    def test_order_ascending_strings(self):
        engine = make_m3r()
        engine.filesystem.write_text("/s.txt", "pear\nzeta\napple\n")
        runner = PigRunner(engine, num_reducers=2)
        runner.run("x = LOAD '/s.txt' AS (w); o = ORDER x BY w;"
                   " STORE o INTO '/out/o';")
        assert runner.read_output("/out/o") == ["apple", "pear", "zeta"]
