"""The distributed key/value store (paper Section 5.2): API, locking,
serializability under real concurrency."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.writables import IntWritable, Text
from repro.kvstore import (
    BlockInfo,
    KeyValueStore,
    LockTable,
    PathExistsError,
    PathMissingError,
    least_common_ancestor,
    path_components,
)
from repro.kvstore.paths import ancestors, is_ancestor_or_self
from repro.x10.places import Place


@pytest.fixture
def store():
    return KeyValueStore([Place(i) for i in range(4)])


class TestPathAlgebra:
    def test_components(self):
        assert path_components("/a/b/c") == ["a", "b", "c"]
        assert path_components("/") == []

    def test_ancestors(self):
        assert ancestors("/a/b/c") == ["/", "/a", "/a/b"]
        assert ancestors("/a") == ["/"]

    def test_lca(self):
        assert least_common_ancestor(["/a/b/c", "/a/b/d"]) == "/a/b"
        assert least_common_ancestor(["/a/b", "/c"]) == "/"
        assert least_common_ancestor(["/a/b"]) == "/a/b"
        assert least_common_ancestor(["/a/b", "/a/b/c"]) == "/a/b"
        with pytest.raises(ValueError):
            least_common_ancestor([])

    def test_is_ancestor_or_self(self):
        assert is_ancestor_or_self("/a", "/a/b")
        assert is_ancestor_or_self("/a/b", "/a/b")
        assert is_ancestor_or_self("/", "/anything")
        assert not is_ancestor_or_self("/a/b", "/a")
        assert not is_ancestor_or_self("/ab", "/a/b")


class TestLockTable:
    def test_mutual_exclusion(self):
        table = LockTable()
        counter = {"value": 0, "max": 0}

        def worker():
            for _ in range(200):
                with table.holding("/shared"):
                    counter["value"] += 1
                    counter["max"] = max(counter["max"], counter["value"])
                    counter["value"] -= 1

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["max"] == 1  # never two holders at once

    def test_table_drains_when_quiescent(self):
        table = LockTable()
        with table.holding("/a"):
            assert table.live_entries() == 1
        assert table.live_entries() == 0

    def test_release_unheld_raises(self):
        with pytest.raises(RuntimeError):
            LockTable().release("/never")

    def test_acquire_all_no_deadlock_opposite_orders(self):
        """Two tasks locking {a, b} in opposite argument orders must not
        deadlock — the LCA-ordered growing phase serializes them."""
        table = LockTable()
        done = []

        def task(paths):
            for _ in range(100):
                with table.acquire_all(paths):
                    pass
            done.append(True)

        t1 = threading.Thread(target=task, args=(["/x/a", "/x/b"],))
        t2 = threading.Thread(target=task, args=(["/x/b", "/x/a"],))
        t1.start(); t2.start()
        t1.join(timeout=30); t2.join(timeout=30)
        assert len(done) == 2
        assert table.live_entries() == 0

    def test_acquire_all_empty(self):
        with LockTable().acquire_all([]):
            pass


class TestStoreApi:
    def test_writer_creates_block_at_place(self, store):
        with store.create_writer("/f", BlockInfo(place_id=2)) as writer:
            writer.write(IntWritable(1), Text("a"))
        info = store.get_info("/f")
        assert info is not None and not info.is_dir
        assert info.blocks[0].info.place_id == 2
        assert info.total_records == 1
        assert info.total_bytes > 0

    def test_multiple_blocks_accumulate(self, store):
        for place in (0, 1):
            with store.create_writer("/f", BlockInfo(place_id=place)) as writer:
                writer.write(IntWritable(place), Text("v"))
        info = store.get_info("/f")
        assert len(info.blocks) == 2
        assert store.create_reader("/f").read_all() == [
            (IntWritable(0), Text("v")), (IntWritable(1), Text("v")),
        ]

    def test_reader_filters_by_block_info(self, store):
        with store.create_writer("/f", BlockInfo(place_id=0, tag="a")) as w:
            w.write(IntWritable(0), Text("zero"))
        with store.create_writer("/f", BlockInfo(place_id=1, tag="b")) as w:
            w.write(IntWritable(1), Text("one"))
        only_b = store.create_reader("/f", BlockInfo(place_id=1, tag="b")).read_all()
        assert only_b == [(IntWritable(1), Text("one"))]

    def test_reader_missing_raises(self, store):
        with pytest.raises(PathMissingError):
            store.create_reader("/missing")

    def test_write_after_close_raises(self, store):
        writer = store.create_writer("/f", BlockInfo(place_id=0))
        writer.close()
        with pytest.raises(Exception):
            writer.write(IntWritable(1), Text("x"))

    def test_abandoned_writer_commits_nothing(self, store):
        try:
            with store.create_writer("/f", BlockInfo(place_id=0)) as writer:
                writer.write(IntWritable(1), Text("x"))
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert store.get_info("/f") is None

    def test_mkdirs_and_dir_info(self, store):
        store.mkdirs("/a/b/c")
        info = store.get_info("/a/b")
        assert info is not None and info.is_dir

    def test_write_over_dir_raises(self, store):
        store.mkdirs("/d")
        with pytest.raises(PathExistsError):
            with store.create_writer("/d", BlockInfo(place_id=0)) as writer:
                writer.write(IntWritable(1), Text("x"))

    def test_delete_file_and_blocks(self, store):
        with store.create_writer("/f", BlockInfo(place_id=3)) as writer:
            writer.write(IntWritable(1), Text("x"))
        assert store.total_bytes_at_place(3) > 0
        assert store.delete("/f")
        assert store.get_info("/f") is None
        assert store.total_bytes_at_place(3) == 0

    def test_delete_tree(self, store):
        for name in ("/t/a", "/t/sub/b"):
            with store.create_writer(name, BlockInfo(place_id=0)) as writer:
                writer.write(IntWritable(0), Text("v"))
        assert store.delete("/t")
        assert store.list_paths("/t") == []

    def test_delete_missing_false(self, store):
        assert store.delete("/missing") is False

    def test_rename_file(self, store):
        with store.create_writer("/old", BlockInfo(place_id=1)) as writer:
            writer.write(IntWritable(1), Text("x"))
        store.rename("/old", "/new/name")
        assert store.get_info("/old") is None
        assert store.create_reader("/new/name").read_all() == [
            (IntWritable(1), Text("x"))
        ]

    def test_rename_tree(self, store):
        with store.create_writer("/dir/leaf", BlockInfo(place_id=0)) as writer:
            writer.write(IntWritable(7), Text("deep"))
        store.mkdirs("/dir")
        store.rename("/dir", "/moved")
        assert store.create_reader("/moved/leaf").read_all() == [
            (IntWritable(7), Text("deep"))
        ]

    def test_rename_missing_raises(self, store):
        with pytest.raises(PathMissingError):
            store.rename("/none", "/dst")

    def test_rename_onto_existing_raises(self, store):
        for name in ("/a", "/b"):
            with store.create_writer(name, BlockInfo(place_id=0)) as writer:
                writer.write(IntWritable(0), Text("v"))
        with pytest.raises(PathExistsError):
            store.rename("/a", "/b")

    def test_rename_to_self_is_noop(self, store):
        with store.create_writer("/a", BlockInfo(place_id=0)) as writer:
            writer.write(IntWritable(0), Text("v"))
        store.rename("/a", "/a")
        assert store.exists("/a")

    def test_metadata_distribution_is_stable(self, store):
        assert store.metadata_place("/some/path") == store.metadata_place("/some/path")
        places = {store.metadata_place(f"/p{i}") for i in range(64)}
        assert len(places) > 1  # hashing actually spreads metadata

    def test_put_block_aliases_not_copies(self, store):
        pairs = [(IntWritable(1), Text("shared"))]
        stored = store.put_block("/f", BlockInfo(place_id=0), pairs, nbytes=10)
        assert stored[0][1] is pairs[0][1]  # the cache keeps references

    def test_invalid_place_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_writer("/f", BlockInfo(place_id=99))


class TestStoreConcurrency:
    def test_concurrent_disjoint_writers(self, store):
        errors = []

        def writer_task(tid):
            try:
                for i in range(50):
                    with store.create_writer(f"/w{tid}/f{i}", BlockInfo(tid % 4)) as w:
                        w.write(IntWritable(i), Text("x"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer_task, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for tid in range(8):
            files = [
                p for p in store.list_paths(f"/w{tid}")
                if not store.get_info(p).is_dir
            ]
            assert len(files) == 50

    def test_concurrent_same_path_appends_all_survive(self, store):
        def appender(tid):
            for i in range(25):
                with store.create_writer("/hot", BlockInfo(tid % 4)) as w:
                    w.write(IntWritable(tid * 100 + i), Text("v"))

        threads = [threading.Thread(target=appender, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get_info("/hot").total_records == 100

    def test_rename_vs_read_atomicity(self, store):
        """Readers see either the old path or the new one — never a torn
        state where the data is in neither."""
        with store.create_writer("/ping", BlockInfo(0)) as w:
            w.write(IntWritable(1), Text("payload"))
        stop = threading.Event()
        anomalies = []

        def flipper():
            current, other = "/ping", "/pong"
            for _ in range(200):
                store.rename(current, other)
                current, other = other, current
            stop.set()

        def reader():
            while not stop.is_set():
                spots = [store.exists("/ping"), store.exists("/pong")]
                if not any(spots):
                    # A second probe to filter the benign between-ops window:
                    # existence must be restored immediately.
                    if not (store.exists("/ping") or store.exists("/pong")):
                        anomalies.append(spots)

        t1 = threading.Thread(target=flipper)
        t2 = threading.Thread(target=reader)
        t1.start(); t2.start()
        t1.join(); t2.join()
        # rename holds both path locks, so the data is always reachable.
        assert not anomalies


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "rename", "read"]),
            st.sampled_from(["/k/a", "/k/b", "/k/c", "/k/d"]),
            st.sampled_from(["/k/a", "/k/b", "/k/e", "/k/f"]),
            st.integers(0, 3),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_store_matches_dict_model(ops):
    """Sequential op streams agree with a plain dict model."""
    store = KeyValueStore([Place(i) for i in range(4)])
    model = {}
    for op, p1, p2, place in ops:
        if op == "put":
            store.delete(p1)
            with store.create_writer(p1, BlockInfo(place)) as w:
                w.write(IntWritable(place), Text(p1))
            model[p1] = [(IntWritable(place), Text(p1))]
        elif op == "delete":
            assert store.delete(p1) == (p1 in model)
            model.pop(p1, None)
        elif op == "rename":
            if p1 == p2:
                continue
            if p1 in model and p2 not in model:
                store.rename(p1, p2)
                model[p2] = model.pop(p1)
            else:
                with pytest.raises((PathMissingError, PathExistsError)):
                    store.rename(p1, p2)
        elif op == "read":
            if p1 in model:
                assert store.create_reader(p1).read_all() == model[p1]
            else:
                assert store.get_info(p1) is None
    for path, pairs in model.items():
        assert store.create_reader(path).read_all() == pairs
