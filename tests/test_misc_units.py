"""Unit-level gaps: sort/grep apps, store internals, runtime odds and ends."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.writables import IntWritable, LongWritable, Text
from repro.apps.grep import grep_count_job, grep_sort_job
from repro.apps.sortapp import (
    DescendingComparator,
    is_sorted,
    read_globally_sorted,
    sample_and_build_job,
)
from repro.kvstore import BlockInfo, KeyValueStore
from repro.x10.places import Place

from conftest import make_hadoop, make_m3r


class TestSortApp:
    def test_descending_comparator(self):
        cmp = DescendingComparator()
        assert cmp.compare(IntWritable(1), IntWritable(2)) > 0
        assert cmp.compare(IntWritable(2), IntWritable(1)) < 0
        assert cmp.compare(IntWritable(3), IntWritable(3)) == 0

    def test_is_sorted(self):
        ok = [(IntWritable(1), None), (IntWritable(2), None), (IntWritable(2), None)]
        bad = [(IntWritable(3), None), (IntWritable(1), None)]
        assert is_sorted(ok)
        assert not is_sorted(bad)
        assert is_sorted([])

    def test_sample_and_build_shrinks_reducers_on_duplicates(self):
        engine = make_m3r()
        pairs = [(IntWritable(5), Text("x"))] * 20  # all keys identical
        engine.filesystem.write_pairs("/in/part-00000", pairs)
        conf = sample_and_build_job(engine.filesystem, "/in", "/out", 4)
        # one distinct key -> at most one cut survives deduplication
        assert conf.get_num_reduce_tasks() <= 2
        assert engine.run_job(conf).succeeded
        assert len(read_globally_sorted(engine.filesystem, "/out")) == 20

    def test_descending_not_implemented(self):
        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000",
                                      [(IntWritable(1), Text("a"))])
        with pytest.raises(NotImplementedError):
            sample_and_build_job(engine.filesystem, "/in", "/out", 2,
                                 descending=True)


class TestGrepApp:
    def test_count_job_with_capture_group(self):
        engine = make_m3r()
        engine.filesystem.write_text(
            "/in.txt", "error: disk full\nok\nerror: net down\nerror: disk full\n"
        )
        conf = grep_count_job("/in.txt", "/counts", r"error: (\w+)", group=1)
        assert engine.run_job(conf).succeeded
        counts = {
            str(k): v.get() for k, v in engine.filesystem.read_kv_pairs("/counts")
        }
        assert counts == {"disk": 2, "net": 1}

    def test_sort_job_orders_descending(self):
        engine = make_m3r()
        engine.filesystem.write_pairs(
            "/counts/part-00000",
            [(Text("rare"), LongWritable(1)), (Text("hot"), LongWritable(9)),
             (Text("mid"), LongWritable(4))],
        )
        assert engine.run_job(grep_sort_job("/counts", "/ranked")).succeeded
        ranked = [
            (k.get(), str(v))
            for k, v in engine.filesystem.read_kv_pairs("/ranked")
        ]
        assert ranked == [(9, "hot"), (4, "mid"), (1, "rare")]

    def test_no_matches_yields_empty(self):
        engine = make_hadoop()
        engine.filesystem.write_text("/in.txt", "nothing here\n")
        conf = grep_count_job("/in.txt", "/counts", r"zzz+")
        assert engine.run_job(conf).succeeded
        assert engine.filesystem.read_kv_pairs("/counts") == []


class TestKvStoreExtras:
    def test_reader_iterates_lazily(self):
        store = KeyValueStore([Place(0)])
        with store.create_writer("/f", BlockInfo(0)) as writer:
            writer.write_pairs([(IntWritable(i), Text("v")) for i in range(5)])
        reader = store.create_reader("/f")
        assert len(list(iter(reader))) == 5

    def test_list_paths_prefix_semantics(self):
        store = KeyValueStore([Place(0), Place(1)])
        for path in ("/a/x", "/a/y", "/ab/z"):
            with store.create_writer(path, BlockInfo(0)) as writer:
                writer.write(IntWritable(1), Text("v"))
        under_a = store.list_paths("/a")
        assert "/a/x" in under_a and "/a/y" in under_a
        assert "/ab/z" not in under_a  # '/ab' is not under '/a'

    def test_get_info_on_directory(self):
        store = KeyValueStore([Place(0)])
        store.mkdirs("/dir")
        info = store.get_info("/dir")
        assert info.is_dir and info.total_records == 0 and info.total_bytes == 0

    def test_block_info_equality(self):
        assert BlockInfo(1, "t") == BlockInfo(1, "t")
        assert BlockInfo(1, "t") != BlockInfo(2, "t")
        assert BlockInfo(1, "a") != BlockInfo(1, "b")


class TestRuntimeFactories:
    def test_factory_defaults(self):
        from repro import hadoop_engine, m3r_engine

        hadoop = hadoop_engine(num_nodes=3)
        assert hadoop.cluster.num_nodes == 3
        m3r = m3r_engine(num_places=5)
        assert m3r.num_places == 5
        m3r.shutdown()

    def test_factories_share_supplied_filesystem(self):
        from repro import hadoop_engine, m3r_engine
        from repro.fs import SimulatedHDFS
        from repro.sim import Cluster

        fs = SimulatedHDFS(Cluster(2))
        hadoop = hadoop_engine(filesystem=fs)
        m3r = m3r_engine(filesystem=fs)
        assert hadoop.filesystem is fs
        assert m3r.raw_filesystem is fs
        assert hadoop.cluster is fs.cluster
        m3r.shutdown()

    def test_package_names_not_shadowed(self):
        """Regression: importing the engine subpackages must not clobber the
        factory functions on the top-level package."""
        import importlib

        import repro
        import repro.hadoop_engine.engine  # noqa: F401

        importlib.reload(repro)
        from repro import hadoop_engine

        assert callable(hadoop_engine)
