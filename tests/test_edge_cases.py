"""Edge cases across layers: empty data, degenerate shapes, boundary sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.conf import JobConf
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.mapred import IdentityMapper, IdentityReducer, Mapper
from repro.api.writables import IntWritable, Text
from repro.apps.microbenchmark import generate_input, microbenchmark_job
from repro.apps.wordcount import wordcount_job
from repro.mrlib import MatrixContext
from repro.pig import PigRunner
from repro.sysml import run_script
from repro.sysml.matrix import read_matrix_as_dense, write_dense_matrix

from conftest import make_hadoop, make_m3r


def identity_conf(src, dst, reducers=2):
    conf = JobConf()
    conf.set_input_paths(src)
    conf.set_input_format(SequenceFileInputFormat)
    conf.set_mapper_class(IdentityMapper)
    conf.set_reducer_class(IdentityReducer)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_output_path(dst)
    conf.set_num_reduce_tasks(reducers)
    return conf


class TestEmptyInputs:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_empty_pair_file(self, factory):
        engine = factory()
        engine.filesystem.write_pairs("/in/part-00000", [])
        result = engine.run_job(identity_conf("/in", "/out"))
        assert result.succeeded, result.error
        assert engine.filesystem.read_kv_pairs("/out") == []

    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_empty_text_wordcount(self, factory):
        engine = factory()
        engine.filesystem.write_text("/in.txt", "")
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert result.succeeded, result.error
        assert engine.filesystem.read_kv_pairs("/out") == []

    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_mapper_dropping_everything(self, factory):
        class DropAll(Mapper):
            def map(self, key, value, output, reporter):
                pass

        engine = factory()
        engine.filesystem.write_pairs(
            "/in/part-00000", [(IntWritable(i), Text("x")) for i in range(5)]
        )
        conf = identity_conf("/in", "/out")
        conf.set_mapper_class(DropAll)
        result = engine.run_job(conf)
        assert result.succeeded
        assert engine.filesystem.read_kv_pairs("/out") == []


class TestDegenerateShapes:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_single_node_cluster(self, factory):
        engine = factory(num_nodes=1)
        engine.filesystem.write_text("/in.txt", "one two one\n")
        result = engine.run_job(wordcount_job("/in.txt", "/out", 1))
        assert result.succeeded
        counts = {str(k): v.get() for k, v in engine.filesystem.read_kv_pairs("/out")}
        assert counts == {"one": 2, "two": 1}

    def test_more_reducers_than_places(self):
        engine = make_m3r()  # 4 places
        generate_input(engine.filesystem, "/in", 64, 32, 16)
        result = engine.run_job(microbenchmark_job("/in", "/out", 0, 16))
        assert result.succeeded
        assert len(engine.filesystem.read_kv_pairs("/out")) == 64

    def test_single_reducer(self):
        engine = make_m3r()
        generate_input(engine.filesystem, "/in", 32, 32, 1)
        result = engine.run_job(microbenchmark_job("/in", "/out", 50, 1))
        assert result.succeeded
        # With one partition everything is "local" to place 0.
        assert result.metrics.get("shuffle_remote_records") == 0

    def test_one_by_one_matrix(self):
        ctx = MatrixContext(make_m3r(), block_size=1, num_partitions=2)
        A = ctx.from_numpy("/m/a", np.array([[3.0]]))
        assert (A @ A).to_numpy()[0, 0] == 9.0
        assert A.sum() == 3.0

    def test_block_size_larger_than_matrix(self):
        ctx = MatrixContext(make_m3r(), block_size=100, num_partitions=2)
        a = np.arange(6.0).reshape(2, 3)
        A = ctx.from_numpy("/m/a", a)
        assert A.row_blocks == 1 and A.col_blocks == 1
        assert np.allclose(A.T.to_numpy(), a.T)

    def test_sysml_single_block(self):
        engine = make_m3r()
        handle = write_dense_matrix(engine.filesystem, "/a", np.eye(3), 10, 2)
        env, _ = run_script("B = A %*% A\ns = sum(B)", engine,
                            inputs={"A": handle}, block_size=10, num_reducers=2)
        assert env["s"] == 3.0
        assert np.allclose(read_matrix_as_dense(engine.filesystem, env["B"]),
                           np.eye(3))


class TestPigEdgeCases:
    def run(self, script, data, factory=make_m3r):
        engine = factory()
        engine.filesystem.write_text("/d.txt", data)
        runner = PigRunner(engine, num_reducers=2)
        runner.run(script)
        return runner

    def test_filter_drops_all_rows(self):
        runner = self.run(
            "x = LOAD '/d.txt' AS (k, v); f = FILTER x BY v > 100;"
            " STORE f INTO '/out';",
            "a\t1\nb\t2\n",
        )
        assert runner.read_output("/out") == []

    def test_group_empty_relation(self):
        runner = self.run(
            "x = LOAD '/d.txt' AS (k, v); f = FILTER x BY v > 100;"
            " g = GROUP f BY k;"
            " s = FOREACH g GENERATE group, COUNT(f);"
            " STORE s INTO '/out';",
            "a\t1\n",
        )
        assert runner.read_output("/out") == []

    def test_limit_larger_than_data(self):
        runner = self.run(
            "x = LOAD '/d.txt' AS (k); t = LIMIT x 50; STORE t INTO '/out';",
            "a\nb\n",
        )
        assert sorted(runner.read_output("/out")) == ["a", "b"]

    def test_order_single_row(self):
        runner = self.run(
            "x = LOAD '/d.txt' AS (k, v); o = ORDER x BY v DESC;"
            " STORE o INTO '/out';",
            "solo\t9\n",
        )
        assert runner.read_output("/out") == ["solo\t9"]

    def test_join_with_no_matches(self):
        engine = make_m3r()
        engine.filesystem.write_text("/l.txt", "1\ta\n")
        engine.filesystem.write_text("/r.txt", "2\tb\n")
        runner = PigRunner(engine, num_reducers=2)
        runner.run("l = LOAD '/l.txt' AS (k, v); r = LOAD '/r.txt' AS (k2, w);"
                   " j = JOIN l BY k, r BY k2; STORE j INTO '/out';")
        assert runner.read_output("/out") == []

    def test_rows_with_missing_fields_padded(self):
        runner = self.run(
            "x = LOAD '/d.txt' AS (a, b, c); p = FOREACH x GENERATE c, a;"
            " STORE p INTO '/out';",
            "1\t2\n",  # only two of three fields present
        )
        assert runner.read_output("/out") == ["\t1"]


class TestSysmlEdgeCases:
    def test_empty_for_loop(self):
        engine = make_m3r()
        env, _ = run_script("x = 5\nfor (i in 2:1) { x = 99 }", engine,
                            num_reducers=2)
        assert env["x"] == 5.0  # R's 2:1 would iterate; ours treats as empty

    def test_deeply_nested_expression(self):
        engine = make_m3r()
        env, _ = run_script("x = ((((1 + 2) * 3) - 4) / 5) ^ 2", engine,
                            num_reducers=2)
        assert env["x"] == 1.0

    def test_matrix_sparsity_zero(self):
        """An all-zero sparse matrix flows through the whole pipeline."""
        engine = make_m3r()
        from repro.sysml.matrix import generate_matrix

        handle = generate_matrix(engine.filesystem, "/z", 40, 40, 20,
                                 sparsity=0.0, seed=1, num_partitions=2)
        env, _ = run_script("s = sum(Z)", engine, inputs={"Z": handle},
                            block_size=20, num_reducers=2)
        assert env["s"] == 0.0


class TestUnicodeAndSpecialContent:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_unicode_words(self, factory):
        engine = factory()
        engine.filesystem.write_text("/in.txt", "héllo wörld héllo 日本\n")
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert result.succeeded
        counts = {str(k): v.get() for k, v in engine.filesystem.read_kv_pairs("/out")}
        assert counts == {"héllo": 2, "wörld": 1, "日本": 1}

    def test_keys_with_tabs_and_newlines_in_values(self):
        engine = make_m3r()
        weird = [(IntWritable(0), Text("tab\there")), (IntWritable(1), Text("nl"))]
        engine.filesystem.write_pairs("/in/part-00000", weird)
        result = engine.run_job(identity_conf("/in", "/out"))
        assert result.succeeded
        values = sorted(str(v) for _, v in engine.filesystem.read_kv_pairs("/out"))
        assert values == ["nl", "tab\there"]
