"""The baseline Hadoop engine: scheduling, costs, counters, resilience."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.counters import JobCounter, TaskCounter
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.job import JobSequence
from repro.api.mapred import IdentityMapper, IdentityReducer
from repro.api.writables import IntWritable, Text
from repro.apps.wordcount import SumReducer, WordCountMapperImmutable, generate_text, wordcount_job
from repro.hadoop_engine.scheduler import SlotLanes, place_map_tasks, reduce_node_for
from repro.api.splits import FileSplit
from repro.sim import Cluster

from conftest import make_hadoop


class TestScheduler:
    def test_slot_lanes_pack_greedily(self):
        lanes = SlotLanes(num_nodes=1, slots=2)
        for duration in (4.0, 3.0, 2.0, 1.0):
            lanes.add_task(0, duration)
        assert lanes.makespan() == 5.0  # (4+1) vs (3+2)
        assert lanes.total_work() == 10.0

    def test_slot_lanes_validation(self):
        with pytest.raises(ValueError):
            SlotLanes(0, 1)
        lanes = SlotLanes(1, 1)
        with pytest.raises(ValueError):
            lanes.add_task(0, -1)

    def test_map_placement_prefers_local(self):
        cluster = Cluster(4)
        splits = [FileSplit(f"/f{i}", 0, 100, hosts=[f"node{i:02d}"]) for i in range(4)]
        placements, data_local = place_map_tasks(splits, cluster)
        assert placements == [0, 1, 2, 3]
        assert data_local == 4

    def test_map_placement_balances_overload(self):
        cluster = Cluster(4)
        # Ten splits all claiming node00: most must spill elsewhere.
        splits = [FileSplit(f"/f{i}", 0, 100, hosts=["node00"]) for i in range(10)]
        placements, data_local = place_map_tasks(splits, cluster)
        assert len(set(placements)) > 1
        assert data_local < 10

    def test_reduce_placement_varies_across_jobs(self):
        """No partition stability: a partition moves between jobs."""
        nodes = {reduce_node_for(f"job_{i}", 3, 8) for i in range(30)}
        assert len(nodes) > 1

    def test_reduce_placement_deterministic_within_job(self):
        assert reduce_node_for("salt", 2, 8) == reduce_node_for("salt", 2, 8)


class TestJobExecution:
    def test_wordcount_output_and_counters(self, hadoop4):
        text = generate_text(200)
        hadoop4.filesystem.write_text("/in.txt", text)
        result = hadoop4.run_job(wordcount_job("/in.txt", "/out", 4))
        assert result.succeeded
        counts = {
            str(k): v.get() for k, v in hadoop4.filesystem.read_kv_pairs("/out")
        }
        from collections import Counter

        assert counts == dict(Counter(text.split()))
        counters = result.counters
        assert counters.value(TaskCounter.MAP_INPUT_RECORDS) == 200
        assert counters.value(TaskCounter.MAP_OUTPUT_RECORDS) == len(text.split())
        assert counters.value(JobCounter.TOTAL_LAUNCHED_REDUCES) == 4
        assert counters.value(TaskCounter.REDUCE_OUTPUT_RECORDS) == len(counts)
        # combiner ran and compressed the shuffle
        assert counters.value(TaskCounter.COMBINE_INPUT_RECORDS) > counters.value(
            TaskCounter.COMBINE_OUTPUT_RECORDS
        )

    def test_small_job_pays_startup(self, hadoop4):
        hadoop4.filesystem.write_text("/in.txt", "tiny\n")
        result = hadoop4.run_job(wordcount_job("/in.txt", "/out", 2))
        # Submission + cleanup alone are 8 simulated seconds.
        assert result.simulated_seconds > 8.0
        assert result.metrics.time.get("jvm_startup") > 0
        assert result.metrics.time.get("scheduling") > 0

    def test_sequence_pays_io_every_job(self, hadoop4):
        """No cross-job cache: both jobs read from the filesystem."""
        pairs = [(IntWritable(i), Text("v" * 50)) for i in range(100)]
        hadoop4.filesystem.write_pairs("/in/part-00000", pairs)

        def identity_job(src, dst):
            conf = JobConf()
            conf.set_job_name("identity")
            conf.set_input_paths(src)
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(IdentityMapper)
            conf.set_reducer_class(IdentityReducer)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path(dst)
            conf.set_num_reduce_tasks(2)
            return conf

        results = hadoop4.run_sequence(
            JobSequence([identity_job("/in", "/mid"), identity_job("/mid", "/fin")])
        )
        assert all(r.succeeded for r in results)
        assert results[1].metrics.time.get("disk_read") > 0
        assert results[1].metrics.time.get("deserialize") > 0
        assert len(hadoop4.filesystem.read_kv_pairs("/fin")) == 100

    def test_map_only_job(self, hadoop4):
        pairs = [(IntWritable(i), Text(str(i))) for i in range(10)]
        hadoop4.filesystem.write_pairs("/in/part-00000", pairs)
        conf = JobConf()
        conf.set_job_name("maponly")
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(IdentityMapper)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(0)
        result = hadoop4.run_job(conf)
        assert result.succeeded
        assert sorted(k.get() for k, _ in hadoop4.filesystem.read_kv_pairs("/out")) == list(range(10))
        assert result.counters.value(JobCounter.TOTAL_LAUNCHED_REDUCES) == 0

    def test_user_code_failure_reported_not_raised(self, hadoop4):
        class Exploding(IdentityMapper):
            def map(self, key, value, output, reporter):
                raise RuntimeError("user bug")

        hadoop4.filesystem.write_pairs("/in/part-00000", [(IntWritable(1), Text("x"))])
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(Exploding)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        result = hadoop4.run_job(conf)
        assert not result.succeeded
        assert "user bug" in result.error

    def test_output_exists_fails_job(self, hadoop4):
        hadoop4.filesystem.mkdirs("/out")
        hadoop4.filesystem.write_text("/in.txt", "x\n")
        result = hadoop4.run_job(wordcount_job("/in.txt", "/out", 1))
        assert not result.succeeded
        assert "exists" in result.error

    def test_deterministic_simulated_time(self):
        times = []
        for _ in range(2):
            engine = make_hadoop()
            engine.filesystem.write_text("/in.txt", generate_text(100))
            times.append(
                engine.run_job(wordcount_job("/in.txt", "/out", 4)).simulated_seconds
            )
        assert times[0] == times[1]


class TestResilience:
    def test_survives_node_failure(self, hadoop4):
        hadoop4.filesystem.write_text("/in.txt", generate_text(100))
        # Enough reducers that some certainly land on the failing node.
        healthy = hadoop4.run_job(wordcount_job("/in.txt", "/out1", 16))
        hadoop4.fail_nodes.add(2)
        degraded = hadoop4.run_job(wordcount_job("/in.txt", "/out2", 16))
        assert degraded.succeeded
        assert (
            dict(hadoop4.filesystem.read_kv_pairs("/out1"))
            == dict(hadoop4.filesystem.read_kv_pairs("/out2"))
        )
        # Failover costs time: dead-tasktracker detection before the re-run.
        assert degraded.metrics.get("reduce_task_failovers") > 0
        assert degraded.simulated_seconds > healthy.simulated_seconds

    def test_all_nodes_dead_is_fatal(self, hadoop4):
        hadoop4.filesystem.write_text("/in.txt", "x\n")
        hadoop4.fail_nodes.update(range(4))
        result = hadoop4.run_job(wordcount_job("/in.txt", "/out", 2))
        assert not result.succeeded
