"""Tests for the runtime sanitizers (repro.analysis.sanitizers).

Covers the three satellite guarantees:

* a deliberately-mutating ``ImmutableOutput`` mapper is caught, and the
  failure carries BOTH stack traces (allocation/registration + mutation);
* a two-lock inversion against ``kvstore`` trips the lock-order sanitizer
  before it can deadlock;
* the sanitizers observe but never perturb — a job runs byte-identically
  with both sanitizers on and off.
"""

from __future__ import annotations

import threading

import pytest
from conftest import make_m3r

from repro.analysis.sanitizers import (
    LOCK_ORDER_SANITIZER,
    MUTATION_SANITIZER,
    ImmutableViolation,
    LockOrderViolation,
    LockOrderSanitizer,
    MutationSanitizer,
    sanitizer_overrides,
)
from repro.api.conf import SANITIZE_LOCK_ORDER_KEY, SANITIZE_MUTATION_KEY
from repro.api.extensions import ImmutableOutput
from repro.api.mapred import Mapper, OutputCollector, Reducer, Reporter
from repro.api.writables import IntWritable, Text
from repro.apps.wordcount import generate_text, wordcount_job
from repro.kvstore.locks import LockTable


@pytest.fixture(autouse=True)
def clean_sanitizer_state():
    """Each test starts and ends with empty sanitizer tables (the global
    enabled flags are left alone so the sanitizer-on CI row still covers
    the whole file)."""
    MUTATION_SANITIZER.reset()
    LOCK_ORDER_SANITIZER.reset()
    yield
    MUTATION_SANITIZER.reset()
    LOCK_ORDER_SANITIZER.reset()


# --------------------------------------------------------------------- #
# MutationSanitizer unit behaviour
# --------------------------------------------------------------------- #


class TestMutationSanitizer:
    def test_detects_mutation_with_both_stacks(self):
        sanitizer = MutationSanitizer(enabled=True)
        payload = [1, 2, 3]
        sanitizer.observe(payload, site="first-sight")
        payload.append(4)
        with pytest.raises(ImmutableViolation) as excinfo:
            sanitizer.observe(payload, site="second-sight")
        message = str(excinfo.value)
        assert "registered at first-sight" in message
        assert "mutation detected at second-sight" in message

    def test_unchanged_object_verifies_quietly(self):
        sanitizer = MutationSanitizer(enabled=True)
        payload = {"a": 1}
        sanitizer.observe(payload, site="s1")
        sanitizer.observe(payload, site="s2")
        assert sanitizer.violations == 0
        assert sanitizer.verified == 1

    def test_disabled_is_a_noop(self):
        sanitizer = MutationSanitizer(enabled=False)
        payload = [1]
        sanitizer.observe(payload, site="s")
        payload.append(2)
        sanitizer.observe(payload, site="s")
        assert len(sanitizer) == 0

    def test_unpicklable_objects_are_skipped(self):
        sanitizer = MutationSanitizer(enabled=True)
        gen = (x for x in range(3))
        sanitizer.observe(gen, site="s")
        assert len(sanitizer) == 0

    def test_forget_drops_tracking(self):
        sanitizer = MutationSanitizer(enabled=True)
        payload = [1]
        sanitizer.observe(payload, site="s")
        sanitizer.forget(payload)
        payload.append(2)
        sanitizer.observe(payload, site="s")  # re-registers, no violation
        assert sanitizer.violations == 0

    def test_table_is_capped(self):
        sanitizer = MutationSanitizer(enabled=True, max_entries=4)
        keepalive = [[i] for i in range(10)]
        for item in keepalive:
            sanitizer.observe(item, site="s")
        assert len(sanitizer) == 4


# --------------------------------------------------------------------- #
# LockOrderSanitizer + kvstore wiring
# --------------------------------------------------------------------- #


class TestLockOrderSanitizer:
    def test_two_lock_inversion_trips(self):
        table = LockTable()
        with sanitizer_overrides(lock_order=True):
            table.acquire("/data/a")
            table.acquire("/data/b")  # establishes /data/a -> /data/b
            table.release("/data/b")
            table.release("/data/a")

            table.acquire("/data/b")
            with pytest.raises(LockOrderViolation) as excinfo:
                table.acquire("/data/a")  # would close the cycle
            table.release("/data/b")
        message = str(excinfo.value)
        assert "established order first witnessed at" in message
        assert "inverted acquisition at" in message
        assert LOCK_ORDER_SANITIZER.violations == 1

    def test_consistent_order_never_trips(self):
        table = LockTable()
        with sanitizer_overrides(lock_order=True):
            for _ in range(3):
                table.acquire("/a")
                table.acquire("/b")
                table.acquire("/c")
                for path in ("/c", "/b", "/a"):
                    table.release(path)
        assert LOCK_ORDER_SANITIZER.violations == 0

    def test_acquire_all_lca_ordering_is_clean(self):
        table = LockTable()
        with sanitizer_overrides(lock_order=True):
            with table.acquire_all(["/dir/x", "/dir/y"]):
                pass
            with table.acquire_all(["/dir/y", "/dir/x", "/dir"]):
                pass
        assert LOCK_ORDER_SANITIZER.violations == 0
        assert table.live_entries() == 0

    def test_inversion_across_threads(self):
        sanitizer = LockOrderSanitizer(enabled=True)
        sanitizer.before_acquire("/a")
        sanitizer.after_acquire("/a")
        sanitizer.before_acquire("/b")
        sanitizer.after_acquire("/b")
        sanitizer.on_release("/b")
        sanitizer.on_release("/a")

        failure = []

        def inverted():
            sanitizer.before_acquire("/b")
            sanitizer.after_acquire("/b")
            try:
                sanitizer.before_acquire("/a")
            except LockOrderViolation as exc:
                failure.append(exc)

        thread = threading.Thread(target=inverted)
        thread.start()
        thread.join()
        assert len(failure) == 1

    def test_disabled_records_nothing(self):
        table = LockTable()
        table.acquire("/a")
        table.acquire("/b")
        table.release("/b")
        table.release("/a")
        if not LOCK_ORDER_SANITIZER.enabled:
            assert LOCK_ORDER_SANITIZER.edge_count() == 0


# --------------------------------------------------------------------- #
# end-to-end: a mutating ImmutableOutput mapper is caught
# --------------------------------------------------------------------- #


class LyingImmutableMapper(Mapper, ImmutableOutput):
    """Claims ImmutableOutput but mutates a value it already collected —
    exactly the aliasing corruption paper Section 4.1 warns about."""

    def __init__(self) -> None:
        self.one = IntWritable(1)
        self.token = Text("seed")

    def map(self, key, value, output: OutputCollector, reporter: Reporter):
        output.collect(self.token, self.one)  # aliased + fingerprinted
        self.token.set(self.token.to_string() + "!")  # mutation!
        output.collect(self.token, self.one)  # caught here


class CountReducer(Reducer, ImmutableOutput):
    def reduce(self, key, values, output: OutputCollector, reporter: Reporter):
        output.collect(key, IntWritable(sum(v.get() for v in values)))


def _mutating_job():
    conf = wordcount_job(
        "/in.txt", "/out", num_reducers=2, immutable=True, use_combiner=False
    )
    conf.set_mapper_class(LyingImmutableMapper)
    conf.set_reducer_class(CountReducer)
    conf.set_boolean(SANITIZE_MUTATION_KEY, True)
    return conf


class TestMutationEndToEnd:
    def test_mutating_immutable_mapper_is_caught_with_both_stacks(self):
        engine = make_m3r()
        engine.filesystem.write_text("/in.txt", "alpha beta\n")
        result = engine.run_job(_mutating_job())
        assert not result.succeeded
        assert "ImmutableViolation" in result.error
        # Both stacks ride inside the violation message.
        assert "registered at" in result.error
        assert "mutation detected at" in result.error
        engine.shutdown()

    def test_same_job_passes_with_sanitizer_off(self):
        engine = make_m3r()
        engine.filesystem.write_text("/in.txt", "alpha beta\n")
        conf = _mutating_job()
        conf.set_boolean(SANITIZE_MUTATION_KEY, False)
        result = engine.run_job(conf)
        # Without the sanitizer the lie goes unnoticed (which is the point
        # of having the sanitizer).
        assert result.succeeded
        engine.shutdown()

    def test_honest_immutable_job_passes_with_sanitizer_on(self):
        engine = make_m3r()
        engine.filesystem.write_text("/in.txt", generate_text(50))
        conf = wordcount_job("/in.txt", "/out", num_reducers=4)
        conf.set_boolean(SANITIZE_MUTATION_KEY, True)
        conf.set_boolean(SANITIZE_LOCK_ORDER_KEY, True)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        engine.shutdown()


# --------------------------------------------------------------------- #
# sanitizers observe, never perturb
# --------------------------------------------------------------------- #


def _run_wordcount(sanitize: bool):
    engine = make_m3r()
    engine.filesystem.write_text("/in.txt", generate_text(120))
    conf = wordcount_job("/in.txt", "/out", num_reducers=4)
    conf.set_boolean(SANITIZE_MUTATION_KEY, sanitize)
    conf.set_boolean(SANITIZE_LOCK_ORDER_KEY, sanitize)
    result = engine.run_job(conf)
    assert result.succeeded, result.error
    output = {
        k.to_string(): v.get()
        for k, v in engine.filesystem.read_kv_pairs("/out")
    }
    counters = result.counters.as_dict()
    engine.shutdown()
    return result.simulated_seconds, output, counters


class TestObserveNeverPerturb:
    def test_outputs_and_accounting_identical_on_off(self):
        seconds_off, output_off, counters_off = _run_wordcount(False)
        seconds_on, output_on, counters_on = _run_wordcount(True)
        assert output_on == output_off
        assert seconds_on == seconds_off
        assert counters_on == counters_off

    def test_overrides_restore_previous_state(self):
        before = (MUTATION_SANITIZER.enabled, LOCK_ORDER_SANITIZER.enabled)
        with sanitizer_overrides(mutation=True, lock_order=True):
            assert MUTATION_SANITIZER.enabled
            assert LOCK_ORDER_SANITIZER.enabled
        assert (
            MUTATION_SANITIZER.enabled,
            LOCK_ORDER_SANITIZER.enabled,
        ) == before


# --------------------------------------------------------------------- #
# serializer fallback satellite
# --------------------------------------------------------------------- #


class TestSerializerFallbacks:
    def test_normal_job_reports_zero_fallbacks(self):
        engine = make_m3r()
        engine.filesystem.write_text("/in.txt", generate_text(30))
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert result.succeeded
        assert result.metrics.get("serializer_fallbacks") == 0
        engine.shutdown()

    def test_unpicklable_object_records_fallback(self):
        from repro.x10.serializer import FALLBACK_TALLY, estimate_size

        class NoDict:
            __slots__ = ()

            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        before = FALLBACK_TALLY.snapshot()
        size = estimate_size(NoDict())
        assert size > 0
        assert FALLBACK_TALLY.snapshot() == before + 1
