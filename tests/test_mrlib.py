"""The hand-optimized matrix library (paper Section 7 future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.mrlib import DistributedMatrix, MatrixContext

from conftest import make_hadoop, make_m3r


@pytest.fixture
def ctx():
    return MatrixContext(make_m3r(), block_size=4, num_partitions=4)


RNG = np.random.default_rng(77)
A_DATA = RNG.standard_normal((12, 9))
B_DATA = RNG.standard_normal((9, 7))
X_DATA = RNG.standard_normal((9, 1))


class TestRoundtrip:
    def test_from_to_numpy(self, ctx):
        handle = ctx.from_numpy("/m/a", A_DATA)
        assert handle.shape == (12, 9)
        assert np.allclose(handle.to_numpy(), A_DATA)

    def test_from_scipy_sparse(self, ctx):
        matrix = sparse.random(20, 15, density=0.2, random_state=3, format="csc")
        handle = ctx.from_scipy("/m/s", matrix)
        assert np.allclose(handle.to_numpy(), matrix.toarray())

    def test_blocking_arithmetic(self, ctx):
        handle = ctx.from_numpy("/m/a", A_DATA)
        assert handle.row_blocks == 3
        assert handle.col_blocks == 3

    def test_data_partitioned_by_row_chunk(self, ctx):
        ctx.from_numpy("/m/a", A_DATA)
        fs = ctx.engine.filesystem
        parts = [s.path for s in fs.list_files_recursive("/m/a")]
        assert len(parts) == 4
        # row-chunk layout: part p holds only keys of its chunk
        for p, path in enumerate(sorted(parts)):
            for key, _ in fs.read_pairs(path):
                assert key.row * 4 // 3 == p


class TestOperators:
    def test_matvec_broadcast_form(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        x = ctx.from_numpy("/m/x", X_DATA)
        y = A @ x
        assert np.allclose(y.to_numpy(), A_DATA @ X_DATA, atol=1e-9)
        assert y.shape == (12, 1)

    def test_matmul_cross_form(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        B = ctx.from_numpy("/m/b", B_DATA)
        C = A @ B
        assert np.allclose(C.to_numpy(), A_DATA @ B_DATA, atol=1e-9)

    def test_matmul_dim_mismatch(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        with pytest.raises(ValueError):
            A @ A

    def test_elementwise_operators(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        assert np.allclose((A + A).to_numpy(), 2 * A_DATA)
        assert np.allclose((A - A).to_numpy(), np.zeros_like(A_DATA))
        assert np.allclose((A * A).to_numpy(), A_DATA * A_DATA)
        assert np.allclose((2.5 * A).to_numpy(), 2.5 * A_DATA)
        assert np.allclose((-A).to_numpy(), -A_DATA)

    def test_elementwise_shape_mismatch(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        B = ctx.from_numpy("/m/b", B_DATA)
        with pytest.raises(ValueError):
            A + B

    def test_transpose(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        assert np.allclose(A.T.to_numpy(), A_DATA.T)
        assert A.T.shape == (9, 12)

    def test_reductions(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        assert A.sum() == pytest.approx(A_DATA.sum())
        assert A.norm() == pytest.approx(np.linalg.norm(A_DATA))
        assert np.allclose(A.row_sums().to_numpy().ravel(), A_DATA.sum(axis=1))

    def test_power(self, ctx):
        A = ctx.from_numpy("/m/a", np.abs(A_DATA))
        squared = ctx.power(A, 2.0)
        assert np.allclose(squared.to_numpy(), np.abs(A_DATA) ** 2)

    def test_expression_pipeline(self, ctx):
        """A realistic composite: one CG-style step."""
        A = ctx.from_numpy("/m/a", A_DATA)
        x = ctx.from_numpy("/m/x", X_DATA)
        q = A.T @ (A @ x)
        expected = A_DATA.T @ (A_DATA @ X_DATA)
        assert np.allclose(q.to_numpy(), expected, atol=1e-9)


class TestOptimizations:
    def test_no_cloning_anywhere(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        x = ctx.from_numpy("/m/x", X_DATA)
        _ = A @ x
        assert all(r.metrics.get("cloned_records") == 0 for r in ctx.results)

    def test_intermediates_stay_in_memory_on_m3r(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        y = A @ ctx.from_numpy("/m/x", X_DATA)
        assert not ctx.engine.raw_filesystem.exists(y.path)
        assert ctx.engine.filesystem.exists(y.path)

    def test_persist_flushes(self, ctx):
        A = ctx.from_numpy("/m/a", A_DATA)
        doubled = ctx.persist(2 * A, "/durable/a2")
        assert ctx.engine.raw_filesystem.exists("/durable/a2")
        assert np.allclose(doubled.to_numpy(), 2 * A_DATA)

    def test_broadcast_sum_job_shuffles_locally(self, ctx):
        """The library exploits partition stability like the paper's matvec:
        the aggregation job of the broadcast matmul is communication-free."""
        A = ctx.from_numpy("/m/a", A_DATA)
        x = ctx.from_numpy("/m/x", X_DATA)
        _ = A @ x
        sum_result = ctx.results[-1]
        assert sum_result.metrics.get("shuffle_remote_records") == 0

    def test_dedup_counts_broadcast_savings(self):
        """With several partitions per place, the vector broadcast dedups."""
        ctx = MatrixContext(make_m3r(), block_size=2, num_partitions=8)
        a = np.ones((16, 16))
        x = np.ones((16, 1))
        A = ctx.from_numpy("/m/a", a)
        X = ctx.from_numpy("/m/x", x)
        _ = A @ X
        multiply_result = ctx.results[-2]
        assert multiply_result.metrics.get("dedup_saved_bytes") > 0


class TestEngineEquivalence:
    def test_same_results_on_both_engines(self):
        values = {}
        for factory in (make_hadoop, make_m3r):
            ctx = MatrixContext(factory(), block_size=4, num_partitions=4)
            A = ctx.from_numpy("/m/a", A_DATA)
            B = ctx.from_numpy("/m/b", B_DATA)
            values[factory.__name__] = (A @ B).to_numpy()
        assert np.allclose(values["make_hadoop"], values["make_m3r"])

    def test_m3r_faster_on_pipeline(self):
        seconds = {}
        for factory in (make_hadoop, make_m3r):
            ctx = MatrixContext(factory(), block_size=4, num_partitions=4)
            A = ctx.from_numpy("/m/a", A_DATA)
            x = ctx.from_numpy("/m/x", X_DATA)
            result = A @ x
            for _ in range(2):
                result = A @ ctx.from_numpy(f"/m/x{ctx.jobs_run}",
                                            result.to_numpy()[:9, :])
            seconds[factory.__name__] = ctx.total_seconds
        assert seconds["make_m3r"] < seconds["make_hadoop"] / 10


@given(
    st.integers(2, 8), st.integers(2, 8), st.integers(1, 6),
    st.integers(2, 4),
)
@settings(max_examples=10, deadline=None)
def test_matmul_property(m, k, n, block):
    rng = np.random.default_rng(m * 97 + k * 13 + n)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    ctx = MatrixContext(make_m3r(), block_size=block, num_partitions=2)
    A = ctx.from_numpy("/m/a", a)
    B = ctx.from_numpy("/m/b", b)
    assert np.allclose((A @ B).to_numpy(), a @ b, atol=1e-9)
