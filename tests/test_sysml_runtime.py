"""The SystemML matrix runtime and interpreter, verified against numpy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.sysml import run_script
from repro.sysml.blocks import CellMatrixBlockWritable, TaggedBlockWritable
from repro.sysml.interp import DMLRuntimeError
from repro.sysml.matrix import (
    MatrixHandle,
    generate_matrix,
    read_matrix_as_dense,
    write_dense_matrix,
)
from repro.sysml.runtime import MatrixRuntime
from repro.api.io_util import DataInputBuffer, DataOutputBuffer

from conftest import make_hadoop, make_m3r


@pytest.fixture
def rt():
    engine = make_m3r()
    return MatrixRuntime(engine, num_reducers=4)


def dense(rt, handle):
    return read_matrix_as_dense(rt.engine.filesystem, handle)


def make(rt, name, array, block=30):
    return write_dense_matrix(rt.engine.filesystem, f"/data/{name}", np.asarray(array),
                              block, num_partitions=4)


class TestBlocks:
    def test_cell_block_roundtrip(self):
        m = sparse.random(25, 35, density=0.2, random_state=1)
        block = CellMatrixBlockWritable(m)
        out = DataOutputBuffer()
        block.write(out)
        assert len(out.to_bytes()) <= block.serialized_size()
        fresh = CellMatrixBlockWritable()
        fresh.read_fields(DataInputBuffer(out.to_bytes()))
        assert fresh == block

    def test_cell_block_bulkier_than_csc(self):
        """The paper's space-inefficiency observation, structurally."""
        from repro.api.writables import MatrixBlockWritable

        m = sparse.random(100, 100, density=0.05, format="csc", random_state=2)
        assert (
            CellMatrixBlockWritable(m).serialized_size()
            > MatrixBlockWritable(m).serialized_size()
        )

    def test_tagged_block_roundtrip(self):
        m = sparse.eye(4)
        tagged = TaggedBlockWritable("B", 7, CellMatrixBlockWritable(m))
        out = DataOutputBuffer()
        tagged.write(out)
        fresh = TaggedBlockWritable()
        fresh.read_fields(DataInputBuffer(out.to_bytes()))
        assert fresh.tag == "B" and fresh.index == 7 and fresh.block == tagged.block

    def test_clone_is_deep(self):
        block = CellMatrixBlockWritable(sparse.eye(3))
        clone = block.clone()
        clone.cell_vals[0] = 9.0
        assert block.cell_vals[0] == 1.0


class TestMatrixHandle:
    def test_blocking_arithmetic(self):
        handle = MatrixHandle("/x", rows=250, cols=90, block_size=100)
        assert handle.row_blocks == 3
        assert handle.col_blocks == 1
        assert handle.block_shape(2, 0) == (50, 90)

    def test_generate_and_read_roundtrip(self):
        engine = make_m3r()
        handle = generate_matrix(engine.filesystem, "/g", 60, 40, 20,
                                 sparsity=0.3, seed=9, num_partitions=4)
        array = read_matrix_as_dense(engine.filesystem, handle)
        assert array.shape == (60, 40)
        assert np.count_nonzero(array) > 0


class TestRuntimeOps:
    def test_matmul(self, rt):
        a = np.arange(12.0).reshape(4, 3)
        b = np.arange(6.0).reshape(3, 2)
        handle = rt.matmul(make(rt, "a", a, 2), make(rt, "b", b, 2))
        assert np.allclose(dense(rt, handle), a @ b)
        assert (handle.rows, handle.cols) == (4, 2)

    def test_matmul_shape_mismatch(self, rt):
        a = make(rt, "a", np.ones((2, 3)))
        b = make(rt, "b", np.ones((2, 3)))
        with pytest.raises(ValueError):
            rt.matmul(a, b)

    def test_matmul_blocking_mismatch(self, rt):
        a = make(rt, "a", np.ones((4, 4)), block=2)
        b = make(rt, "b", np.ones((4, 4)), block=4)
        with pytest.raises(ValueError):
            rt.matmul(a, b)

    @pytest.mark.parametrize("op,fn", [
        ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
    ])
    def test_elementwise(self, rt, op, fn):
        a = np.arange(1.0, 13.0).reshape(3, 4)
        b = (np.arange(12.0).reshape(3, 4) % 3) + 1
        handle = rt.elementwise(make(rt, "a", a, 2), make(rt, "b", b, 2), op)
        assert np.allclose(dense(rt, handle), fn(a, b))

    def test_elementwise_div_zero_denominator_is_zero(self, rt):
        a = np.array([[2.0, 4.0]])
        b = np.array([[2.0, 0.0]])
        handle = rt.elementwise(make(rt, "a", a, 2), make(rt, "b", b, 2), "div")
        assert np.allclose(dense(rt, handle), [[1.0, 0.0]])

    def test_transpose(self, rt):
        a = np.arange(6.0).reshape(2, 3)
        handle = rt.transpose(make(rt, "a", a, 2))
        assert np.allclose(dense(rt, handle), a.T)
        assert (handle.rows, handle.cols) == (3, 2)

    def test_scalar_ops(self, rt):
        a = np.array([[1.0, -4.0], [9.0, 16.0]])
        h = make(rt, "a", a, 2)
        assert np.allclose(dense(rt, rt.scalar_multiply(h, 3)), 3 * a)
        assert np.allclose(dense(rt, rt.scalar_op(h, "spow", 2)), a**2)
        assert np.allclose(dense(rt, rt.scalar_op(h, "abs")), np.abs(a))
        assert np.allclose(dense(rt, rt.scalar_op(h, "sqrt")), np.sqrt(np.abs(a)))

    def test_aggregates(self, rt):
        a = np.arange(12.0).reshape(3, 4)
        h = make(rt, "a", a, 2)
        assert rt.sum(h) == pytest.approx(a.sum())
        assert np.allclose(dense(rt, rt.row_sums(h)).ravel(), a.sum(axis=1))
        assert np.allclose(dense(rt, rt.col_sums(h)).ravel(), a.sum(axis=0))

    def test_cast_as_scalar(self, rt):
        one_by_one = make(rt, "s", np.array([[42.0]]), 2)
        assert rt.cast_as_scalar(one_by_one) == 42.0
        with pytest.raises(ValueError):
            rt.cast_as_scalar(make(rt, "m", np.ones((2, 2)), 2))

    def test_write_persists(self, rt):
        h = make(rt, "a", np.eye(3), 2)
        rt.write(h, "/persisted")
        assert rt.engine.raw_filesystem.exists("/persisted")

    def test_intermediates_are_temporary(self, rt):
        h = make(rt, "a", np.eye(4), 2)
        result = rt.transpose(h)
        assert result.path.rsplit("/", 1)[-1].startswith("temp-")
        # On M3R the intermediate never reached the disk.
        assert not rt.engine.raw_filesystem.exists(result.path)

    def test_results_tracked(self, rt):
        h = make(rt, "a", np.eye(4), 2)
        rt.transpose(h)
        rt.sum(h)
        assert rt.jobs_run == 2
        assert rt.total_seconds > 0

    @given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_matmul_property(self, m, k, n):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        engine = make_m3r()
        rt = MatrixRuntime(engine, num_reducers=2)
        ha = write_dense_matrix(engine.filesystem, "/a", a, 2, 2)
        hb = write_dense_matrix(engine.filesystem, "/b", b, 2, 2)
        assert np.allclose(
            read_matrix_as_dense(engine.filesystem, rt.matmul(ha, hb)), a @ b,
            atol=1e-9,
        )


class TestInterpreter:
    def run(self, script, engine=None, **inputs):
        engine = engine if engine is not None else make_m3r()
        handles = {}
        for name, array in inputs.items():
            handles[name] = write_dense_matrix(
                engine.filesystem, f"/data/{name}", np.asarray(array), 2, 4
            )
        env, rt = run_script(script, engine, inputs=handles, block_size=2,
                             num_reducers=4)
        return env, rt, engine

    def test_scalar_arithmetic(self):
        env, _, _ = self.run("x = 2 + 3 * 4\ny = x / 2 - 1\nz = 2 ^ 3")
        assert env["x"] == 14.0
        assert env["y"] == 6.0
        assert env["z"] == 8.0

    def test_matrix_scalar_mix(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        env, _, engine = self.run("B = 2 * A + 1\nC = 10 / A", A=a)
        assert np.allclose(read_matrix_as_dense(engine.filesystem, env["B"]), 2 * a + 1)
        assert np.allclose(read_matrix_as_dense(engine.filesystem, env["C"]), 10 / a)

    def test_for_loop_accumulates(self):
        env, _, _ = self.run("total = 0\nfor (i in 1:5) { total = total + i }")
        assert env["total"] == 15.0

    def test_while_loop(self):
        env, _, _ = self.run("x = 1\nwhile (x < 100) { x = x * 2 }")
        assert env["x"] == 128.0

    def test_if_else(self):
        env, _, _ = self.run("a = 3\nif (a > 2) { b = 1 } else { b = 2 }")
        assert env["b"] == 1.0

    def test_matrix_pipeline(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        env, rt, engine = self.run(
            "B = t(A) %*% A\nn = sum(B * B)\nr = nrow(A) + ncol(A)", A=a
        )
        expected = a.T @ a
        assert np.allclose(read_matrix_as_dense(engine.filesystem, env["B"]), expected)
        assert env["n"] == pytest.approx((expected * expected).sum())
        assert env["r"] == 4.0

    def test_read_unknown_input(self):
        with pytest.raises(DMLRuntimeError):
            self.run('X = read("missing")')

    def test_undefined_variable(self):
        with pytest.raises(DMLRuntimeError):
            self.run("y = x + 1")

    def test_matmul_of_scalars_rejected(self):
        with pytest.raises(DMLRuntimeError):
            self.run("y = 1 %*% 2")

    def test_rand_generates(self):
        env, _, engine = self.run("R = rand(6, 4, 1.0, 7)\ns = sum(R * R)")
        assert env["R"].rows == 6 and env["R"].cols == 4
        assert env["s"] > 0

    def test_same_script_same_results_on_both_engines(self):
        a = np.arange(1.0, 17.0).reshape(4, 4)
        script = "B = (t(A) %*% A) * 0.5\nn = sum(B)\nwrite(B, '/out/B')"
        values = {}
        for factory in (make_hadoop, make_m3r):
            engine = factory()
            handle = write_dense_matrix(engine.filesystem, "/data/A", a, 2, 4)
            env, _ = run_script(script, engine, inputs={"A": handle},
                                block_size=2, num_reducers=4)
            values[factory.__name__] = (
                env["n"],
                read_matrix_as_dense(engine.filesystem, env["B"]),
            )
        n_hadoop, b_hadoop = values["make_hadoop"]
        n_m3r, b_m3r = values["make_m3r"]
        assert n_hadoop == pytest.approx(n_m3r)
        assert np.allclose(b_hadoop, b_m3r)

    def test_optimized_codegen_same_answers_fewer_clones(self):
        a = np.arange(1.0, 17.0).reshape(4, 4)
        outputs = {}
        clones = {}
        for optimized in (False, True):
            engine = make_m3r()
            handle = write_dense_matrix(engine.filesystem, "/data/A", a, 2, 4)
            env, rt = run_script("B = t(A) %*% A", engine, inputs={"A": handle},
                                 block_size=2, num_reducers=4,
                                 optimized=optimized)
            outputs[optimized] = read_matrix_as_dense(engine.filesystem, env["B"])
            clones[optimized] = sum(
                r.metrics.get("cloned_records") for r in rt.results
            )
        assert np.allclose(outputs[False], outputs[True])
        assert clones[True] < clones[False]
