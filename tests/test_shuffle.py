"""The shuffle subsystem: memoized measurement, sorted-run merge, skew.

Covers the three mechanisms of the parallel streaming shuffle:

* **single-pass dual measurement** — ``DedupSerializer.measure_message``
  computes wire (de-duplicated) and raw (sharing-ignored) bytes in one
  traversal; these tests pin it to the two-pass reference semantics for
  shares, sibling repeats, cycles and repeated top-levels;
* **memoized size measurement** — ``SizeCache`` hit/miss/invalidation
  behaviour, and the end-to-end guarantee that iteration 2+ of a
  partition-stable matvec never re-measures the cached matrix blocks;
* **sorted-run streaming merge** — ``ShuffleInput.merged`` equals a stable
  sort of the concatenation, and flipping ``m3r.shuffle.sorted-runs``
  changes no committed byte and no shuffle byte metric.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.api.conf import SHUFFLE_SORTED_RUNS_KEY
from repro.api.writables import IntWritable, MatrixBlockWritable, Text, VectorBlockWritable
from repro.apps import matvec
from repro.apps.wordcount import generate_text, wordcount_job
from repro.shuffle import ShuffleInput
from repro.sim.cost_model import CostModel
from repro.sim.metrics import (
    Metrics,
    shuffle_place_bytes,
    shuffle_place_key,
    shuffle_skew,
)
from repro.x10.serializer import (
    BACKREF_BYTES,
    DedupSerializer,
    SizeCache,
    _size_of,
    estimate_size,
)

from conftest import make_m3r


# --------------------------------------------------------------------- #
# single-pass dual measurement
# --------------------------------------------------------------------- #


def two_pass_reference(values):
    """The former two-walk semantics: one memoized pass for wire bytes,
    one memo-less pass per value for raw bytes."""
    memo = {}
    wire = sum(_size_of(v, memo) for v in values)
    raw = sum(_size_of(v, None) for v in values)
    return wire, raw


TRICKY_MESSAGES = []

_shared = Text("a shared payload")
TRICKY_MESSAGES.append([_shared, _shared, _shared])  # repeated top-level

_inner = [Text("x"), Text("y")]
TRICKY_MESSAGES.append([[_inner, _inner], _inner])  # DAG sharing

_cycle = []
_cycle.append(_cycle)
TRICKY_MESSAGES.append([_cycle])  # self-cycle

_a = {"k": [1, 2.5, "s"]}
TRICKY_MESSAGES.append([_a, {"k2": _a}, _a["k"]])  # containment both ways

TRICKY_MESSAGES.append([np.arange(16), b"raw", None, True, 300, -7])


class TestDualWalk:
    @pytest.mark.parametrize("index", range(len(TRICKY_MESSAGES)))
    def test_matches_two_pass_reference(self, index):
        values = TRICKY_MESSAGES[index]
        message = DedupSerializer().measure_message(values)
        wire, raw = two_pass_reference(values)
        assert message.wire_bytes == wire
        assert message.raw_bytes == raw
        assert message.dedup_savings == raw - wire

    def test_repeated_object_costs_backrefs(self):
        shared = Text("hello shuffle")
        single = estimate_size(shared)
        message = DedupSerializer().measure_message([shared, shared, shared])
        assert message.wire_bytes == single + 2 * BACKREF_BYTES
        assert message.raw_bytes == 3 * single
        assert message.duplicate_refs == 2

    def test_cycle_terminates_and_wire_equals_raw(self):
        node = {"next": None}
        node["next"] = node
        message = DedupSerializer().measure_message([node])
        assert message.wire_bytes == message.raw_bytes > 0

    def test_distinct_objects_get_no_savings(self):
        values = [Text("one"), Text("two"), IntWritable(7)]
        message = DedupSerializer().measure_message(values)
        assert message.dedup_savings == 0
        assert message.unique_objects == 3

    def test_measure_pairs_records_and_totals(self):
        v = Text("payload")
        pairs = [(IntWritable(1), v), (IntWritable(2), v)]
        message = DedupSerializer().measure_pairs(pairs)
        assert message.records == 2
        flat = DedupSerializer().measure_message(
            [pairs[0][0], v, pairs[1][0], v]
        )
        assert message.wire_bytes == flat.wire_bytes
        assert message.raw_bytes == flat.raw_bytes

    def test_measurement_order_does_not_change_totals(self):
        """Sorting a message before measurement (the sorted-runs path) must
        not change the de-duplicated totals."""
        shared = Text("zzz")
        container = [shared, Text("mid")]
        values = [container, shared, Text("aaa")]
        forward = DedupSerializer().measure_message(values)
        backward = DedupSerializer().measure_message(list(reversed(values)))
        assert forward.wire_bytes == backward.wire_bytes
        assert forward.raw_bytes == backward.raw_bytes


# --------------------------------------------------------------------- #
# SizeCache
# --------------------------------------------------------------------- #


class TokenBlock:
    """A minimal cacheable payload: token = length, size derived from it."""

    def __init__(self, n):
        self.n = n
        self.size_calls = 0

    def size_token(self):
        return self.n

    def serialized_size(self):
        self.size_calls += 1
        return 10 * self.n


class SlotsBlock:
    __slots__ = ("n",)  # no __weakref__: cannot be cached

    def __init__(self, n):
        self.n = n

    def size_token(self):
        return self.n

    def serialized_size(self):
        return self.n


class TestSizeCache:
    def test_hit_on_revalidated_token(self):
        cache = SizeCache()
        block = TokenBlock(4)
        assert cache.measure(block, block.serialized_size) == 40
        assert cache.measure(block, block.serialized_size) == 40
        assert block.size_calls == 1  # second call was a cache hit
        assert cache.snapshot() == (1, 1)

    def test_token_change_invalidates(self):
        cache = SizeCache()
        block = TokenBlock(4)
        cache.measure(block, block.serialized_size)
        block.n = 5  # mutation visible through the token
        assert cache.measure(block, block.serialized_size) == 50
        assert block.size_calls == 2
        hits, misses = cache.snapshot()
        assert (hits, misses) == (0, 2)

    def test_no_token_means_no_caching(self):
        cache = SizeCache()
        text = Text("plain")  # scalar writables carry no size_token
        assert not callable(getattr(text, "size_token", None))
        cache.measure(text, text.serialized_size)
        cache.measure(text, text.serialized_size)
        assert cache.snapshot() == (0, 0)
        assert len(cache) == 0

    def test_dead_objects_are_forgotten(self):
        cache = SizeCache()
        block = TokenBlock(2)
        cache.measure(block, block.serialized_size)
        assert len(cache) == 1
        del block
        gc.collect()
        assert len(cache) == 0

    def test_non_weakrefable_objects_still_measured(self):
        cache = SizeCache()
        block = SlotsBlock(9)
        assert cache.measure(block, block.serialized_size) == 9
        assert len(cache) == 0  # computed but not stored
        assert cache.snapshot() == (0, 1)

    def test_block_writables_cache_through_estimate_size(self):
        import scipy.sparse as sp

        matrix = sp.random(8, 8, density=0.5, format="csc", random_state=3)
        block = MatrixBlockWritable(matrix)
        cache = SizeCache()
        first = estimate_size(block, size_cache=cache)
        second = estimate_size(block, size_cache=cache)
        assert first == second
        hits, misses = cache.snapshot()
        assert (hits, misses) == (1, 1)

    def test_vector_block_token_tracks_length(self):
        block = VectorBlockWritable(np.ones(5))
        cache = SizeCache()
        a = estimate_size(block, size_cache=cache)
        block.values = np.ones(6)
        b = estimate_size(block, size_cache=cache)
        assert b > a  # token changed, size re-measured


# --------------------------------------------------------------------- #
# merge cost model + ShuffleInput
# --------------------------------------------------------------------- #


class TestMergeTime:
    def test_zero_records_is_free(self):
        assert CostModel().merge_time(0, 0, 4) == 0.0

    def test_single_run_has_no_compare_term(self):
        model = CostModel()
        assert model.merge_time(100, 1000, 1) == pytest.approx(
            1000 / model.mem_bw
        )

    def test_k_runs_charges_log_k_compares(self):
        import math

        model = CostModel()
        expected = (
            50 * math.log2(4) * model.sort_per_compare + 2000 / model.mem_bw
        )
        assert model.merge_time(50, 2000, 4) == pytest.approx(expected)

    def test_merge_cheaper_than_full_sort(self):
        model = CostModel()
        n, nbytes = 10_000, 1_000_000
        assert model.merge_time(n, nbytes, 8) < model.sort_time(n, nbytes)


class TestShuffleInput:
    def key(self, pair):
        return pair[0]

    def test_merged_equals_stable_sort_of_concatenation(self):
        runs = [
            [(1, "a0"), (1, "a1"), (3, "a2")],
            [(0, "b0"), (1, "b1"), (3, "b2")],
            [(1, "c0"), (2, "c1")],
        ]
        inp = ShuffleInput(sorted_runs=True)
        for run in runs:
            inp.add_run(sorted(run, key=self.key), nbytes=10)
        flat = [pair for run in runs for pair in run]
        assert inp.merged(self.key) == sorted(flat, key=self.key)
        assert inp.records == len(flat)
        assert inp.bytes == 30

    def test_empty_runs_are_skipped(self):
        inp = ShuffleInput(sorted_runs=True)
        inp.add_run([], 0)
        inp.add_run([(1, "x")], 5)
        assert len(inp.runs) == 1
        assert inp.merged(self.key) == [(1, "x")]

    def test_unsorted_input_refuses_merge(self):
        inp = ShuffleInput(sorted_runs=False)
        inp.add_run([(2, "y"), (1, "x")], 7)
        with pytest.raises(ValueError):
            inp.merged(self.key)
        assert inp.concatenated() == [(2, "y"), (1, "x")]


# --------------------------------------------------------------------- #
# skew metrics
# --------------------------------------------------------------------- #


class TestSkewMetrics:
    def test_round_trip_and_ratio(self):
        metrics = Metrics()
        metrics.incr(shuffle_place_key(0), 100)
        metrics.incr(shuffle_place_key(1), 300)
        metrics.incr(shuffle_place_key(1), 100)
        metrics.incr("unrelated_counter", 999)
        assert shuffle_place_bytes(metrics) == {0: 100, 1: 400}
        skew = shuffle_skew(metrics)
        assert skew["max_bytes"] == 400.0
        assert skew["mean_bytes"] == 250.0
        assert skew["skew_ratio"] == pytest.approx(1.6)

    def test_empty_metrics_report_balanced(self):
        skew = shuffle_skew(Metrics())
        assert skew == {"max_bytes": 0.0, "mean_bytes": 0.0, "skew_ratio": 1.0}


# --------------------------------------------------------------------- #
# end-to-end: sorted runs on/off, local handoff counter, memoization
# --------------------------------------------------------------------- #


class TestSortedRunsKnob:
    def run_once(self, sorted_runs: bool):
        engine = make_m3r(num_nodes=4, workers_per_place=4)
        try:
            for part in range(8):
                engine.filesystem.write_text(
                    f"/in/part-{part:05d}", generate_text(6, seed=400 + part)
                )
            conf = wordcount_job("/in", "/out", num_reducers=4)
            conf.set_boolean(SHUFFLE_SORTED_RUNS_KEY, sorted_runs)
            result = engine.run_job(conf)
            assert result.succeeded, result.error
            output = {}
            for status in engine.filesystem.list_status("/out"):
                output[status.path] = [
                    (repr(k), repr(v))
                    for k, v in engine.filesystem.read_kv_pairs(status.path)
                ] if not status.path.endswith("_SUCCESS") else []
            return result, output
        finally:
            engine.shutdown()

    def test_knob_changes_no_byte(self):
        """Streamed merge vs re-sort: identical committed files (order
        included), counters and shuffle byte metrics — only the charged
        time categories move (sort → merge)."""
        merged_result, merged_out = self.run_once(True)
        sorted_result, sorted_out = self.run_once(False)
        assert merged_out == sorted_out
        assert merged_result.counters.as_dict() == sorted_result.counters.as_dict()
        for name in ("shuffle_remote_bytes", "shuffle_remote_records",
                     "shuffle_local_bytes", "dedup_saved_bytes"):
            assert merged_result.metrics.get(name) == sorted_result.metrics.get(name)
        assert merged_result.metrics.time.get("merge") > 0
        assert sorted_result.metrics.time.get("merge") == 0
        assert sorted_result.metrics.time.get("sort") > 0


class TestMatvecMemoization:
    def test_iteration_two_never_remeasures_cached_blocks(self):
        """The acceptance criterion: after iteration 1 warms the size
        cache, iteration 2 of the partition-stable matvec performs zero
        full re-measurements of the cached G blocks (their cheap
        ``size_token`` revalidation is all that runs), and the engine
        reports the hits."""
        rows, block = 128, 32
        num_blocks = rows // block
        engine = make_m3r(num_nodes=4, workers_per_place=4)
        measured = []
        original_matrix = MatrixBlockWritable.serialized_size
        original_vector = VectorBlockWritable.serialized_size

        def spy_matrix(self):
            measured.append(id(self))
            return original_matrix(self)

        def spy_vector(self):
            measured.append(id(self))
            return original_vector(self)

        MatrixBlockWritable.serialized_size = spy_matrix
        VectorBlockWritable.serialized_size = spy_vector
        try:
            g = matvec.generate_blocked_matrix(rows, block, sparsity=0.1, seed=7)
            v = matvec.generate_blocked_vector(rows, block, seed=8)
            matvec.write_partitioned(engine.filesystem, "/G", g, num_blocks, 4)
            matvec.write_partitioned(engine.filesystem, "/V0", v, num_blocks, 4)
            engine.warm_cache_from("/G")
            engine.warm_cache_from("/V0")

            def run_iteration(index, src, dst):
                sequence = matvec.iteration_jobs(
                    "/G", src, dst, "/scratch", index, num_blocks, 4
                )
                results = sequence.run_all(engine)
                assert all(r.succeeded for r in results)
                return results

            run_iteration(0, "/V0", "/V1")
            # Identities of every payload cached under /G after iteration 1:
            # these are the long-lived blocks iteration 2 will alias.
            cached_ids = {
                id(value)
                for entry in engine.cache.entries()
                if entry.path is not None and entry.path.startswith("/G")
                for _, value in (entry.pairs or [])
            }
            assert cached_ids
            measured.clear()
            results = run_iteration(1, "/V1", "/V2")
            remeasured = cached_ids & set(measured)
            assert remeasured == set()
            hits = sum(r.metrics.get("size_cache_hits") for r in results)
            assert hits > 0
        finally:
            MatrixBlockWritable.serialized_size = original_matrix
            VectorBlockWritable.serialized_size = original_vector
            engine.shutdown()
