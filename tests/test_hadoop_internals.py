"""Hadoop engine internals: spills, merges, locality accounting, slots."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.counters import JobCounter, TaskCounter
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.mapred import IdentityMapper, IdentityReducer
from repro.api.writables import BytesWritable, IntWritable, Text
from repro.apps.wordcount import generate_text, wordcount_job
from repro.hadoop_engine.engine import DEFAULT_SORT_BUFFER, SORT_BUFFER_KEY

from conftest import make_hadoop


def identity_conf(src, dst, reducers=2):
    conf = JobConf()
    conf.set_input_paths(src)
    conf.set_input_format(SequenceFileInputFormat)
    conf.set_mapper_class(IdentityMapper)
    conf.set_reducer_class(IdentityReducer)
    conf.set_output_format(SequenceFileOutputFormat)
    conf.set_output_path(dst)
    conf.set_num_reduce_tasks(reducers)
    return conf


class TestSpillAndMerge:
    def test_small_sort_buffer_triggers_merge_passes(self):
        """Map output larger than io.sort.mb spills repeatedly and pays an
        on-disk merge of the spill files."""
        pairs = [(IntWritable(i), BytesWritable(bytes(512))) for i in range(100)]

        def run(sort_buffer):
            engine = make_hadoop()
            engine.filesystem.write_pairs("/in/part-00000", pairs)
            conf = identity_conf("/in", "/out")
            conf.set_int(SORT_BUFFER_KEY, sort_buffer)
            result = engine.run_job(conf)
            assert result.succeeded, result.error
            return result

        roomy = run(DEFAULT_SORT_BUFFER)
        cramped = run(2048)  # forces many spills per map task
        assert cramped.metrics.time.get("merge") > roomy.metrics.time.get("merge")
        assert cramped.simulated_seconds > roomy.simulated_seconds
        # outputs identical either way
        assert roomy.counters.value(TaskCounter.SPILLED_RECORDS) == (
            cramped.counters.value(TaskCounter.SPILLED_RECORDS)
        )

    def test_shuffle_bytes_counter(self):
        engine = make_hadoop()
        pairs = [(IntWritable(i), BytesWritable(bytes(256))) for i in range(50)]
        engine.filesystem.write_pairs("/in/part-00000", pairs)
        result = engine.run_job(identity_conf("/in", "/out", reducers=4))
        shuffled = result.counters.value(TaskCounter.REDUCE_SHUFFLE_BYTES)
        assert shuffled >= 50 * 256

    def test_spilled_records_counter(self):
        engine = make_hadoop()
        engine.filesystem.write_text("/in.txt", generate_text(100))
        result = engine.run_job(
            wordcount_job("/in.txt", "/out", 4, use_combiner=False)
        )
        assert result.counters.value(TaskCounter.SPILLED_RECORDS) == (
            result.counters.value(TaskCounter.MAP_OUTPUT_RECORDS)
        )

    def test_combiner_reduces_spill(self):
        text = generate_text(200)
        results = {}
        for use_combiner in (True, False):
            engine = make_hadoop()
            engine.filesystem.write_text("/in.txt", text)
            results[use_combiner] = engine.run_job(
                wordcount_job("/in.txt", "/out", 4, use_combiner=use_combiner)
            )
        with_c, without_c = results[True], results[False]
        assert with_c.counters.value(TaskCounter.SPILLED_RECORDS) < (
            without_c.counters.value(TaskCounter.SPILLED_RECORDS)
        )
        assert with_c.counters.value(TaskCounter.REDUCE_SHUFFLE_BYTES) < (
            without_c.counters.value(TaskCounter.REDUCE_SHUFFLE_BYTES)
        )
        # same final answer regardless
        assert (
            with_c.counters.value(TaskCounter.REDUCE_OUTPUT_RECORDS)
            == without_c.counters.value(TaskCounter.REDUCE_OUTPUT_RECORDS)
        )


class TestLocalityAccounting:
    def test_data_local_maps_counted(self):
        engine = make_hadoop()
        # Input written with an explicit home node: its block locations make
        # the map placement data-local.
        pairs = [(IntWritable(i), Text("x" * 50)) for i in range(40)]
        engine.filesystem.write_pairs("/in/part-00000", pairs, at_node=2)
        result = engine.run_job(identity_conf("/in", "/out"))
        launched = result.counters.value(JobCounter.TOTAL_LAUNCHED_MAPS)
        local = result.counters.value(JobCounter.DATA_LOCAL_MAPS)
        assert launched >= 1
        assert 0 <= local <= launched

    def test_remote_read_charged_when_not_local(self):
        """A single-replica file on one node read by many mappers: at most
        the local ones avoid the network."""
        engine = make_hadoop()
        pairs = [(IntWritable(i), BytesWritable(bytes(1024))) for i in range(64)]
        # replication=2 on the fixture HDFS; write at node 0
        engine.filesystem.write_pairs("/in/part-00000", pairs, at_node=0)
        result = engine.run_job(identity_conf("/in", "/out"))
        assert result.succeeded
        # network time appears either in shuffle or remote reads
        assert result.metrics.time.get("network") >= 0


class TestSlots:
    def test_more_slots_shorter_map_phase(self):
        pairs_per_file = 30
        files = 8

        def run(map_slots):
            engine = make_hadoop(map_slots_per_node=map_slots)
            for i in range(files):
                engine.filesystem.write_pairs(
                    f"/in/part-{i:05d}",
                    [(IntWritable(j), BytesWritable(bytes(4096)))
                     for j in range(pairs_per_file)],
                    at_node=0,  # all on one node: slot count matters
                )
            result = engine.run_job(identity_conf("/in", "/out"))
            assert result.succeeded
            return result.simulated_seconds

        assert run(map_slots=1) > run(map_slots=8)

    def test_single_slot_serializes_tasks(self):
        engine = make_hadoop(map_slots_per_node=1, reduce_slots_per_node=1)
        engine.filesystem.write_text("/in.txt", generate_text(50))
        result = engine.run_job(wordcount_job("/in.txt", "/out", 4))
        assert result.succeeded
        # with one reduce slot per node, 4 reducers over 4 nodes still work
        assert result.counters.value(JobCounter.TOTAL_LAUNCHED_REDUCES) == 4
