"""The simulation substrate: clocks, cost model, cluster, metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Cluster,
    CostModel,
    Metrics,
    Node,
    PhaseTimer,
    SimClock,
    TimeBreakdown,
    paper_cluster_cost_model,
)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to(self):
        clock = SimClock(5.0)
        clock.advance_to(3.0)  # no going back
        assert clock.now == 5.0
        clock.advance_to(8.0)
        assert clock.now == 8.0

    def test_reset(self):
        clock = SimClock(9)
        clock.reset()
        assert clock.now == 0.0


class TestPhaseTimer:
    def test_barrier_takes_slowest_lane(self):
        timer = PhaseTimer(3)
        timer.charge(0, 1.0)
        timer.charge(1, 5.0)
        timer.charge(1, 1.0)
        assert timer.barrier() == 6.0
        assert timer.total_work() == 7.0

    def test_bad_participants(self):
        with pytest.raises(ValueError):
            PhaseTimer(0)
        timer = PhaseTimer(2)
        with pytest.raises(ValueError):
            timer.charge(0, -1)


class TestCostModel:
    def test_disk_faster_than_network_latency_structure(self):
        model = paper_cluster_cost_model()
        megabyte = 1 << 20
        assert model.disk_read_time(megabyte) > 0
        assert model.net_transfer_time(megabyte) > 0
        # memory is far faster than disk — the premise of the whole paper
        assert model.memcpy_time(megabyte) < model.disk_read_time(megabyte) / 10

    def test_evolve_is_pure(self):
        base = paper_cluster_cost_model()
        variant = base.evolve(jvm_startup=0.0)
        assert variant.jvm_startup == 0.0
        assert base.jvm_startup > 0.0

    def test_sort_time_zero_for_tiny_inputs(self):
        model = CostModel()
        assert model.sort_time(0, 0) == 0.0
        assert model.sort_time(1, 100) == 0.0
        assert model.sort_time(1000, 1000) > 0

    def test_external_merge_passes(self):
        model = CostModel(merge_fan_in=10)
        assert model.external_merge_passes(1) == 0
        assert model.external_merge_passes(5) == 1
        assert model.external_merge_passes(10) == 1
        assert model.external_merge_passes(11) == 2
        assert model.external_merge_passes(100) == 2
        assert model.external_merge_passes(101) == 3

    def test_merge_time_zero_for_single_run(self):
        assert CostModel().external_merge_time(100, 1000, 1) == 0.0

    def test_gc_churn_threshold(self):
        model = CostModel(gc_churn_overhead=0.2, gc_churn_threshold=1000)
        assert model.gc_churn_time(999) == 0.0
        assert model.gc_churn_time(1000) == 0.2

    def test_serialize_scales_with_bytes_and_records(self):
        model = CostModel()
        assert model.serialize_time(2000, 10) > model.serialize_time(1000, 10)
        assert model.serialize_time(1000, 20) > model.serialize_time(1000, 10)

    @given(st.integers(0, 10**9), st.integers(0, 10**6))
    @settings(max_examples=100)
    def test_all_costs_nonnegative(self, nbytes, nrecords):
        model = paper_cluster_cost_model()
        assert model.disk_read_time(nbytes) >= 0
        assert model.disk_write_time(nbytes) >= 0
        assert model.net_transfer_time(nbytes) >= 0
        assert model.serialize_time(nbytes, nrecords) >= 0
        assert model.deserialize_time(nbytes, nrecords) >= 0
        assert model.clone_time(nbytes, nrecords) >= 0
        assert model.sort_time(nrecords, nbytes) >= 0


class TestCluster:
    def test_shape(self):
        cluster = Cluster(num_nodes=5, cores_per_node=4)
        assert cluster.num_nodes == 5
        assert cluster.total_cores == 20
        assert len(list(cluster)) == 5

    def test_hostnames(self):
        cluster = Cluster(3)
        assert [n.hostname for n in cluster] == ["node00", "node01", "node02"]
        assert cluster.node_by_hostname("node01").node_id == 1
        with pytest.raises(KeyError):
            cluster.node_by_hostname("nope")

    def test_node_lookup_bounds(self):
        cluster = Cluster(2)
        with pytest.raises(IndexError):
            cluster.node(2)

    def test_locality(self):
        cluster = Cluster(3)
        assert cluster.is_local(1, 1)
        assert not cluster.is_local(1, 2)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Node(0, "h", cores=0)


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.incr("x", 2)
        metrics.incr("x")
        assert metrics.get("x") == 3
        assert metrics.get("absent") == 0

    def test_time_breakdown(self):
        metrics = Metrics()
        metrics.time.charge("disk_read", 1.5)
        metrics.time.charge("disk_read", 0.5)
        assert metrics.time.get("disk_read") == 2.0
        assert metrics.time.total() == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().charge("x", -0.1)

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.incr("n", 1)
        b.incr("n", 2)
        b.time.charge("network", 3.0)
        a.merge(b)
        assert a.get("n") == 3
        assert a.time.get("network") == 3.0

    def test_as_dict(self):
        metrics = Metrics()
        metrics.incr("c")
        metrics.time.charge("sort", 1.0)
        snapshot = metrics.as_dict()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["time"] == {"sort": 1.0}
