"""The command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        args = build_parser().parse_args(["--engine", "m3r", "micro"])
        assert args.engine == "m3r"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "spark", "micro"])

    def test_defaults(self):
        args = build_parser().parse_args(["wordcount"])
        assert args.engine == "both"
        assert args.nodes == 8
        assert args.lines == 2000


class TestCommands:
    def test_wordcount_both_engines(self, capsys):
        assert main(["--nodes", "4", "wordcount", "--lines", "100",
                     "--reducers", "4"]) == 0
        out = capsys.readouterr().out
        assert "hadoop" in out and "m3r" in out
        assert "outputs verified identical" in out

    def test_wordcount_mutating_variant(self, capsys):
        assert main(["--engine", "m3r", "--nodes", "2", "wordcount",
                     "--lines", "50", "--reducers", "2", "--mutating"]) == 0

    def test_micro(self, capsys):
        assert main(["--engine", "m3r", "--nodes", "4", "micro",
                     "--remote", "40", "--pairs", "100",
                     "--value-bytes", "64"]) == 0
        assert "iterations:" in capsys.readouterr().out

    def test_matvec_checks_equivalence(self, capsys):
        assert main(["--nodes", "4", "matvec", "--rows", "200",
                     "--iterations", "1", "--sparsity", "0.05"]) == 0
        out = capsys.readouterr().out
        assert out.count("checksum") == 2

    def test_sysml(self, capsys):
        assert main(["--engine", "m3r", "--nodes", "4", "sysml",
                     "--algorithm", "pagerank", "--size", "100",
                     "--block", "50", "--iterations", "1",
                     "--sparsity", "0.05"]) == 0
        assert "generated jobs" in capsys.readouterr().out

    def test_cache_stats_unbounded(self, capsys):
        assert main(["--nodes", "4", "cache-stats", "--rows", "100",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "capacity=unbounded" in out
        assert "evictions=0" in out and "spills=0" in out

    def test_cache_stats_under_pressure(self, capsys):
        assert main(["--nodes", "4", "cache-stats", "--rows", "200",
                     "--iterations", "2", "--capacity-bytes", "6000",
                     "--policy", "gds"]) == 0
        out = capsys.readouterr().out
        assert "policy=gds" in out
        assert "evictions=0" not in out  # pressure produced evictions
        assert "spill=on" in out

    def test_cache_stats_json_round_trip(self, capsys):
        assert main(["--nodes", "4", "cache-stats", "--rows", "100",
                     "--iterations", "1", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["capacity_bytes"] == 0
        assert doc["policy"] == "lru"
        assert doc["spill_enabled"] is True
        assert sorted(doc["places"]) == ["0", "1", "2", "3"]
        for slot in doc["places"].values():
            assert slot["entries"] >= 0 and slot["resident_bytes"] >= 0
        assert doc["lifetime"]["counters"].get("cache_evictions", 0) == 0

    def test_shuffle_stats_json_round_trip(self, capsys):
        assert main(["--nodes", "4", "shuffle-stats", "--workload",
                     "wordcount", "--lines", "200", "--iterations", "1",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "wordcount" and doc["jobs"] == 1
        assert all(isinstance(k, str) for k in doc["places"])
        assert doc["traffic"]["remote_bytes"] >= 0
        assert doc["skew"]["skew_ratio"] >= 1.0

    def test_trace_matvec_stage_seconds_sum_to_total(self, tmp_path, capsys):
        """Acceptance: the trace's per-stage seconds reconstruct each
        job's EngineResult total (JobEnd mirrors it byte-exactly)."""
        out = tmp_path / "trace.jsonl"
        assert main(["--nodes", "4", "trace", "--workload", "matvec",
                     "--rows", "160", "--iterations", "1",
                     "--out", str(out), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert out.exists()
        jobs = doc["jobs"]
        assert len(jobs) == 4  # multiply + sum, on both engines
        assert {j["engine"] for j in jobs} == {"hadoop", "m3r"}
        for job in jobs:
            assert job["succeeded"]
            assert sum(s["seconds"] for s in job["stages"]) == pytest.approx(
                job["seconds"], rel=1e-12
            )
            assert job["stages"][-1]["clock"] == job["seconds"]

    def test_trace_text_renders_waterfall(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["--engine", "m3r", "--nodes", "4", "trace",
                     "--workload", "wordcount", "--lines", "100",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace written to" in text
        for stage in ("setup", "map", "shuffle", "reduce", "commit"):
            assert stage in text

    def test_trace_out_file_starts_fresh(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        out.write_text('{"event": "stale"}\n')
        assert main(["--engine", "m3r", "--nodes", "2", "trace",
                     "--workload", "wordcount", "--lines", "50",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert "stale" not in out.read_text()

    def test_restore_stats_text(self, capsys):
        assert main(["--nodes", "4", "restore-stats", "--lines", "200"]) == 0
        out = capsys.readouterr().out
        assert "restore-stats: wordcount, 2 run(s)" in out
        assert "rerun speedup:" in out
        assert "hits=1 misses=1" in out

    def test_restore_stats_json_round_trip(self, capsys):
        assert main(["--nodes", "4", "restore-stats", "--workload", "matvec",
                     "--rows", "64", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "matvec"
        assert len(doc["runs"]) == 2
        # First run executes tasks and misses; the rerun is a pure hit.
        assert doc["runs"][0]["tasks"] > 0 and doc["runs"][0]["hits"] == 0
        assert doc["runs"][1]["tasks"] == 0 and doc["runs"][1]["hits"] == 2
        assert doc["runs"][1]["seconds"] < doc["runs"][0]["seconds"]
        assert doc["speedup"] > 1.0
        assert doc["store"]["lifetime"]["hits"] == 2
        assert len(doc["store"]["entries"]) == 2

    def test_restore_stats_single_run_no_speedup(self, capsys):
        assert main(["--nodes", "2", "restore-stats", "--lines", "100",
                     "--runs", "1", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["speedup"] is None
        assert len(doc["runs"]) == 1

    def test_analyze_clean_tree_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "clean.py"
        src.write_text("def add(a, b):\n    return a + b\n")
        assert main(["analyze", str(src), "--baseline-file",
                     str(tmp_path / "baseline.json")]) == 0
        assert "finding" in capsys.readouterr().out or True

    def test_analyze_json_round_trip_and_gate(self, tmp_path, capsys):
        src = tmp_path / "dirty.py"
        src.write_text(
            "import threading\n\n"
            "class Worker:\n"
            "    def run(self, st):\n"
            "        st['key'] = 1\n"
        )
        code = main(["analyze", str(src), "--format", "json",
                     "--baseline-file", str(tmp_path / "baseline.json")])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert isinstance(doc, dict) or isinstance(doc, list)
        assert code in (0, 1)

    def test_analyze_baseline_write_then_gate_green(self, tmp_path, capsys):
        """Writing a baseline then re-running against it must gate green."""
        src = tmp_path / "code.py"
        src.write_text("VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        assert main(["analyze", str(src), "--baseline",
                     "--baseline-file", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["analyze", str(src),
                     "--baseline-file", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baseline written" in out

    def test_analyze_json_has_schema_version(self, tmp_path, capsys):
        from repro.analysis.report import REPORT_SCHEMA_VERSION

        src = tmp_path / "clean.py"
        src.write_text("VALUE = 1\n")
        assert main(["analyze", str(src), "--format", "json",
                     "--baseline-file", str(tmp_path / "baseline.json")]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION == 2

    def test_analyze_exit_codes_documented_triple(self, tmp_path, capsys):
        """0 = clean, 1 = findings, 2 = usage error."""
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        baseline = str(tmp_path / "baseline.json")
        assert main(["analyze", str(clean),
                     "--baseline-file", baseline]) == 0

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def body(shared, i):\n"
            "    shared[i] = 1\n\n"
            "def driver(scope):\n"
            "    scope.submit(body)\n"
        )
        assert main(["analyze", str(dirty),
                     "--baseline-file", baseline]) == 1
        capsys.readouterr()

        # Unknown rule id: usage error.
        assert main(["analyze", "--explain", "M3R999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err and "M3R001" in err

        # argparse itself exits 2 on a bad flag.
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--report", "nonsense"])
        assert excinfo.value.code == 2

    def test_analyze_explain_prints_rule_card(self, capsys):
        assert main(["analyze", "--explain", "M3R008"]) == 0
        out = capsys.readouterr().out
        assert "M3R008" in out
        assert "rationale:" in out
        assert "example:" in out
        assert "fix:" in out
        assert "fsum" in out

    def test_analyze_explain_covers_every_rule(self, capsys):
        from repro.analysis import default_rules

        for rule in default_rules():
            assert main(["analyze", "--explain", rule.id]) == 0
            out = capsys.readouterr().out
            assert rule.id in out and "rationale:" in out

    def test_analyze_portability_report_round_trip(self, capsys):
        from repro.analysis.portability import PORTABILITY_SCHEMA_VERSION

        assert main(["analyze", "--report", "portability"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == PORTABILITY_SCHEMA_VERSION
        assert doc["report"] == "portability"
        # Since the task-envelope refactor (DESIGN.md §16) every stage
        # thunk is a functools.partial over a module-level body, so the
        # shipped tree reports zero captures of any kind — the state the
        # CI portability gate holds the tree to.
        assert doc["fatal_captures"] == 0
        assert doc["advisory_captures"] == 0
        assert doc["providers"] == []

    def test_analyze_portability_gate_clean_on_shipped_tree(self, capsys):
        assert main(["analyze", "--report", "portability", "--gate"]) == 0
        capsys.readouterr()

    def test_analyze_portability_gate_fails_on_captures(self, tmp_path, capsys):
        src = tmp_path / "prov.py"
        src.write_text(
            "import threading\n\n"
            "class DemoStageProvider:\n"
            "    def map_stage(self, st):\n"
            "        lock = threading.Lock()\n"
            "        def task(i):\n"
            "            with lock:\n"
            "                return st\n"
            "        return task\n"
        )
        assert main(["analyze", str(src),
                     "--report", "portability", "--gate"]) == 1
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["fatal_captures"] + doc["advisory_captures"] >= 1
        assert "FAIL" in captured.err

    def test_analyze_check_docs_passes_on_shipped_readme(self, capsys, monkeypatch):
        import repro

        repo_root = Path(repro.__file__).parent.parent.parent
        monkeypatch.chdir(repo_root)
        assert main(["analyze", "--check-docs"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_analyze_check_docs_fails_on_drift(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "README.md").write_text(
            "# stub\n<!-- knob-table:begin -->\n| stale |\n"
            "<!-- knob-table:end -->\n"
        )
        assert main(["analyze", "--check-docs"]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_analyze_check_docs_fails_without_markers(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "README.md").write_text("# no markers here\n")
        assert main(["analyze", "--check-docs"]) == 1
        assert "markers" in capsys.readouterr().err

    def test_pig_script(self, tmp_path, capsys):
        script = tmp_path / "s.pig"
        script.write_text(
            "x = LOAD '/data/input.txt' AS (k, v);\n"
            "f = FILTER x BY v > 1;\n"
            "STORE f INTO '/out/f';\n"
        )
        data = tmp_path / "d.txt"
        data.write_text("a\t1\nb\t2\nc\t3\n")
        assert main(["--nodes", "2", "pig", "--script", str(script),
                     "--data", str(data)]) == 0
        out = capsys.readouterr().out
        assert "outputs verified identical" in out
