"""Performance-model validation: the scaling laws behind the figures.

These tests pin the *structural* properties of the simulated times — the
properties the paper's evaluation rests on.  If a cost-model or engine
change breaks one of these, the benchmark figures will silently drift;
failing here localizes the regression.
"""

from __future__ import annotations

import pytest

from repro.api.counters import JobCounter, TaskCounter
from repro.apps.microbenchmark import generate_input, microbenchmark_job, run_microbenchmark
from repro.apps.wordcount import generate_text, wordcount_job

from conftest import make_hadoop, make_m3r


class TestHadoopScalingLaws:
    def test_fixed_floor_for_tiny_jobs(self):
        """Any Hadoop job pays at least submit + cleanup + one task wave."""
        engine = make_hadoop()
        engine.filesystem.write_text("/in.txt", "x\n")
        t = engine.run_job(wordcount_job("/in.txt", "/out", 1)).simulated_seconds
        model = engine.cost_model
        floor = (model.hadoop_job_submit + model.hadoop_job_cleanup
                 + model.jvm_startup + model.task_scheduling)
        assert t >= floor

    def test_time_grows_with_input(self):
        times = []
        for lines in (200, 2000, 20000):
            engine = make_hadoop()
            engine.filesystem.write_text("/in.txt", generate_text(lines))
            times.append(
                engine.run_job(wordcount_job("/in.txt", "/out", 4)).simulated_seconds
            )
        assert times[0] < times[1] < times[2]

    def test_per_job_cost_constant_across_sequence(self):
        """No cross-job amortization on the stock engine."""
        engine = make_hadoop()
        generate_input(engine.filesystem, "/in", 100, 256, 4)
        result = run_microbenchmark(engine, 0, num_pairs=100, value_bytes=256,
                                    num_reducers=4)
        first, second, third = result.iteration_seconds
        assert second == pytest.approx(first, rel=0.1)
        assert third == pytest.approx(first, rel=0.1)

    def test_remote_fraction_irrelevant(self):
        """Figure 6 left: the flat line, as a law."""
        times = []
        for remote in (0, 50, 100):
            engine = make_hadoop()
            result = run_microbenchmark(engine, remote, num_pairs=200,
                                        value_bytes=512, num_reducers=4)
            times.append(sum(result.iteration_seconds))
        spread = max(times) - min(times)
        assert spread < 0.05 * max(times)


class TestM3RScalingLaws:
    def test_no_startup_or_scheduling_terms(self):
        engine = make_m3r()
        engine.filesystem.write_text("/in.txt", generate_text(200))
        result = engine.run_job(wordcount_job("/in.txt", "/out", 4))
        assert result.metrics.time.get("jvm_startup") == 0.0
        assert result.metrics.time.get("scheduling") == 0.0
        assert result.metrics.time.get("job_submit") == pytest.approx(
            engine.cost_model.m3r_job_submit
        )

    def test_cache_saving_equals_read_plus_deserialize(self):
        """Iteration 2's saving is exactly the input path's I/O terms."""
        engine = make_m3r()
        generate_input(engine.filesystem, "/in", 200, 2048, 4)
        first = engine.run_job(microbenchmark_job("/in", "/a", 0, 4, seed=1))
        second = engine.run_job(microbenchmark_job("/in", "/b", 0, 4, seed=1))
        saved = first.simulated_seconds - second.simulated_seconds
        io_terms = (
            first.metrics.time.get("disk_read")
            + first.metrics.time.get("deserialize")
            + first.metrics.time.get("namenode")
        )
        # Charges are spread over parallel lanes; the wall-clock saving is
        # the per-lane share of the I/O terms.
        assert saved > 0
        assert saved <= io_terms
        assert second.metrics.time.get("disk_read") == 0.0

    def test_remote_fraction_slope_is_linear(self):
        engine_times = []
        for remote in (0, 50, 100):
            engine = make_m3r()
            result = run_microbenchmark(engine, remote, num_pairs=400,
                                        value_bytes=4096, num_reducers=4)
            engine_times.append(result.iteration_seconds[0])
        t0, t50, t100 = engine_times
        assert t0 < t50 < t100
        midpoint = (t0 + t100) / 2
        assert t50 == pytest.approx(midpoint, rel=0.1)

    def test_local_shuffle_cheaper_than_remote(self):
        local = make_m3r()
        result_local = run_microbenchmark(local, 0, num_pairs=400,
                                          value_bytes=4096, num_reducers=4)
        remote = make_m3r()
        result_remote = run_microbenchmark(remote, 100, num_pairs=400,
                                           value_bytes=4096, num_reducers=4)
        assert sum(result_local.iteration_seconds) < sum(
            result_remote.iteration_seconds
        )

    def test_dedup_never_increases_time(self):
        from conftest import make_m3r as fresh

        with_dedup = fresh()
        without = fresh(enable_dedup=False)
        times = {}
        for name, engine in (("on", with_dedup), ("off", without)):
            result = run_microbenchmark(engine, 100, num_pairs=200,
                                        value_bytes=1024, num_reducers=4)
            times[name] = sum(result.iteration_seconds)
        assert times["on"] <= times["off"] + 1e-9


class TestCounterEquivalence:
    """System counters the engines must agree on (the data-dependent ones)."""

    EQUAL_COUNTERS = (
        TaskCounter.MAP_INPUT_RECORDS,
        TaskCounter.MAP_OUTPUT_RECORDS,
        TaskCounter.MAP_OUTPUT_BYTES,
        TaskCounter.REDUCE_OUTPUT_RECORDS,
        JobCounter.TOTAL_LAUNCHED_REDUCES,
    )

    def test_wordcount_counters_match(self):
        text = generate_text(150)
        counters = {}
        for factory in (make_hadoop, make_m3r):
            engine = factory()
            engine.filesystem.write_text("/in.txt", text)
            result = engine.run_job(
                wordcount_job("/in.txt", "/out", 4, use_combiner=False)
            )
            assert result.succeeded
            counters[factory.__name__] = result.counters
        for counter in self.EQUAL_COUNTERS:
            assert (
                counters["make_hadoop"].value(counter)
                == counters["make_m3r"].value(counter)
            ), counter

    def test_reduce_group_counters_match(self):
        counters = {}
        for factory in (make_hadoop, make_m3r):
            engine = factory()
            generate_input(engine.filesystem, "/in", 120, 64, 4)
            result = engine.run_job(microbenchmark_job("/in", "/out", 40, 4))
            counters[factory.__name__] = result.counters
        for counter in (TaskCounter.REDUCE_INPUT_RECORDS,
                        TaskCounter.REDUCE_INPUT_GROUPS):
            assert (
                counters["make_hadoop"].value(counter)
                == counters["make_m3r"].value(counter)
            ), counter
