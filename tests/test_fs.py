"""Filesystems: namespace semantics, HDFS placement, instrumentation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.writables import IntWritable, Text
from repro.fs import (
    BlockLocation,
    FsTally,
    InMemoryFileSystem,
    InstrumentedFileSystem,
    SimulatedHDFS,
    normalize_path,
    parent_path,
)
from repro.sim import Cluster


class TestPaths:
    @pytest.mark.parametrize("raw,expected", [
        ("/a/b", "/a/b"),
        ("a/b", "/a/b"),
        ("/a//b/", "/a/b"),
        ("/a/./b", "/a/b"),
        ("/a/b/../c", "/a/c"),
        ("/", "/"),
    ])
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_escape_rejected(self):
        with pytest.raises(ValueError):
            normalize_path("/../x")
        with pytest.raises(ValueError):
            normalize_path("")

    def test_parent(self):
        assert parent_path("/a/b") == "/a"
        assert parent_path("/a") == "/"
        assert parent_path("/") is None


class TestNamespace:
    def test_write_read_text(self, memfs):
        memfs.write_text("/a/b.txt", "hello")
        assert memfs.read_text("/a/b.txt") == "hello"
        assert memfs.exists("/a/b.txt")
        assert memfs.is_directory("/a")

    def test_write_creates_parents(self, memfs):
        memfs.write_text("/x/y/z.txt", "v")
        assert memfs.is_directory("/x")
        assert memfs.is_directory("/x/y")

    def test_mkdirs(self, memfs):
        assert memfs.mkdirs("/a/b/c")
        assert not memfs.mkdirs("/a/b/c")  # already there
        assert memfs.is_directory("/a/b")

    def test_mkdirs_over_file_raises(self, memfs):
        memfs.write_text("/f", "x")
        with pytest.raises(NotADirectoryError):
            memfs.mkdirs("/f")
        with pytest.raises(NotADirectoryError):
            memfs.write_text("/f/child", "y")

    def test_file_status(self, memfs):
        memfs.write_text("/f", "abc")
        status = memfs.get_file_status("/f")
        assert status.length == 3 and status.is_file
        assert memfs.get_file_status("/missing") is None

    def test_list_status_direct_children_only(self, memfs):
        memfs.write_text("/d/a", "1")
        memfs.write_text("/d/sub/b", "2")
        children = memfs.list_status("/d")
        assert [s.path for s in children] == ["/d/a", "/d/sub"]

    def test_list_status_missing_raises(self, memfs):
        with pytest.raises(FileNotFoundError):
            memfs.list_status("/missing")

    def test_list_files_recursive(self, memfs):
        memfs.write_text("/d/a", "1")
        memfs.write_text("/d/sub/b", "2")
        assert [s.path for s in memfs.list_files_recursive("/d")] == [
            "/d/a", "/d/sub/b",
        ]

    def test_delete_file(self, memfs):
        memfs.write_text("/f", "x")
        assert memfs.delete("/f")
        assert not memfs.exists("/f")
        assert not memfs.delete("/f")

    def test_delete_nonempty_dir_needs_recursive(self, memfs):
        memfs.write_text("/d/f", "x")
        with pytest.raises(IsADirectoryError):
            memfs.delete("/d")
        assert memfs.delete("/d", recursive=True)
        assert not memfs.exists("/d/f")

    def test_rename_file(self, memfs):
        memfs.write_text("/a", "v")
        assert memfs.rename("/a", "/b/c")
        assert memfs.read_text("/b/c") == "v"
        assert not memfs.exists("/a")

    def test_rename_tree(self, memfs):
        memfs.write_text("/src/one", "1")
        memfs.write_text("/src/deep/two", "2")
        memfs.rename("/src", "/dst")
        assert memfs.read_text("/dst/one") == "1"
        assert memfs.read_text("/dst/deep/two") == "2"
        assert not memfs.exists("/src")

    def test_rename_to_existing_raises(self, memfs):
        memfs.write_text("/a", "1")
        memfs.write_text("/b", "2")
        with pytest.raises(FileExistsError):
            memfs.rename("/a", "/b")

    def test_rename_missing_returns_false(self, memfs):
        assert memfs.rename("/nope", "/dst") is False

    def test_pairs_roundtrip(self, memfs):
        pairs = [(IntWritable(i), Text(f"v{i}")) for i in range(3)]
        memfs.write_pairs("/p", pairs)
        assert memfs.read_pairs("/p") == pairs
        status = memfs.get_file_status("/p")
        assert status.length > 0

    def test_type_confusion_raises(self, memfs):
        memfs.write_text("/t", "text")
        with pytest.raises(TypeError):
            memfs.read_pairs("/t")
        memfs.write_pairs("/p", [(IntWritable(1), Text("v"))])
        with pytest.raises(TypeError):
            memfs.read_bytes("/p")

    def test_read_kv_pairs_over_directory_skips_hidden(self, memfs):
        memfs.write_pairs("/d/part-00000", [(IntWritable(0), Text("a"))])
        memfs.write_pairs("/d/part-00001", [(IntWritable(1), Text("b"))])
        memfs.write_pairs("/d/_SUCCESS", [])
        pairs = memfs.read_kv_pairs("/d")
        assert len(pairs) == 2


class TestSimulatedHDFS:
    def test_block_placement_deterministic(self):
        fs1 = SimulatedHDFS(Cluster(5), block_size=10, replication=2)
        fs2 = SimulatedHDFS(Cluster(5), block_size=10, replication=2)
        fs1.write_text("/f", "x" * 35)
        fs2.write_text("/f", "x" * 35)
        assert fs1.file_blocks("/f") == fs2.file_blocks("/f")

    def test_block_count_and_sizes(self, hdfs):
        hdfs.write_text("/f", "x" * (64 * 1024 * 2 + 10))
        blocks = hdfs.file_blocks("/f")
        assert len(blocks) == 3
        assert blocks[0].length == 64 * 1024
        assert blocks[-1].length == 10

    def test_replication_capped_by_cluster(self):
        fs = SimulatedHDFS(Cluster(2), replication=5)
        assert fs.replication == 2

    def test_writer_node_gets_first_replica(self, hdfs):
        hdfs.write_text("/f", "data", at_node=2)
        assert hdfs.file_blocks("/f")[0].hosts[0] == "node02"
        assert hdfs.primary_node_of("/f") == 2

    def test_get_block_locations(self, hdfs):
        hdfs.write_text("/f", "x" * (64 * 1024 + 5), at_node=1)
        first = hdfs.get_block_locations("/f", 0, 10)
        second = hdfs.get_block_locations("/f", 64 * 1024 + 1, 2)
        assert first[0] == "node01"
        assert len(first) == hdfs.replication
        assert second  # metadata for the second block exists

    def test_locations_of_missing_file(self, hdfs):
        assert hdfs.get_block_locations("/missing", 0, 1) == []

    def test_delete_drops_blocks(self, hdfs):
        hdfs.write_text("/f", "x")
        hdfs.delete("/f")
        assert hdfs.file_blocks("/f") == []

    def test_rename_keeps_data(self, hdfs):
        hdfs.write_text("/f", "payload")
        hdfs.rename("/f", "/g")
        assert hdfs.read_text("/g") == "payload"
        assert hdfs.file_blocks("/g")

    def test_replicated_bytes(self, hdfs):
        hdfs.write_text("/f", "x" * 100)
        assert hdfs.replicated_bytes("/f") == 100 * hdfs.replication

    def test_namenode_ops_counted(self, hdfs):
        before = hdfs.namenode_ops
        hdfs.write_text("/f", "x")
        hdfs.get_block_locations("/f", 0, 1)
        hdfs.delete("/f")
        assert hdfs.namenode_ops >= before + 3

    def test_empty_file_still_has_block_metadata(self, hdfs):
        hdfs.write_text("/empty", "")
        assert len(hdfs.file_blocks("/empty")) == 1


class TestInstrumentedFS:
    def test_tallies_reads_writes(self, hdfs):
        tally = FsTally()
        view = InstrumentedFileSystem(hdfs, tally)
        view.write_text("/f", "abcd")
        view.read_text("/f")
        assert tally.bytes_written == 4
        assert tally.bytes_read == 4
        assert tally.write_ops == 1
        assert tally.read_ops == 1

    def test_tallies_metadata_ops(self, hdfs):
        tally = FsTally()
        view = InstrumentedFileSystem(hdfs, tally)
        view.exists("/x")
        view.mkdirs("/d")
        view.get_file_status("/d")
        assert tally.metadata_ops == 3

    def test_pair_files_tally_wire_size(self, hdfs):
        tally = FsTally()
        view = InstrumentedFileSystem(hdfs, tally)
        view.write_pairs("/p", [(IntWritable(1), Text("abc"))])
        written = tally.bytes_written
        assert written == hdfs.get_file_status("/p").length
        view.read_pairs("/p")
        assert tally.bytes_read == written

    def test_at_node_defaulting(self, hdfs):
        view = InstrumentedFileSystem(hdfs, FsTally(), at_node=3)
        view.write_text("/f", "x")
        assert hdfs.primary_node_of("/f") == 3
        view.write_text("/g", "y", at_node=1)
        assert hdfs.primary_node_of("/g") == 1

    def test_shares_underlying_storage(self, hdfs):
        a = InstrumentedFileSystem(hdfs, FsTally())
        b = InstrumentedFileSystem(hdfs, FsTally())
        a.write_text("/shared", "v")
        assert b.read_text("/shared") == "v"

    def test_reset(self):
        tally = FsTally(bytes_read=5, read_ops=1)
        tally.reset()
        assert tally.bytes_read == 0 and tally.read_ops == 0


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["write", "delete", "rename", "mkdirs"]),
            st.sampled_from(["/a", "/b", "/a/x", "/b/y", "/c/z"]),
            st.sampled_from(["/a", "/b", "/d", "/c/w"]),
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_fs_model_property(ops):
    """The filesystem agrees with a naive dict model for flat operations."""
    fs = InMemoryFileSystem()
    model = {}
    for op, p1, p2 in ops:
        if op == "write":
            try:
                fs.write_text(p1, "v" + p1)
            except (IsADirectoryError, NotADirectoryError):
                continue  # path collides with a directory / file ancestor
            model[p1] = "v" + p1
        elif op == "delete":
            try:
                fs.delete(p1, recursive=True)
            except IsADirectoryError:
                pass
            model = {k: v for k, v in model.items()
                     if not (k == p1 or k.startswith(p1 + "/"))}
        elif op == "rename":
            src_files = {k for k in model if k == p1 or k.startswith(p1 + "/")}
            try:
                renamed = fs.rename(p1, p2)
            except (FileExistsError, NotADirectoryError):
                continue
            if renamed and src_files:
                for k in src_files:
                    model[p2 + k[len(p1):]] = model.pop(k)
        elif op == "mkdirs":
            try:
                fs.mkdirs(p1)
            except NotADirectoryError:
                pass
    for path, content in model.items():
        assert fs.read_text(path) == content
