"""Process place backend (DESIGN.md §16): backend-equivalence differentials,
worker fault injection, wire-codec units, and the shared kvstore view.

The load-bearing contract: `m3r.places.backend` selects *where* kernels
execute, never *what* they produce — outputs, counters and simulated
seconds must be byte-identical between the thread and process backends on
both engines.  The three excluded metric keys are engine-lifetime
driver-side serializer/size-cache state, documented in DESIGN.md §16.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading

import pytest

from repro.api.conf import DEFAULT_PLACES_BACKEND, PLACES_ENV
from repro.api.mapred import Mapper
from repro.api.portable import ProcessPortable, is_process_portable
from repro.api.writables import IntWritable, Text
from repro.engine_common import PlaceFailure
from repro.kvstore.store import BlockInfo, KeyValueStore
from repro.x10.backends import (
    EnvelopeEncodingError,
    ProcessPlaceBackend,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    kernel_root_ids,
    resolve_backend_name,
)
from repro.x10.places import Place

from conftest import make_hadoop, make_m3r
from workloads import run_stress, stress_job, write_corpus

#: Driver-side engine-lifetime state (serializer de-dup table, size
#: cache); identical *totals* are not guaranteed when kernels run in a
#: worker heap, so these stay out of the byte-identity contract.
EXCLUDED_METRIC_KEYS = {
    "size_cache_hits",
    "size_cache_misses",
    "serializer_fallbacks",
}


def comparable(snap):
    """Everything the backend-equivalence contract covers."""
    metrics = snap["metrics"]
    counters = {
        k: v
        for k, v in dict(metrics.counters).items()
        if k not in EXCLUDED_METRIC_KEYS
    }
    return {
        "output": snap["output"],
        "counts": snap["counts"],
        "counters": snap["counters"],
        "seconds": snap["seconds"],
        "metric_counters": counters,
        "time": metrics.time.as_dict(),
    }


# --------------------------------------------------------------------- #
# backend-equivalence differential
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("engine_kind", ["m3r", "hadoop"])
def test_backend_differential(engine_kind, seed):
    """Thread and process backends must be byte-identical: same committed
    output, same user counters, same cost-model metrics, same simulated
    seconds — on both engines, across 20 seeded corpora."""
    factory = {"m3r": make_m3r, "hadoop": make_hadoop}[engine_kind]
    snapshots = {
        backend: run_stress(
            factory,
            seed,
            threaded=True,
            parts=4,
            engine_kwargs={"place_backend": backend},
        )
        for backend in ("thread", "process")
    }
    assert comparable(snapshots["thread"]) == comparable(snapshots["process"])


def test_process_backend_actually_offloads():
    """The differential above would pass vacuously if the process backend
    silently ran everything locally; pin the offload path as exercised."""
    engine = make_m3r(place_backend="process")
    try:
        write_corpus(engine.filesystem, "/in", 3, parts=4)
        result = engine.run_job(stress_job("/in", "/out", reducers=4))
        assert result.succeeded, result.error
        backend = engine.runtime.backend
        assert isinstance(backend, ProcessPlaceBackend)
        assert backend.offload_count > 0
    finally:
        engine.shutdown()


def test_offload_count_is_not_a_job_metric():
    """Offload accounting is driver observability only — it must never
    leak into counters or metrics (that would break byte-identity)."""
    snap = run_stress(
        make_m3r, 5, threaded=True, parts=4,
        engine_kwargs={"place_backend": "process"},
    )
    for group, names in snap["counters"].items():
        assert "offload" not in group.lower()
        for name in names:
            assert "offload" not in name.lower()
    assert not any("offload" in k for k in dict(snap["metrics"].counters))


# --------------------------------------------------------------------- #
# fault injection: worker loss is a PlaceFailure, then places respawn
# --------------------------------------------------------------------- #

_DRIVER_PID = os.getpid()


class WorkerKillerMapper(Mapper, ProcessPortable):
    """Dies abruptly when its hosting process is a forked place worker —
    the mid-kernel SIGKILL-equivalent.  In the driver process (thread
    backend, local fallback) it behaves as a plain identity-count map."""

    def map(self, key, value, output, reporter):
        if os.getpid() != _DRIVER_PID:
            os._exit(17)
        output.collect(Text(str(value)), IntWritable(1))


def test_worker_loss_is_place_failure_and_worker_respawns():
    from workloads import failing_job

    engine = make_m3r(place_backend="process")
    try:
        write_corpus(engine.filesystem, "/in", 7, parts=4)
        # Warm the cache so the killer job's map inputs are materialized
        # cache hits — the offloadable path (a streaming first read runs
        # the kernel locally, where the mapper is harmless by design).
        warm = engine.run_job(stress_job("/in", "/out-warm", reducers=4))
        assert warm.succeeded, warm.error

        conf = failing_job(WorkerKillerMapper)
        conf.set_output_path("/out-killed")
        with pytest.raises(PlaceFailure):
            engine.run_job(conf)

        # The backend respawned the dead worker(s): the same engine runs
        # the next job to completion (warm restart of the place).
        retry = engine.run_job(stress_job("/in", "/out-retry", reducers=4))
        assert retry.succeeded, retry.error
    finally:
        engine.shutdown()


def test_shutdown_is_idempotent_and_leak_free():
    for backend in ("thread", "process"):
        engine = make_m3r(place_backend=backend)
        write_corpus(engine.filesystem, "/in", 2, parts=2)
        result = engine.run_job(stress_job("/in", "/out", reducers=2))
        assert result.succeeded, result.error
        engine.shutdown()
        engine.shutdown()  # double-close must be a no-op
    assert not multiprocessing.active_children()


def test_hadoop_accepts_the_knob_but_never_offloads():
    """API parity: the stock engine validates the knob, exposes the same
    shutdown() surface, and keeps running tasks on tasktracker threads."""
    engine = make_hadoop(place_backend="process")
    try:
        assert engine.place_backend == "process"
        assert not multiprocessing.active_children()  # no worker pool
    finally:
        engine.shutdown()
        engine.shutdown()


def test_unknown_backend_is_rejected_by_both_engines():
    with pytest.raises(ValueError):
        make_m3r(place_backend="fiber")
    with pytest.raises(ValueError):
        make_hadoop(place_backend="fiber")


def test_backend_name_precedence(monkeypatch):
    """Explicit argument > M3R_PLACES environment > registry default."""
    monkeypatch.delenv(PLACES_ENV, raising=False)
    assert resolve_backend_name(None) == str(DEFAULT_PLACES_BACKEND)
    monkeypatch.setenv(PLACES_ENV, "process")
    assert resolve_backend_name(None) == "process"
    assert resolve_backend_name("thread") == "thread"
    monkeypatch.setenv(PLACES_ENV, "bogus")
    with pytest.raises(ValueError):
        resolve_backend_name(None)


# --------------------------------------------------------------------- #
# licensing
# --------------------------------------------------------------------- #


def test_portability_licensing():
    from repro.api.mapred import IdentityMapper, IdentityReducer
    from repro.apps.wordcount import SumReducer

    class Unlicensed(Mapper):
        def map(self, key, value, output, reporter):  # pragma: no cover
            pass

    class Marked(Unlicensed, ProcessPortable):
        pass

    class SubclassOfMarked(Marked):
        pass

    assert not is_process_portable(Unlicensed)
    assert is_process_portable(Marked)
    assert is_process_portable(SubclassOfMarked)  # marker is inherited
    assert is_process_portable(IdentityMapper)  # allowlisted
    assert is_process_portable(IdentityReducer)
    assert is_process_portable(SumReducer)
    assert not is_process_portable(Unlicensed())  # instances never qualify
    assert not is_process_portable("repro.api.mapred.IdentityMapper")


# --------------------------------------------------------------------- #
# wire codecs
# --------------------------------------------------------------------- #


def test_response_codec_restores_input_aliasing():
    """An output object that IS an input record must come back as the
    driver's original object, not a worker-heap copy."""
    key, value = Text("alias"), IntWritable(41)
    roots = [key, value]
    # Simulate the worker: a structurally identical clone of the roots.
    worker_roots = pickle.loads(pickle.dumps(roots))
    outcome = [
        (worker_roots[0], worker_roots[1]),  # aliases an input pair
        (Text("fresh"), IntWritable(1)),  # born inside the kernel
    ]
    payload = encode_response(outcome, worker_roots)
    resolved = decode_response(payload, roots)
    assert resolved[0][0] is key
    assert resolved[0][1] is value
    assert resolved[1][0] is not key
    assert str(resolved[1][0]) == "fresh"
    assert resolved[1][1].get() == 1


def test_response_codec_preserves_within_response_sharing():
    shared = IntWritable(9)
    outcome = [(Text("a"), shared), (Text("b"), shared)]
    resolved = decode_response(encode_response(outcome, []), [])
    assert resolved[0][1] is resolved[1][1]


def test_interned_singletons_are_never_back_referenced():
    ids = kernel_root_ids([None, True, False, Text("x")])
    assert id(None) not in ids
    assert id(True) not in ids
    assert id(False) not in ids
    assert len(ids) == 1


def test_duplicate_roots_resolve_to_first_index():
    obj = Text("dup")
    assert kernel_root_ids([obj, obj]) == {id(obj): 0}


def test_unpicklable_envelope_raises_encoding_error():
    with pytest.raises(EnvelopeEncodingError):
        encode_request({"bad": threading.Lock()}, 0)


def test_request_codec_small_values_stay_inline():
    payload, arena = encode_request({"k": [1, 2, 3]}, 1 << 20)
    assert len(arena) == 0
    request, attachments = decode_request(payload)
    assert request == {"k": [1, 2, 3]}
    assert attachments == []
    arena.release()


def test_request_codec_diverts_large_arrays_through_shm():
    numpy = pytest.importorskip("numpy")
    array = numpy.arange(4096, dtype=numpy.float64)  # 32 KiB
    payload, arena = encode_request(
        {"big": array, "small": numpy.arange(4)}, 1024
    )
    assert len(arena) == 1  # only the big array crossed via SHM
    request, attachments = decode_request(payload)
    assert len(attachments) == 1
    assert numpy.array_equal(request["big"], array)
    assert numpy.array_equal(request["small"], numpy.arange(4))
    del request
    for shm in attachments:
        shm.close()
    arena.release()


# --------------------------------------------------------------------- #
# shared kvstore view
# --------------------------------------------------------------------- #


def test_shared_store_view_roundtrip():
    numpy = pytest.importorskip("numpy")
    store = KeyValueStore([Place(i) for i in range(2)])
    big = numpy.arange(8192, dtype=numpy.float64)  # 64 KiB
    store.put_block(
        "/m", BlockInfo(place_id=0), [(Text("blk"), big), (Text("n"), 7)]
    )
    view = store.shared_view(["/m"], threshold_bytes=1024)
    try:
        assert view.paths() == ["/m"]
        assert view.exported_blocks() == 1
        # The view pickles small: payload stays in the SHM block, only
        # the reference crosses the wire.
        clone = pickle.loads(pickle.dumps(view))
        try:
            pairs = clone.pairs("/m")
            assert str(pairs[0][0]) == "blk"
            assert numpy.array_equal(pairs[0][1], big)
            assert pairs[1] == (Text("n"), 7) or pairs[1][1] == 7
            del pairs
        finally:
            clone.release()
    finally:
        view.release()


def test_shared_store_view_release_is_idempotent():
    store = KeyValueStore([Place(0)])
    store.put_block("/p", BlockInfo(place_id=0), [(Text("k"), 1)])
    with store.shared_view(["/p"]) as view:
        assert view.pairs("/p")[0][1] == 1
    view.release()  # second release after the context exit: no-op
