"""Every example script must run clean end to end (they are the quickstart
documentation; a broken example is a broken README)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "pagerank_matvec.py",
        "sysml_analytics.py",
        "pig_etl.py",
        "cache_management.py",
        "failure_semantics.py",
        "matrix_library.py",
        "bigsheets_server.py",
    } <= set(EXAMPLES)
