"""The mini X10 runtime: places, finish/async, teams, dedup serialization."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.writables import BytesWritable, IntWritable, Text
from repro.x10 import (
    DedupSerializer,
    Place,
    PlaceLocalHandle,
    Team,
    X10Runtime,
    deep_copy_value,
    estimate_size,
)
from repro.x10.runtime import ActivityError
from repro.x10.serializer import BACKREF_BYTES


class TestPlaces:
    def test_place_identity(self):
        assert Place(1) == Place(1)
        assert Place(1) != Place(2)
        assert hash(Place(3)) == hash(Place(3))

    def test_place_heap_roots(self):
        place = Place(0)
        value = place.get_root("cache", dict)
        value["k"] = 1
        assert place.get_root("cache", dict) is value
        place.drop_root("cache")
        assert place.get_root("cache", dict) == {}

    def test_invalid_place(self):
        with pytest.raises(ValueError):
            Place(-1)
        with pytest.raises(ValueError):
            Place(0, workers=0)

    def test_place_local_handle(self):
        places = [Place(i) for i in range(3)]
        handle = PlaceLocalHandle(places, lambda p: {"id": p.place_id})
        assert handle.at(places[2]) == {"id": 2}
        assert handle.at(places[0]) is not handle.at(places[1])
        handle.free()
        with pytest.raises(KeyError):
            handle.at(places[0])


class TestRuntime:
    def test_finish_waits_for_asyncs(self):
        with X10Runtime(4, workers_per_place=2) as runtime:
            results = []
            lock = threading.Lock()

            def work(i):
                with lock:
                    results.append(i)
                return i * i

            activities = runtime.finish(
                lambda scope: [
                    scope.async_at(runtime.place(i % 4), work, i) for i in range(16)
                ]
            )
            assert sorted(results) == list(range(16))
            assert [a.result() for a in activities] == [i * i for i in range(16)]

    def test_finish_propagates_failures(self):
        with X10Runtime(2) as runtime:
            def explode():
                raise ValueError("place died")

            with pytest.raises(ActivityError) as excinfo:
                runtime.finish(lambda scope: scope.async_at(runtime.place(1), explode))
            assert isinstance(excinfo.value.first, ValueError)

    def test_at_runs_synchronously(self):
        with X10Runtime(2) as runtime:
            assert runtime.at(runtime.place(1), lambda x: x + 1, 41) == 42

    def test_shutdown_rejects_new_work(self):
        runtime = X10Runtime(2)
        runtime.shutdown()
        with pytest.raises(RuntimeError):
            runtime.finish(lambda scope: None)


class TestTeam:
    def test_barrier_synchronizes(self):
        team = Team(4)
        phase_log = []
        lock = threading.Lock()

        def member(i):
            with lock:
                phase_log.append(("before", i))
            team.barrier(i)
            with lock:
                phase_log.append(("after", i))

        threads = [threading.Thread(target=member, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        befores = [idx for idx, (phase, _) in enumerate(phase_log) if phase == "before"]
        afters = [idx for idx, (phase, _) in enumerate(phase_log) if phase == "after"]
        assert max(befores) < min(afters)
        assert team.barriers_crossed == 1

    def test_allreduce_sum(self):
        team = Team(3)
        outputs = {}

        def member(i):
            outputs[i] = team.allreduce(i, i + 1, lambda a, b: a + b)

        threads = [threading.Thread(target=member, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(outputs.values()) == {6}

    def test_allreduce_ordered_fold(self):
        team = Team(3)
        outputs = {}

        def member(i):
            outputs[i] = team.allreduce(i, str(i), lambda a, b: a + b)

        threads = [threading.Thread(target=member, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(outputs.values()) == {"012"}  # member order, deterministic

    def test_member_out_of_range(self):
        with pytest.raises(ValueError):
            Team(2).barrier(5)


class TestEstimateSize:
    def test_writables_use_wire_size(self):
        assert estimate_size(Text("abcd")) == 4 + Text("abcd").serialized_size()

    def test_scalars(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(3) >= 1
        assert estimate_size(3.5) == 8

    def test_big_ints_grow(self):
        assert estimate_size(2**40) > estimate_size(1)

    def test_containers_recurse(self):
        flat = estimate_size([1, 2, 3])
        nested = estimate_size([[1, 2, 3], [1, 2, 3]])
        assert nested > flat

    def test_numpy(self):
        arr = np.zeros(100)
        assert estimate_size(arr) >= arr.nbytes

    def test_bytes(self):
        assert estimate_size(b"x" * 100) >= 100


class TestDedupSerializer:
    def test_repeated_object_counted_once(self):
        serializer = DedupSerializer()
        shared = BytesWritable(b"z" * 1000)
        message = serializer.measure_message([shared, shared, shared])
        assert message.duplicate_refs == 2
        assert message.wire_bytes < message.raw_bytes
        assert message.wire_bytes == pytest.approx(
            estimate_size(shared) + 2 * BACKREF_BYTES
        )

    def test_equal_but_distinct_objects_not_deduped(self):
        serializer = DedupSerializer()
        message = serializer.measure_message(
            [BytesWritable(b"z" * 100), BytesWritable(b"z" * 100)]
        )
        assert message.duplicate_refs == 0
        assert message.wire_bytes == message.raw_bytes

    def test_memo_is_per_message(self):
        serializer = DedupSerializer()
        shared = Text("x" * 50)
        first = serializer.measure_message([shared])
        second = serializer.measure_message([shared])
        assert first.wire_bytes == second.wire_bytes  # no cross-message memo

    def test_measure_pairs_counts_records(self):
        serializer = DedupSerializer()
        one = IntWritable(1)
        message = serializer.measure_pairs([(Text("a"), one), (Text("b"), one)])
        assert message.records == 2
        assert message.duplicate_refs == 1  # the shared IntWritable

    def test_broadcast_idiom_savings(self):
        """The matvec broadcast: one big value to many keys."""
        serializer = DedupSerializer()
        vector = BytesWritable(b"v" * 10_000)
        pairs = [(IntWritable(i), vector) for i in range(20)]
        message = serializer.measure_pairs(pairs)
        assert message.dedup_savings > 19 * 9_000

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_dedup_never_exceeds_raw(self, indexes):
        pool = [Text("payload-%d" % i * 5) for i in range(6)]
        values = [pool[i] for i in indexes]
        message = DedupSerializer().measure_message(values)
        assert message.wire_bytes <= message.raw_bytes
        assert message.unique_objects <= len(set(indexes))


class TestDeepCopy:
    def test_uses_clone_when_available(self):
        original = Text("x")
        copy = deep_copy_value(original)
        assert copy == original and copy is not original

    def test_falls_back_to_deepcopy(self):
        original = {"a": [1, 2]}
        copy = deep_copy_value(original)
        copy["a"].append(3)
        assert original["a"] == [1, 2]

    def test_deepcopy_list_preserves_sharing(self):
        """What the M3R shuffle relies on: aliases survive transport."""
        import copy as copy_module

        shared = Text("shared")
        pairs = [(IntWritable(0), shared), (IntWritable(1), shared)]
        transported = copy_module.deepcopy(pairs)
        assert transported[0][1] is transported[1][1]
        assert transported[0][1] is not shared
