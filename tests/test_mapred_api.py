"""The old-style ``mapred`` API: runners, reuse semantics, reporters."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf
from repro.api.extensions import ImmutableOutput, is_immutable_output
from repro.api.mapred import (
    DefaultMapRunnable,
    FreshObjectMapRunnable,
    IdentityMapper,
    IdentityReducer,
    Mapper,
    OutputCollector,
    Reporter,
)
from repro.api.writables import IntWritable, Text
from repro.engine_common import MaterializedReader


class ListCollector(OutputCollector):
    def __init__(self):
        self.pairs = []

    def collect(self, key, value):
        self.pairs.append((key, value))


class TestReporter:
    def test_status(self):
        r = Reporter()
        r.set_status("working")
        assert r.get_status() == "working"

    def test_progress_clamped(self):
        r = Reporter()
        r.progress(1.5)
        assert r.get_progress() == 1.0
        r.progress(-1)
        assert r.get_progress() == 0.0

    def test_counters(self):
        r = Reporter()
        r.incr_counter("g", "c", 2)
        assert r.get_counter("g", "c") == 2

    def test_charge_compute_accumulates_and_drains(self):
        r = Reporter()
        r.charge_compute(0.5)
        r.charge_flops(1.1e9)  # 1 second at default rate
        assert r.consume_compute_seconds() == pytest.approx(1.5)
        assert r.consume_compute_seconds() == 0.0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Reporter().charge_compute(-1)


class TestDefaultRunnerReuseSemantics:
    """The Hadoop quirk that motivates paper Section 4.1."""

    def test_identity_mapper_output_aliases_mutate(self):
        """With the default runner, an identity mapper's earlier outputs are
        mutated by later records — the exact hazard the paper describes."""
        pairs = [(IntWritable(1), Text("first")), (IntWritable(2), Text("second"))]
        collector = ListCollector()
        runner = DefaultMapRunnable(IdentityMapper())
        runner.run(MaterializedReader(pairs), collector, Reporter())
        # Both collected values are the SAME reused object, now "second".
        assert collector.pairs[0][1] is collector.pairs[1][1]
        assert collector.pairs[0][1].to_string() == "second"
        assert collector.pairs[0][0].get() == 2

    def test_fresh_runner_preserves_outputs(self):
        pairs = [(IntWritable(1), Text("first")), (IntWritable(2), Text("second"))]
        collector = ListCollector()
        runner = FreshObjectMapRunnable(IdentityMapper())
        runner.run(MaterializedReader(pairs), collector, Reporter())
        assert [v.to_string() for _, v in collector.pairs] == ["first", "second"]
        assert collector.pairs[0][1] is not collector.pairs[1][1]

    def test_fresh_runner_is_immutable_output(self):
        assert is_immutable_output(FreshObjectMapRunnable(IdentityMapper()))
        assert not is_immutable_output(DefaultMapRunnable(IdentityMapper()))


class TestIdentityClasses:
    def test_identity_mapper(self):
        collector = ListCollector()
        IdentityMapper().map(IntWritable(1), Text("v"), collector, Reporter())
        assert collector.pairs == [(IntWritable(1), Text("v"))]

    def test_identity_reducer(self):
        collector = ListCollector()
        IdentityReducer().reduce(
            IntWritable(1), iter([Text("a"), Text("b")]), collector, Reporter()
        )
        assert [v.to_string() for _, v in collector.pairs] == ["a", "b"]

    def test_configure_close_are_optional(self):
        m = IdentityMapper()
        m.configure(JobConf())
        m.close()


class TestImmutableOutputMarker:
    def test_class_marker(self):
        class Marked(Mapper, ImmutableOutput):
            pass

        class Unmarked(Mapper):
            pass

        assert is_immutable_output(Marked)
        assert is_immutable_output(Marked())
        assert not is_immutable_output(Unmarked)
        assert not is_immutable_output(Unmarked())
