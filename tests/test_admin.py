"""Administrative interfaces: notifications, queues, async progress."""

from __future__ import annotations

import pytest

from repro.api.conf import (
    JOB_END_NOTIFICATION_URL_KEY,
    JOB_QUEUE_NAME_KEY,
)
from repro.apps.wordcount import generate_text, wordcount_job
from repro.core import JobEndNotifier, JobQueueManager, ProgressTracker

from conftest import make_hadoop, make_m3r


def prepared_engine(factory=make_m3r):
    engine = factory()
    engine.filesystem.write_text("/in.txt", generate_text(60))
    return engine


class TestJobEndNotifier:
    def test_delivery_with_placeholders(self):
        engine = prepared_engine()
        notifier = JobEndNotifier()
        received = []
        notifier.register("http://ops/", lambda url, result: received.append(url))
        conf = wordcount_job("/in.txt", "/out", 2)
        conf.set(JOB_END_NOTIFICATION_URL_KEY,
                 "http://ops/done?id=$jobId&status=$jobStatus")
        result = engine.run_job(conf)
        url = notifier.notify(conf, result)
        assert received == [url]
        assert "status=SUCCEEDED" in url
        assert "wordcount" in url

    def test_failed_status(self):
        engine = prepared_engine()
        notifier = JobEndNotifier()
        seen = {}
        notifier.register("cb://", lambda url, result: seen.update(url=url))
        conf = wordcount_job("/missing-input", "/out", 2)
        conf.set(JOB_END_NOTIFICATION_URL_KEY, "cb://x?s=$jobStatus")
        result = engine.run_job(conf)
        assert not result.succeeded
        notifier.notify(conf, result)
        assert seen["url"].endswith("s=FAILED")

    def test_no_url_is_noop(self):
        notifier = JobEndNotifier()
        engine = prepared_engine()
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert notifier.notify(wordcount_job("/in.txt", "/o2", 2), result) is None

    def test_longest_prefix_wins(self):
        notifier = JobEndNotifier()
        hits = []
        notifier.register("http://", lambda u, r: hits.append("short"))
        notifier.register("http://specific/", lambda u, r: hits.append("long"))
        engine = prepared_engine()
        conf = wordcount_job("/in.txt", "/out", 2)
        conf.set(JOB_END_NOTIFICATION_URL_KEY, "http://specific/cb")
        result = engine.run_job(conf)
        notifier.notify(conf, result)
        assert hits == ["long"]

    def test_undeliverable_recorded(self):
        notifier = JobEndNotifier()
        engine = prepared_engine()
        conf = wordcount_job("/in.txt", "/out", 2)
        conf.set(JOB_END_NOTIFICATION_URL_KEY, "nowhere://cb")
        result = engine.run_job(conf)
        notifier.notify(conf, result)
        assert notifier.undeliverable == ["nowhere://cb"]


class TestJobQueues:
    def test_fifo_per_queue(self):
        engine = prepared_engine()
        manager = JobQueueManager(engine, queues=["default", "analytics"])
        first = wordcount_job("/in.txt", "/out/a", 2)
        second = wordcount_job("/in.txt", "/out/b", 2)
        second.set(JOB_QUEUE_NAME_KEY, "analytics")
        third = wordcount_job("/in.txt", "/out/c", 2)
        assert manager.submit(first) == "default"
        assert manager.submit(second) == "analytics"
        assert manager.submit(third) == "default"
        assert manager.pending("default") == 2
        results = manager.drain("default")
        assert [r.output_path for r in results] == ["/out/a", "/out/c"]
        assert manager.pending("default") == 0
        assert manager.pending("analytics") == 1

    def test_unknown_queue_rejected(self):
        manager = JobQueueManager(prepared_engine(), queues=["default"])
        conf = wordcount_job("/in.txt", "/out", 2)
        conf.set(JOB_QUEUE_NAME_KEY, "nope")
        with pytest.raises(KeyError):
            manager.submit(conf)

    def test_stats_accumulate(self):
        engine = prepared_engine()
        manager = JobQueueManager(engine)
        manager.submit(wordcount_job("/in.txt", "/out/x", 2))
        manager.submit(wordcount_job("/broken", "/out/y", 2))
        manager.drain()
        stats = manager.stats()
        assert stats.submitted == 2
        assert stats.succeeded == 1
        assert stats.failed == 1
        assert stats.simulated_seconds > 0

    def test_drain_all_and_notifier_integration(self):
        engine = prepared_engine()
        notifier = JobEndNotifier()
        urls = []
        notifier.register("q://", lambda u, r: urls.append(u))
        manager = JobQueueManager(engine, queues=["default", "etl"],
                                  notifier=notifier)
        conf = wordcount_job("/in.txt", "/out/z", 2)
        conf.set(JOB_END_NOTIFICATION_URL_KEY, "q://done")
        manager.submit(conf)
        results = manager.drain_all()
        assert len(results["default"]) == 1
        assert urls == ["q://done"]


class TestProgressTracker:
    @pytest.mark.parametrize("factory", [make_m3r, make_hadoop])
    def test_phase_sequence(self, factory):
        engine = prepared_engine(factory)
        tracker = ProgressTracker().attach(engine)
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        assert result.succeeded
        phases = tracker.phases_seen(result.job_name)
        assert phases[0] == "submitted"
        assert phases[-1] == "done"
        assert "map" in phases

    def test_snapshot_latest(self):
        engine = prepared_engine()
        tracker = ProgressTracker().attach(engine)
        result = engine.run_job(wordcount_job("/in.txt", "/out", 2))
        latest = tracker.snapshot(result.job_name)
        assert latest.phase == "done" and latest.fraction == 1.0
        assert tracker.snapshot("unknown job") is None

    def test_map_only_job_phases(self):
        from repro.api.conf import JobConf
        from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
        from repro.api.mapred import IdentityMapper
        from repro.api.writables import IntWritable, Text

        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000", [(IntWritable(1), Text("x"))])
        tracker = ProgressTracker().attach(engine)
        conf = JobConf()
        conf.set_job_name("maponly")
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(IdentityMapper)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(0)
        assert engine.run_job(conf).succeeded
        assert tracker.phases_seen("maponly") == ["submitted", "map", "done"]

    def test_fractions_clamped(self):
        tracker = ProgressTracker()
        tracker("j", "map", 3.0)
        assert tracker.snapshot("j").fraction == 1.0
