"""The byte-level SequenceFile codec and its formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.api.conf import JobConf
from repro.api.seqfile import (
    BinarySequenceFileInputFormat,
    BinarySequenceFileOutputFormat,
    SequenceFileFormatError,
    decode_pairs,
    encode_pairs,
)
from repro.api.writables import (
    BlockIndexWritable,
    BytesWritable,
    DoubleWritable,
    IntWritable,
    MatrixBlockWritable,
    Text,
)
from repro.apps.wordcount import SumReducer, WordCountMapperImmutable
from repro.api.formats import TextInputFormat
from repro.fs import InMemoryFileSystem

from conftest import make_hadoop, make_m3r


class TestCodec:
    def test_roundtrip_scalars(self):
        pairs = [(IntWritable(i), Text(f"v{i}")) for i in range(20)]
        assert decode_pairs(encode_pairs(pairs)) == pairs

    def test_roundtrip_matrix_blocks(self):
        pairs = [
            (
                BlockIndexWritable(i, i + 1),
                MatrixBlockWritable(
                    sparse.random(8, 6, density=0.4, random_state=i, format="csc")
                ),
            )
            for i in range(4)
        ]
        assert decode_pairs(encode_pairs(pairs)) == pairs

    def test_empty_needs_classes(self):
        with pytest.raises(ValueError):
            encode_pairs([])
        data = encode_pairs([], key_class=IntWritable, value_class=Text)
        assert decode_pairs(data) == []

    def test_heterogeneous_rejected(self):
        with pytest.raises(TypeError):
            encode_pairs([(IntWritable(1), Text("a")),
                          (Text("bad"), Text("b"))])

    def test_bad_magic(self):
        with pytest.raises(SequenceFileFormatError):
            decode_pairs(b"JUNKxxxx")

    def test_trailing_bytes_detected(self):
        data = encode_pairs([(IntWritable(1), Text("a"))]) + b"\x00"
        with pytest.raises(SequenceFileFormatError):
            decode_pairs(data)

    def test_decoded_objects_are_fresh(self):
        original = [(IntWritable(1), Text("x"))]
        decoded = decode_pairs(encode_pairs(original))
        assert decoded[0][1] is not original[0][1]
        decoded[0][1].set("mutated")
        assert original[0][1].to_string() == "x"

    @given(st.lists(st.tuples(st.integers(-(2**31), 2**31 - 1),
                              st.binary(max_size=64)), max_size=30))
    @settings(max_examples=60)
    def test_roundtrip_property(self, raw):
        pairs = [(IntWritable(k), BytesWritable(v)) for k, v in raw]
        if not pairs:
            data = encode_pairs(pairs, IntWritable, BytesWritable)
        else:
            data = encode_pairs(pairs)
        assert decode_pairs(data) == pairs


class TestFormatsInEngines:
    @pytest.mark.parametrize("factory", [make_hadoop, make_m3r])
    def test_wordcount_through_binary_files(self, factory):
        """A job whose output is real bytes, consumed by a second job."""
        engine = factory()
        engine.filesystem.write_text("/in.txt", "a b a\nc a b\n")
        conf = JobConf()
        conf.set_job_name("wc-binary")
        conf.set_input_paths("/in.txt")
        conf.set_input_format(TextInputFormat)
        conf.set_mapper_class(WordCountMapperImmutable)
        conf.set_reducer_class(SumReducer)
        conf.set_output_format(BinarySequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(2)
        assert engine.run_job(conf).succeeded
        # The part files are genuine bytes with the SEQ magic.
        parts = [
            s.path for s in engine.filesystem.list_files_recursive("/out")
            if s.path.rsplit("/", 1)[-1].startswith("part-")
        ]
        assert parts
        raw = engine.raw_filesystem.read_bytes(parts[0]) if (
            engine.raw_filesystem.exists(parts[0])
        ) else engine.filesystem.read_bytes(parts[0])
        assert raw[:4] == b"SEQ6"
        # A second job reads them back through the binary input format.
        from repro.api.mapred import IdentityMapper, IdentityReducer

        follow = JobConf()
        follow.set_job_name("consume")
        follow.set_input_paths("/out")
        follow.set_input_format(BinarySequenceFileInputFormat)
        follow.set_mapper_class(IdentityMapper)
        follow.set_reducer_class(IdentityReducer)
        follow.set_output_format(BinarySequenceFileOutputFormat)
        follow.set_output_path("/out2")
        follow.set_num_reduce_tasks(1)
        assert engine.run_job(follow).succeeded
        counted = {
            str(k): v.get()
            for s in engine.filesystem.list_files_recursive("/out2")
            if s.path.rsplit("/", 1)[-1].startswith("part-")
            for k, v in decode_pairs(engine.filesystem.read_bytes(s.path))
        }
        assert counted == {"a": 3, "b": 2, "c": 1}
        # The job-level commit protocol ran: the success marker is present.
        assert engine.filesystem.exists("/out2/_SUCCESS")
