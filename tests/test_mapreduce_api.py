"""The new-style ``mapreduce`` API: contexts, lifecycle hooks, Job."""

from __future__ import annotations

import pytest

from repro.api.conf import JobConf, USE_NEW_API_KEY
from repro.api.job import JobSpec
from repro.api.mapreduce import (
    Job,
    MapContext,
    NewMapper,
    NewReducer,
    ReduceContext,
)
from repro.api.writables import IntWritable, Text


class TokenizeMapper(NewMapper):
    def setup(self, context):
        self.calls = ["setup"]

    def map(self, key, value, context):
        self.calls.append("map")
        for token in value.to_string().split():
            context.write(Text(token), IntWritable(1))

    def cleanup(self, context):
        self.calls.append("cleanup")
        context.write(Text("__done__"), IntWritable(0))


class SumNewReducer(NewReducer):
    def reduce(self, key, values, context):
        context.write(key, IntWritable(sum(v.get() for v in values)))


def run_mapper(mapper, records):
    out = []
    context = MapContext(JobConf(), iter(records), lambda k, v: out.append((k, v)))
    mapper.run(context)
    return out


def run_reducer(reducer, groups):
    out = []
    context = ReduceContext(JobConf(), iter(groups), lambda k, v: out.append((k, v)))
    reducer.run(context)
    return out


class TestNewMapper:
    def test_lifecycle_order(self):
        mapper = TokenizeMapper()
        run_mapper(mapper, [(IntWritable(0), Text("a b"))])
        assert mapper.calls == ["setup", "map", "cleanup"]

    def test_output(self):
        out = run_mapper(TokenizeMapper(), [(IntWritable(0), Text("x y x"))])
        words = [str(k) for k, _ in out]
        assert words == ["x", "y", "x", "__done__"]

    def test_default_map_is_identity(self):
        out = run_mapper(NewMapper(), [(IntWritable(1), Text("v"))])
        assert out == [(IntWritable(1), Text("v"))]

    def test_cleanup_runs_after_exception(self):
        class Exploding(NewMapper):
            cleaned = False

            def map(self, key, value, context):
                raise RuntimeError("boom")

            def cleanup(self, context):
                Exploding.cleaned = True

        with pytest.raises(RuntimeError):
            run_mapper(Exploding(), [(IntWritable(0), Text("x"))])
        assert Exploding.cleaned


class TestNewReducer:
    def test_sum(self):
        out = run_reducer(
            SumNewReducer(),
            [(Text("a"), [IntWritable(1), IntWritable(2)]), (Text("b"), [IntWritable(5)])],
        )
        assert [(str(k), v.get()) for k, v in out] == [("a", 3), ("b", 5)]

    def test_default_reduce_is_identity(self):
        out = run_reducer(NewReducer(), [(Text("k"), [Text("v1"), Text("v2")])])
        assert [str(v) for _, v in out] == ["v1", "v2"]


class TestContexts:
    def test_map_context_iteration(self):
        context = MapContext(
            JobConf(), iter([(1, "a"), (2, "b")]), lambda k, v: None
        )
        assert context.next_key_value()
        assert context.get_current_key() == 1
        assert context.get_current_value() == "a"
        assert context.next_key_value()
        assert not context.next_key_value()

    def test_context_counters(self):
        context = MapContext(JobConf(), iter([]), lambda k, v: None)
        context.get_counter("g", "c").increment(3)
        assert context.counters.value("g", "c") == 3

    def test_context_charge_compute(self):
        context = MapContext(JobConf(), iter([]), lambda k, v: None)
        context.charge_compute(0.25)
        assert context.reporter.consume_compute_seconds() == 0.25

    def test_configuration_access(self):
        conf = JobConf()
        conf.set("custom", "yes")
        context = ReduceContext(conf, iter([]), lambda k, v: None)
        assert context.configuration.get("custom") == "yes"
        assert context.get_configuration() is conf


class TestJob:
    def test_job_sets_new_api_flag(self):
        job = Job(job_name="j")
        assert job.conf.get_boolean(USE_NEW_API_KEY)
        assert job.conf.get_job_name() == "j"

    def test_job_class_wiring_resolves_in_jobspec(self):
        job = Job()
        job.set_mapper_class(TokenizeMapper)
        job.set_reducer_class(SumNewReducer)
        job.set_num_reduce_tasks(2)
        spec = JobSpec.from_conf(job.conf)
        assert spec.mapper_class is TokenizeMapper
        assert spec.reducer_class is SumNewReducer
        assert spec.num_reducers == 2

    def test_wait_for_completion_needs_engine(self):
        with pytest.raises(RuntimeError):
            Job().wait_for_completion()

    def test_wait_for_completion_submits(self):
        class FakeEngine:
            def __init__(self):
                self.submitted = []

            def run_job(self, conf):
                self.submitted.append(conf)

                class R:
                    succeeded = True

                return R()

        engine = FakeEngine()
        job = Job(job_name="x")
        job.set_engine(engine)
        assert job.wait_for_completion() is True
        assert engine.submitted
