"""Engine equivalence: the paper's core compatibility claim.

"We ran these Hadoop programs in both the standard Hadoop engine and in our
M3R engine, on the same input, and verified that they produced equivalent
output."  These tests do exactly that, across API generations, comparators,
combiners, map-only jobs and adversarial object-reuse code — plus a
hypothesis sweep over random datasets.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.conf import JobConf
from repro.api.counters import TaskCounter
from repro.api.formats import SequenceFileInputFormat, SequenceFileOutputFormat
from repro.api.mapred import IdentityMapper, IdentityReducer, Mapper, Reducer
from repro.api.mapreduce import NewMapper, NewReducer
from repro.api.writables import IntWritable, Text
from repro.apps.grep import grep_sequence
from repro.apps.sortapp import is_sorted, read_globally_sorted, sample_and_build_job
from repro.apps.wordcount import generate_text, wordcount_job

from workloads import (
    DATA,
    histogram_job,
    make_hadoop,
    make_m3r,
    run_both,
    seeded_histogram_dataset,
)


class TestWordCountEquivalence:
    @pytest.mark.parametrize("immutable", [True, False])
    @pytest.mark.parametrize("use_combiner", [True, False])
    def test_all_variants(self, immutable, use_combiner):
        text = generate_text(150)
        expected = dict(Counter(text.split()))
        for factory in (make_hadoop, make_m3r):
            engine = factory()
            engine.filesystem.write_text("/in.txt", text)
            result = engine.run_job(
                wordcount_job("/in.txt", "/out", 4, immutable=immutable,
                              use_combiner=use_combiner)
            )
            assert result.succeeded, result.error
            counts = {
                str(k): v.get() for k, v in engine.filesystem.read_kv_pairs("/out")
            }
            assert counts == expected, (factory, immutable, use_combiner)


class OldApiSwap(Mapper):
    """Old-API mapper emitting (value, key) — exercises re-keying."""

    def map(self, key, value, output, reporter):
        output.collect(value, key)


class NewApiSwap(NewMapper):
    def map(self, key, value, context):
        context.write(value, key)


class OldApiConcat(Reducer):
    def reduce(self, key, values, output, reporter):
        output.collect(key, Text("+".join(sorted(str(v) for v in values))))


class NewApiConcat(NewReducer):
    def reduce(self, key, values, context):
        context.write(key, Text("+".join(sorted(str(v) for v in values))))


class TestApiGenerations:
    @pytest.mark.parametrize("mapper_cls", [OldApiSwap, NewApiSwap])
    @pytest.mark.parametrize("reducer_cls", [OldApiConcat, NewApiConcat])
    def test_any_combination_of_old_and_new(self, mapper_cls, reducer_cls):
        """Paper Section 5.3: 'any combination of old (mapred) and new
        (mapreduce) style mapper, combiner, and reducer'."""

        def build(engine):
            conf = JobConf()
            conf.set_input_paths("/in")
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(mapper_cls)
            conf.set_reducer_class(reducer_cls)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path("/out")
            conf.set_num_reduce_tasks(3)
            assert engine.run_job(conf).succeeded

        outputs = run_both(build, {"/in": DATA})
        assert outputs["hadoop"] == outputs["m3r"]
        assert outputs["hadoop"]  # non-empty


class DescendingComparator:
    def compare(self, a, b):
        return -a.compare_to(b)


class EvenOddGrouping:
    """Groups IntWritable keys by parity — a custom grouping comparator."""

    def compare(self, a, b):
        return (a.get() % 2) - (b.get() % 2)


class GroupSizeReducer(Reducer):
    def reduce(self, key, values, output, reporter):
        output.collect(key, IntWritable(sum(1 for _ in values)))


class TestComparators:
    def test_custom_sort_comparator_equivalent(self):
        def build(engine):
            conf = JobConf()
            conf.set_input_paths("/in")
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(IdentityMapper)
            conf.set_reducer_class(IdentityReducer)
            conf.set_output_key_comparator_class(DescendingComparator)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path("/out")
            conf.set_num_reduce_tasks(1)
            assert engine.run_job(conf).succeeded

        outputs = run_both(build, {"/in": DATA})
        assert outputs["hadoop"] == outputs["m3r"]
        # And the single partition is genuinely descending.
        engine = make_hadoop()
        for part, chunk in ((0, DATA),):
            engine.filesystem.write_pairs(f"/in/part-{part:05d}", chunk)
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(IdentityMapper)
        conf.set_reducer_class(IdentityReducer)
        conf.set_output_key_comparator_class(DescendingComparator)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(1)
        engine.run_job(conf)
        keys = [k.get() for k, _ in engine.filesystem.read_kv_pairs("/out")]
        assert keys == sorted(keys, reverse=True)

    def test_grouping_comparator_equivalent(self):
        def build(engine):
            conf = JobConf()
            conf.set_input_paths("/in")
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(IdentityMapper)
            conf.set_reducer_class(GroupSizeReducer)
            conf.set_output_value_grouping_comparator(EvenOddGrouping)
            conf.set_output_key_comparator_class(EvenOddGrouping)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path("/out")
            conf.set_num_reduce_tasks(1)
            assert engine.run_job(conf).succeeded

        outputs = run_both(build, {"/in": DATA})
        assert outputs["hadoop"] == outputs["m3r"]
        # With a parity grouping there are at most two reduce groups.
        engine = make_m3r()
        engine.filesystem.write_pairs("/in/part-00000", DATA)
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(IdentityMapper)
        conf.set_reducer_class(GroupSizeReducer)
        conf.set_output_value_grouping_comparator(EvenOddGrouping)
        conf.set_output_key_comparator_class(EvenOddGrouping)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(1)
        engine.run_job(conf)
        sizes = [v.get() for _, v in engine.filesystem.read_kv_pairs("/out")]
        assert sum(sizes) == len(DATA)
        assert len(sizes) <= 2


class TestShuffleByteAccounting:
    def test_local_handoffs_not_counted_as_shuffle_bytes(self):
        """Hadoop's REDUCE_SHUFFLE_BYTES counts every fetched byte.  M3R
        never fetches co-located partitions — those bytes land in
        REDUCE_LOCAL_HANDOFF_BYTES instead, and the two counters together
        must equal Hadoop's total (map-output bytes are placement- and
        split-independent for the same output multiset)."""
        counters = {}
        for kind, factory in (("hadoop", make_hadoop), ("m3r", make_m3r)):
            engine = factory()
            for part in range(4):
                engine.filesystem.write_pairs(
                    f"/in/part-{part:05d}", DATA[part::4]
                )
            conf = JobConf()
            conf.set_input_paths("/in")
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(IdentityMapper)
            conf.set_reducer_class(IdentityReducer)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path("/out")
            conf.set_num_reduce_tasks(4)
            result = engine.run_job(conf)
            assert result.succeeded, result.error
            counters[kind] = result.counters
            if hasattr(engine, "shutdown"):
                engine.shutdown()
        hadoop_shuffled = counters["hadoop"].value(TaskCounter.REDUCE_SHUFFLE_BYTES)
        m3r_remote = counters["m3r"].value(TaskCounter.REDUCE_SHUFFLE_BYTES)
        m3r_local = counters["m3r"].value(TaskCounter.REDUCE_LOCAL_HANDOFF_BYTES)
        assert counters["hadoop"].value(
            TaskCounter.REDUCE_LOCAL_HANDOFF_BYTES
        ) == 0
        assert m3r_local > 0  # partition stability guarantees co-location
        assert m3r_remote + m3r_local == hadoop_shuffled


class ReusingVandalMapper(Mapper):
    """Adversarial Hadoop-legal code: reuses and mutates emitted objects."""

    def __init__(self):
        self.key = IntWritable()
        self.value = Text()

    def map(self, key, value, output, reporter):
        self.key.set(key.get() % 3)
        self.value.set(str(value))
        output.collect(self.key, self.value)
        # mutate AFTER emitting — engines must have snapshotted/cloned
        self.value.set("GARBAGE")


class TestAdversarialReuse:
    def test_object_reuse_cannot_corrupt_either_engine(self):
        def build(engine):
            conf = JobConf()
            conf.set_input_paths("/in")
            conf.set_input_format(SequenceFileInputFormat)
            conf.set_mapper_class(ReusingVandalMapper)
            conf.set_reducer_class(IdentityReducer)
            conf.set_output_format(SequenceFileOutputFormat)
            conf.set_output_path("/out")
            conf.set_num_reduce_tasks(2)
            assert engine.run_job(conf).succeeded

        outputs = run_both(build, {"/in": DATA})
        assert outputs["hadoop"] == outputs["m3r"]
        assert all("GARBAGE" not in v for _, v in outputs["m3r"])


class TestPipelines:
    def test_grep_pipeline_equivalent(self):
        text = "alpha beta\nbeta gamma beta\nalpha\n" * 5
        results = {}
        for kind, factory in (("hadoop", make_hadoop), ("m3r", make_m3r)):
            engine = factory()
            engine.filesystem.write_text("/corpus.txt", text)
            sequence = grep_sequence("/corpus.txt", "/out", r"beta|alpha")
            run = engine.run_sequence(sequence)
            assert all(r.succeeded for r in run)
            results[kind] = [
                (k.get(), str(v)) for k, v in engine.filesystem.read_kv_pairs("/out")
            ]
        assert results["hadoop"] == results["m3r"]
        assert results["m3r"][0] == (15, "beta")  # hottest first

    def test_total_order_sort_equivalent_and_sorted(self):
        import random

        rng = random.Random(5)
        pairs = [(IntWritable(rng.randrange(1000)), Text("x")) for _ in range(60)]
        results = {}
        for kind, factory in (("hadoop", make_hadoop), ("m3r", make_m3r)):
            engine = factory()
            engine.filesystem.write_pairs("/in/part-00000", pairs)
            conf = sample_and_build_job(engine.filesystem, "/in", "/out", 4)
            assert engine.run_job(conf).succeeded
            ordered = read_globally_sorted(engine.filesystem, "/out")
            assert is_sorted(ordered), kind
            results[kind] = [(k.get(), str(v)) for k, v in ordered]
        assert results["hadoop"] == results["m3r"]
        assert [k for k, _ in results["m3r"]] == sorted(k.get() for k, _ in pairs)


@pytest.mark.parametrize("seed", range(20))
def test_seeded_random_jobs_differential(seed):
    """Seeded-random differential sweep (both engines on real threads):
    random key skew, split count, reducer count and combiner choice — M3R's
    committed output must equal Hadoop's, pair for pair."""
    pairs, params = seeded_histogram_dataset(seed)
    num_parts = params["num_parts"]
    reference = Counter(k.get() for k, _ in pairs)

    outputs = {}
    combines = {}
    for kind, factory in (("hadoop", make_hadoop), ("m3r", make_m3r)):
        engine = factory()
        for part in range(num_parts):
            engine.filesystem.write_pairs(
                f"/in/part-{part:05d}", pairs[part::num_parts]
            )
        conf = histogram_job(
            "/in", "/out", params["reducers"],
            use_combiner=params["use_combiner"],
            name=f"differential-{seed}",
        )
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        outputs[kind] = sorted(
            (k.get(), v.get()) for k, v in engine.filesystem.read_kv_pairs("/out")
        )
        combines[kind] = {
            name: value
            for name, value in result.counters.as_dict()
            .get("org.apache.hadoop.mapreduce.TaskCounter", {})
            .items()
            if name.startswith("COMBINE_")
        }
        if hasattr(engine, "shutdown"):
            engine.shutdown()
    assert outputs["hadoop"] == outputs["m3r"]
    assert dict(outputs["m3r"]) == dict(reference)
    # Hadoop counter-name parity for the combiner: both engines must agree
    # on COMBINE_INPUT_RECORDS / COMBINE_OUTPUT_RECORDS (and on their
    # absence when the job has no combiner or it never ran).
    assert combines["hadoop"] == combines["m3r"]
    if params["use_combiner"] and combines["m3r"]:
        assert set(combines["m3r"]) == {
            "COMBINE_INPUT_RECORDS", "COMBINE_OUTPUT_RECORDS"
        }
        assert (
            combines["m3r"]["COMBINE_INPUT_RECORDS"]
            >= combines["m3r"]["COMBINE_OUTPUT_RECORDS"]
        )
    else:
        assert not params["use_combiner"] or combines["m3r"]


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.text(max_size=6)),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_random_datasets_property(raw_pairs, reducers):
    """Both engines equal each other AND a reference group-by, for random
    data and reducer counts."""
    pairs = [(IntWritable(k), Text(v)) for k, v in raw_pairs]

    class CountReducer(Reducer):
        def reduce(self, key, values, output, reporter):
            output.collect(key, IntWritable(sum(1 for _ in values)))

    reference = Counter(k for k, _ in raw_pairs)
    for factory in (make_hadoop, make_m3r):
        engine = factory()
        engine.filesystem.write_pairs("/in/part-00000", pairs)
        conf = JobConf()
        conf.set_input_paths("/in")
        conf.set_input_format(SequenceFileInputFormat)
        conf.set_mapper_class(IdentityMapper)
        conf.set_reducer_class(CountReducer)
        conf.set_output_format(SequenceFileOutputFormat)
        conf.set_output_path("/out")
        conf.set_num_reduce_tasks(reducers)
        result = engine.run_job(conf)
        assert result.succeeded, result.error
        got = {k.get(): v.get() for k, v in engine.filesystem.read_kv_pairs("/out")}
        assert got == dict(reference)
